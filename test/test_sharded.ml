(* Sharded handles (ISSUE 9): the router/manifest, the fan-out/merge
   query path pinned result-identical to the unsharded index (qcheck
   differential over all three codings × heap/mapped), the merge-level
   truncation contract under max_results, routed inserts + per-shard
   checkpoints, brownout degradation, and mixed-set refusal. *)

open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()

let temp_prefix tag =
  let base = Filename.temp_file ("si_shard_" ^ tag) "" in
  Sys.remove base;
  base

let exts = [ ".idx"; ".dat"; ".labels"; ".meta"; ".trees"; ".wal" ]

let rm_sharded p =
  List.iter (fun ext -> try Sys.remove (p ^ ext) with Sys_error _ -> ()) exts;
  (try Sys.remove (Shardmap.manifest_path p) with Sys_error _ -> ());
  for i = 0 to 15 do
    List.iter
      (fun ext ->
        try Sys.remove (Shardmap.shard_prefix p i ^ ext) with Sys_error _ -> ())
      exts
  done

let with_prefix tag f =
  let p = temp_prefix tag in
  Fun.protect ~finally:(fun () -> rm_sharded p) (fun () -> f p)

let query_strings =
  [
    "S(NP)(VP)";
    "NP(DT)(NN)";
    "S(NP(DT)(NN))(VP)";
    "VP(VBZ)(NP)";
    "S(//NP(NN))";
    "S(//NP)(//VP(VBD))";
  ]

let containers = [ `Sidx3; `Sidx4 ]
let schemes = [ Coding.Filter; Coding.Interval; Coding.Root_split ]

(* ---- router / manifest --------------------------------------------------- *)

let test_router_deterministic () =
  (* same function, any process: spot-pin a few values so a silent hash
     change (which would orphan every existing manifest) fails loudly *)
  let h = Shardmap.shard_of_tid ~shards:4 in
  List.iter
    (fun tid ->
      Alcotest.(check int)
        (Printf.sprintf "tid %d stable" tid)
        (h tid)
        (Shardmap.shard_of_tid ~shards:4 tid))
    [ 0; 1; 2; 3; 17; 1000; 123456 ];
  (* every tid lands in range, and a few hundred spread over all shards *)
  let seen = Array.make 4 0 in
  for tid = 0 to 400 do
    let s = h tid in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i n -> if n = 0 then Alcotest.failf "shard %d never hit" i)
    seen

let test_manifest_roundtrip () =
  with_prefix "manifest" (fun p ->
      let map = { Shardmap.shards = 3; scheme = Coding.Interval; mss = 3 } in
      Shardmap.save map p;
      Alcotest.(check bool) "is_sharded" true (Shardmap.is_sharded p);
      let back = Shardmap.load p in
      Alcotest.(check int) "shards" 3 back.Shardmap.shards;
      Alcotest.(check int) "mss" 3 back.Shardmap.mss;
      Alcotest.(check bool)
        "scheme" true
        (back.Shardmap.scheme = Coding.Interval))

let test_manifest_refusals () =
  with_prefix "refuse" (fun p ->
      let path = Shardmap.manifest_path p in
      let write lines =
        let oc = open_out_bin path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc
      in
      write [ "version=1"; "router=other-v9"; "shards=2"; "scheme=interval";
              "mss=3" ];
      (match Si_error.guard (fun () -> Shardmap.load p) with
      | Error (Si_error.Schema_mismatch _) -> ()
      | _ -> Alcotest.fail "unknown router accepted");
      write [ "version=1"; "router=" ^ Shardmap.router; "shards=0";
              "scheme=interval"; "mss=3" ];
      (match Si_error.guard (fun () -> Shardmap.load p) with
      | Error (Si_error.Schema_mismatch _) -> ()
      | _ -> Alcotest.fail "zero shards accepted");
      write [ "router=" ^ Shardmap.router; "shards=2"; "scheme=interval" ];
      (match Si_error.guard (fun () -> Shardmap.load p) with
      | Error (Si_error.Corrupt _) -> ()
      | _ -> Alcotest.fail "missing fields accepted"))

(* ---- build / open / query ------------------------------------------------ *)

let build_pair ?(shards = 3) ?(scheme = Coding.Root_split) ?(format = `Sidx3)
    ~n ~seed p =
  let trees = corpus n seed in
  let sh =
    ok_exn "build_sharded"
      (Si.build_sharded ~shards ~scheme ~mss:3 ~format ~trees p)
  in
  let single = Si.build ~scheme ~mss:3 ~trees () in
  (trees, sh, single)

let test_sharded_basic () =
  with_prefix "basic" (fun p ->
      let _, sh, single = build_pair ~n:60 ~seed:11 p in
      Alcotest.(check int) "shard count" 3 (Si.shard_count sh);
      Alcotest.(check int) "total" 60 (Si.sharded_total sh);
      List.iter
        (fun q ->
          let want = ok_exn "single" (Si.query single q) in
          let got = ok_exn "sharded" (Si.query_sharded sh q) in
          Alcotest.(check (list (pair int int))) ("query " ^ q) want got)
        query_strings;
      (* reopen from disk: same answers *)
      let reopened = ok_exn "open_sharded" (Si.open_sharded p) in
      List.iter
        (fun q ->
          let want = ok_exn "single" (Si.query single q) in
          let got = ok_exn "reopened" (Si.query_sharded reopened q) in
          Alcotest.(check (list (pair int int))) ("reopen " ^ q) want got)
        query_strings;
      (* open_any dispatches to the sharded handle *)
      match ok_exn "open_any" (Si.open_any p) with
      | Si.Sharded _ -> ()
      | Si.Single _ -> Alcotest.fail "open_any missed the manifest")

let test_sentence_sharded () =
  with_prefix "sentence" (fun p ->
      let trees, sh, _ = build_pair ~n:40 ~seed:23 p in
      List.iteri
        (fun g tree ->
          let got = Si.sentence_sharded sh g in
          if got <> tree then Alcotest.failf "sentence %d differs" g)
        trees)

let test_empty_shards () =
  (* 2 trees over 4 shards: at least two shards are empty, and the set
     must still build, open, and answer *)
  with_prefix "empty" (fun p ->
      let _, sh, single = build_pair ~shards:4 ~n:2 ~seed:5 p in
      let reopened = ok_exn "open empty shards" (Si.open_sharded p) in
      List.iter
        (fun q ->
          let want = ok_exn "single" (Si.query single q) in
          List.iter
            (fun h ->
              let got = ok_exn "sharded" (Si.query_sharded h q) in
              Alcotest.(check (list (pair int int))) ("query " ^ q) want got)
            [ sh; reopened ])
        query_strings)

let qcheck_differential =
  QCheck.Test.make ~name:"sharded query = unsharded query" ~count:4
    QCheck.(triple (int_range 20 60) (int_range 2 4) small_nat)
    (fun (n, shards, seed) ->
      List.iter
        (fun scheme ->
          List.iter
            (fun format ->
              let tag =
                Printf.sprintf "%s-%s-%d"
                  (Coding.scheme_to_string scheme)
                  (match format with `Sidx3 -> "heap" | `Sidx4 -> "mapped")
                  shards
              in
              let p = temp_prefix "qc" in
              Fun.protect ~finally:(fun () -> rm_sharded p) (fun () ->
                  let trees = corpus n (seed + 1) in
                  let sh =
                    match
                      Si.build_sharded ~shards ~scheme ~mss:3 ~format ~trees p
                    with
                    | Ok sh -> sh
                    | Error e ->
                        QCheck.Test.fail_reportf "%s: build_sharded: %s" tag
                          (Si_error.to_string e)
                  in
                  let single = Si.build ~scheme ~mss:3 ~trees () in
                  let reopened =
                    match Si.open_sharded p with
                    | Ok h -> h
                    | Error e ->
                        QCheck.Test.fail_reportf "%s: open_sharded: %s" tag
                          (Si_error.to_string e)
                  in
                  List.iter
                    (fun q ->
                      let want =
                        ok_exn "single" (Si.query single q)
                      in
                      let fresh = ok_exn "built" (Si.query_sharded sh q) in
                      let disk =
                        ok_exn "reopened" (Si.query_sharded reopened q)
                      in
                      if fresh <> want then
                        QCheck.Test.fail_reportf
                          "%s: %s: built sharded diverges (%d vs %d)" tag q
                          (List.length fresh) (List.length want);
                      if disk <> want then
                        QCheck.Test.fail_reportf
                          "%s: %s: reopened sharded diverges (%d vs %d)" tag q
                          (List.length disk) (List.length want);
                      (* and the sharded oracle agrees with the plain one *)
                      let ast = Si_query.Parser.parse_exn q in
                      if Si.oracle_sharded reopened ast <> Si.oracle single ast
                      then
                        QCheck.Test.fail_reportf "%s: %s: oracle diverges" tag
                          q)
                    query_strings))
            containers)
        schemes;
      true)

(* ---- merge under max_results: the truncation contract -------------------- *)

let test_merge_truncation () =
  with_prefix "trunc" (fun p ->
      let _, sh, single = build_pair ~n:80 ~seed:31 p in
      List.iter
        (fun q ->
          let exact = ok_exn "exact" (Si.query single q) in
          let full = List.length exact in
          List.iter
            (fun m ->
              let limits = Limits.v ~max_results:m () in
              let so =
                ok_exn "capped" (Si.query_outcome_sharded ~limits sh q)
              in
              let got = so.Si.so_outcome.Limits.matches in
              Alcotest.(check bool)
                (Printf.sprintf "%s cap %d: count" q m)
                true
                (List.length got <= m);
              (* subset of the exact answer — the ⊂ of truncated-⊂-exact *)
              List.iter
                (fun r ->
                  if not (List.mem r exact) then
                    Alcotest.failf "%s cap %d: non-answer %d,%d emitted" q m
                      (fst r) (snd r))
                got;
              if full > m then
                Alcotest.(check bool)
                  (Printf.sprintf "%s cap %d: truncated flag" q m)
                  true so.Si.so_outcome.Limits.truncated
              else begin
                Alcotest.(check bool)
                  (Printf.sprintf "%s cap %d: exact" q m)
                  true
                  (got = exact)
              end)
            [ 1; 2; 5; 1000 ])
        query_strings)

(* ---- brownout degradation ------------------------------------------------ *)

let test_degrade_failpoint () =
  with_prefix "degrade" (fun p ->
      let _, sh, single = build_pair ~n:50 ~seed:41 p in
      (* @1+ = every hit (the bare action is one-shot) *)
      Failpoint.arm_exn "si.shard.eval.1=fail@1+";
      Fun.protect ~finally:Failpoint.clear (fun () ->
          let q = "S(NP)(VP)" in
          (* strict mode: the failed leg fails the query *)
          (match Si.query_outcome_sharded sh q with
          | Error (Si_error.Internal _) -> ()
          | Error e ->
              Alcotest.failf "strict: wrong error %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "strict: failed leg answered Ok");
          (* degrade mode: brownout — the healthy shards answer *)
          let so =
            ok_exn "degrade"
              (Si.query_outcome_sharded ~degrade:true sh q)
          in
          Alcotest.(check bool)
            "degraded flag" true so.Si.so_outcome.Limits.truncated;
          (match so.Si.so_failed with
          | [ (1, Si_error.Internal _) ] -> ()
          | _ -> Alcotest.fail "expected shard 1 reported failed");
          let exact = ok_exn "exact" (Si.query single q) in
          List.iter
            (fun r ->
              if not (List.mem r exact) then
                Alcotest.fail "degraded answer not a subset")
            so.Si.so_outcome.Limits.matches);
      (* all legs down: no brownout possible, the query fails *)
      for i = 0 to 2 do
        Failpoint.arm_exn (Printf.sprintf "si.shard.eval.%d=fail@1+" i)
      done;
      Fun.protect ~finally:Failpoint.clear (fun () ->
          match Si.query_outcome_sharded ~degrade:true sh "S(NP)(VP)" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "all-shards-down answered Ok"))

(* ---- routed inserts + per-shard checkpoints ------------------------------ *)

let test_insert_checkpoint_sharded () =
  with_prefix "ins" (fun p ->
      let base = corpus 30 51 in
      let extra = corpus 8 151 in
      let sh =
        ok_exn "build"
          (Si.build_sharded ~shards:3 ~scheme:Coding.Root_split ~mss:3
             ~trees:base p)
      in
      Alcotest.(check int)
        "insert total" 38
        (ok_exn "insert" (Si.insert_sharded sh extra));
      Alcotest.(check int) "pending" 8 (Si.pending_sharded sh);
      Alcotest.(check bool) "wal bytes" true (Si.wal_bytes_sharded sh > 0);
      let full = Si.build ~scheme:Coding.Root_split ~mss:3 ~trees:(base @ extra) () in
      let check_against what h =
        List.iter
          (fun q ->
            let want = ok_exn "full" (Si.query full q) in
            let got = ok_exn what (Si.query_sharded h q) in
            Alcotest.(check (list (pair int int))) (what ^ ": " ^ q) want got)
          query_strings
      in
      check_against "live" sh;
      (* WAL replay across a reopen *)
      Si.close_wal_sharded sh;
      let replayed = ok_exn "reopen" (Si.open_sharded p) in
      check_against "replayed" replayed;
      (* checkpoint one shard only: its debt drains, the others keep
         theirs.  The live old handle keeps answering from old-main +
         delta (same match set); the per-shard flip sheds the delta. *)
      let shard0_pending = Si.pending (Si.shard_handles replayed).(0) in
      let folded = ok_exn "ckpt0" (Si.checkpoint_sharded ~shard:0 replayed) in
      Alcotest.(check int) "shard 0 folded" shard0_pending folded;
      check_against "after shard-0 checkpoint, old handle" replayed;
      Si.close_wal (Si.shard_handles replayed).(0);
      let flipped0 = ok_exn "flip shard 0" (Si.reopen_shard replayed 0) in
      Alcotest.(check int)
        "others keep debt"
        (8 - shard0_pending)
        (Si.pending_sharded flipped0);
      check_against "after shard-0 flip" flipped0;
      (* checkpoint the rest, reopen: clean set, same answers *)
      ignore (ok_exn "ckpt all" (Si.checkpoint_sharded flipped0));
      Si.close_wal_sharded flipped0;
      Si.close_wal_sharded replayed;
      let clean = ok_exn "clean reopen" (Si.open_sharded p) in
      Alcotest.(check int) "clean pending" 0 (Si.pending_sharded clean);
      check_against "clean" clean;
      (* per-shard zero-downtime flip: reopen_shard keeps answering *)
      let flipped = ok_exn "reopen_shard" (Si.reopen_shard clean 1) in
      check_against "flipped" flipped)

(* ---- mixed-set refusal --------------------------------------------------- *)

let test_mixed_set_refused () =
  with_prefix "mixed" (fun p ->
      let trees = corpus 40 61 in
      ignore
        (ok_exn "build"
           (Si.build_sharded ~shards:2 ~scheme:Coding.Interval ~mss:3 ~trees p));
      (* a manifest claiming 3 shards over a 2-shard file set: refused
         (shard 2 has no files -> Io; a forged empty shard 2 would skew
         the count assignment -> Schema_mismatch) *)
      Shardmap.save { Shardmap.shards = 3; scheme = Coding.Interval; mss = 3 } p;
      (match Si.open_sharded p with
      | Error (Si_error.Io _ | Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "mixed manifest accepted");
      (* manifest scheme disagreeing with the member shards: refused *)
      Shardmap.save
        { Shardmap.shards = 2; scheme = Coding.Filter; mss = 3 }
        p;
      (match Si.open_sharded p with
      | Error (Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "mixed scheme accepted");
      (* restore, then swap shard 1's files for a different corpus: the
         count assignment no longer matches the router -> refused *)
      Shardmap.save { Shardmap.shards = 2; scheme = Coding.Interval; mss = 3 } p;
      ignore (ok_exn "restore opens" (Si.open_sharded p));
      let foreign = corpus 11 999 in
      ignore
        (Si.build ~scheme:Coding.Interval ~mss:3 ~trees:foreign
           ~prefix:(Shardmap.shard_prefix p 1) ());
      match Si.open_sharded p with
      | Error (Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "foreign shard accepted")

let suite =
  [
    Alcotest.test_case "shardmap: router deterministic and spread" `Quick
      test_router_deterministic;
    Alcotest.test_case "shardmap: manifest roundtrip" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "shardmap: malformed manifests refused" `Quick
      test_manifest_refusals;
    Alcotest.test_case "sharded: build/open/query = unsharded" `Quick
      test_sharded_basic;
    Alcotest.test_case "sharded: sentence by global tid" `Quick
      test_sentence_sharded;
    Alcotest.test_case "sharded: empty shards build and answer" `Quick
      test_empty_shards;
    qcheck qcheck_differential;
    Alcotest.test_case "sharded: merge truncation contract" `Quick
      test_merge_truncation;
    Alcotest.test_case "sharded: brownout degradation via failpoint" `Quick
      test_degrade_failpoint;
    Alcotest.test_case "sharded: routed insert + per-shard checkpoint" `Quick
      test_insert_checkpoint_sharded;
    Alcotest.test_case "sharded: mixed shard sets refused" `Quick
      test_mixed_set_refused;
  ]
