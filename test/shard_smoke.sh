#!/usr/bin/env bash
# Sharded serving acceptance test (ISSUE 9): a 3-shard corpus behind a
# real `si_tool serve --listen` process.  Covers: sharded ≡ unsharded
# query answers via the CLI, the "shards" stats section on both
# producers, fan-out QUERY answers over the wire (shards= / degraded=
# markers), INSERT routed to the owning shard's WAL, per-shard
# CHECKPOINT and SWAP shard=K riding the generation state machine with
# zero dropped queries under concurrent load, and a failpoint-killed
# shard mid-session degrading to a brownout (truncated subset answers,
# server up) instead of a refusal.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "shard_smoke FAIL: $*" >&2; exit 1; }

# ---- fixtures: the same corpus as one index and as three shards ----------
"$TOOL" gen -n 300 --seed 2012 -o "$DIR/c.penn" 2>/dev/null
"$TOOL" build --corpus "$DIR/c.penn" --prefix "$DIR/flat" --scheme root-split --mss 3 >/dev/null
"$TOOL" build --corpus "$DIR/c.penn" --prefix "$DIR/ix" --scheme root-split --mss 3 --shards 3 >/dev/null
[ -f "$DIR/ix.shards" ] || fail "no .shards manifest published"

# ---- differential: sharded answers = unsharded answers -------------------
for Q in 'S(NP)(VP)' 'S(NP(DT)(NN))(VP)' 'NP(DT)(NN)' 'S(//NN)'; do
  a=$("$TOOL" query --prefix "$DIR/flat" "$Q" | head -1)
  b=$("$TOOL" query --prefix "$DIR/ix" "$Q" | head -1)
  [ "$a" = "$b" ] || fail "sharded/unsharded diverge on $Q: '$a' vs '$b'"
done
"$TOOL" query --prefix "$DIR/ix" 'S(NP)(VP)' --check-oracle | grep -q 'oracle: OK' \
  || fail "sharded oracle cross-check"

Q='S(NP(DT)(NN))(VP)'
CN=$("$TOOL" query --prefix "$DIR/ix" "$Q" | head -1 | awk '{print $1}')

# ---- offline stats carry the sharded view --------------------------------
"$TOOL" stats --prefix "$DIR/ix" | grep -q 'backend=sharded shards=3' \
  || fail "text stats missing sharded backend"
json=$("$TOOL" stats --prefix "$DIR/ix" --json)
grep -qF '"shards":{"count":3' <<<"$json" || fail "stats --json shards section: $json"
grep -qF '"wal":{"pending":0' <<<"$json" || fail "stats --json wal section: $json"

# ---- server lifecycle helpers (same shape as serve_net_test.sh) ----------
start_server() { # start_server [extra flags...]
  "$TOOL" serve --prefix "$DIR/ix" --listen 0 "$@" >"$DIR/server.log" 2>&1 &
  SRV_PID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$DIR/server.log" | head -1)
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died on startup: $(cat "$DIR/server.log")"
    sleep 0.05
  done
  [ -n "$PORT" ] || fail "server never reported its port: $(cat "$DIR/server.log")"
}

stop_server() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  SRV_PID=""
}

req() { # req "REQUEST LINE"
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT"
  printf '%s\nQUIT\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

start_server

# ---- fan-out answers carry the shard markers -----------------------------
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CN truncated=0 gen=1 us=[0-9.]* shards=3 degraded=0" <<<"$out" \
  || fail "fan-out answer: $out"

out=$(req "STATS")
grep -qF '"backend":"sharded"' <<<"$out" || fail "STATS sharded backend: $out"
grep -qF '"shards":{"count":3' <<<"$out" || fail "STATS shards section: $out"
grep -qF '"degraded":0' <<<"$out" || fail "STATS degraded counter: $out"

# shard arguments are validated, never crash the server
out=$(req "SWAP shard=9")
grep -q '^ERR bad_query' <<<"$out" || fail "SWAP shard out of range: $out"
out=$(req "CHECKPOINT shard=9")
grep -q '^ERR bad_query' <<<"$out" || fail "CHECKPOINT shard out of range: $out"
out=$(req "SWAP shard=x")
grep -q '^ERR bad_request' <<<"$out" || fail "SWAP shard=x: $out"

# ---- concurrent queries racing a per-shard SWAP: zero drops --------------
client_loop() { # client_loop OUTFILE
  local i
  for i in $(seq 30); do
    req "QUERY $Q count_only=1 client=loop$$" >>"$1" || true
  done
}
: >"$DIR/c1.out"; : >"$DIR/c2.out"
client_loop "$DIR/c1.out" & C1=$!
client_loop "$DIR/c2.out" & C2=$!
sleep 0.1
out=$(req "SWAP shard=0")
grep -q 'OK gen=2 shard=0' <<<"$out" || fail "SWAP shard=0: $out"
wait "$C1" "$C2"
answers=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" | wc -l)
[ "$answers" = 60 ] || fail "dropped queries during per-shard swap: $answers/60"
# every answer is the full count from exactly one generation, never torn
bad=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" \
  | grep -v -e "n=$CN truncated=0 gen=1 .* degraded=0" \
            -e "n=$CN truncated=0 gen=2 .* degraded=0" || true)
[ -z "$bad" ] || fail "torn answer(s) during per-shard swap: $bad"

# ---- INSERT routes to the owning shard's WAL -----------------------------
out=$(req "INSERT (S (NP (DT zzthe) (NN zzcat)) (VP (VB zzsat)))")
grep -q '^OK n=301 pending=1 gen=2 shard=[0-2]$' <<<"$out" || fail "routed INSERT: $out"
K=$(sed -n 's/.*shard=\([0-2]\)$/\1/p' <<<"$out")

# the inserted tree is queryable immediately (from the delta)...
out=$(req "QUERY NP(DT(zzthe))(NN(zzcat)) count_only=1")
grep -q 'OK n=1 truncated=0' <<<"$out" || fail "delta not served: $out"

# ...and a per-shard checkpoint folds exactly that shard's slice
out=$(req "CHECKPOINT shard=$K")
grep -q 'OK merged=1 gen=3' <<<"$out" || fail "per-shard CHECKPOINT: $out"
out=$(req "QUERY NP(DT(zzthe))(NN(zzcat)) count_only=1")
grep -q 'OK n=1 truncated=0 gen=3' <<<"$out" || fail "post-checkpoint answer: $out"
out=$(req "CHECKPOINT")
grep -q 'OK merged=0 gen=3' <<<"$out" || fail "second CHECKPOINT not idempotent: $out"
stop_server

# the fold is durable: a fresh offline open agrees
"$TOOL" query --prefix "$DIR/ix" 'NP(DT(zzthe))(NN(zzcat))' --check-oracle \
  | grep -q '1 matches' || fail "checkpointed tree lost after reopen"

# ---- a shard killed mid-session: brownout, not 503 -----------------------
# si.shard.eval.1=fail@3+ lets the first two fan-outs through then kills
# shard 1's leg on every later query: answers degrade to a truncated
# subset (degraded=1) and the server keeps serving.  The inserted tree
# also matches Q, so the healthy count is now CN + 1.
CN1=$((CN + 1))
SI_FAILPOINTS='si.shard.eval.1=fail@3+' start_server
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CN1 truncated=0 gen=1 us=[0-9.]* shards=3 degraded=0" <<<"$out" \
  || fail "pre-onset query: $out"
out=$(req "QUERY $Q count_only=1")
grep -q "degraded=0" <<<"$out" || fail "second pre-onset query: $out"
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=[0-9]* truncated=1 gen=1 us=[0-9.]* shards=3 degraded=1" <<<"$out" \
  || fail "brownout answer: $out"
n_degraded=$(sed -n 's/^OK n=\([0-9]*\) .*/\1/p' <<<"$out")
[ "$n_degraded" -lt "$CN1" ] || fail "degraded answer not a strict subset: $n_degraded vs $CN1"
out=$(req "HEALTH")
grep -q '^OK gen=1' <<<"$out" || fail "server down after shard loss: $out"
out=$(req "STATS")
grep -qF '"degraded":1' <<<"$out" || fail "degraded not counted: $out"
stop_server

echo "shard_smoke: OK"
