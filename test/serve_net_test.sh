#!/usr/bin/env bash
# Client-driven acceptance test of the network serving layer (ISSUE 6):
# a real `si_tool serve --listen` process exercised over TCP with bash
# /dev/tcp clients.  Covers: query + admin verbs, concurrent queries
# racing a live SWAP (zero drops, every answer from exactly one
# generation), per-client quota rejection, deadline-exceeded responses
# and their --partial degradation, a failpoint-killed swap leaving the
# old index serving, SIGHUP reload, and graceful drain on SHUTDOWN.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "serve_net_test FAIL: $*" >&2; exit 1; }

# ---- fixtures: two index generations with distinguishable answers --------
"$TOOL" gen -n 300 --seed 2012 -o "$DIR/a.penn" 2>/dev/null
"$TOOL" gen -n 300 --seed 99   -o "$DIR/b.penn" 2>/dev/null
"$TOOL" build --corpus "$DIR/a.penn" --prefix "$DIR/ixA" --scheme root-split --mss 3 >/dev/null
"$TOOL" build --corpus "$DIR/b.penn" --prefix "$DIR/ixB" --scheme root-split --mss 3 >/dev/null

Q='S(NP(DT)(NN))(VP)'
CA=$("$TOOL" query --prefix "$DIR/ixA" "$Q" | head -1 | cut -f1 | awk '{print $1}')
CB=$("$TOOL" query --prefix "$DIR/ixB" "$Q" | head -1 | cut -f1 | awk '{print $1}')
[ "$CA" != "$CB" ] || fail "fixture counts identical ($CA) — cannot attribute generations"

# ---- start the server on an ephemeral port -------------------------------
start_server() { # start_server [extra flags...]
  "$TOOL" serve --prefix "$DIR/ixA" --listen 0 "$@" >"$DIR/server.log" 2>&1 &
  SRV_PID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$DIR/server.log" | head -1)
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died on startup: $(cat "$DIR/server.log")"
    sleep 0.05
  done
  [ -n "$PORT" ] || fail "server never reported its port: $(cat "$DIR/server.log")"
}

stop_server() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  SRV_PID=""
}

# one request per connection; prints every response line
req() { # req "REQUEST LINE"
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT"
  printf '%s\nQUIT\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

start_server

# ---- basic verbs ---------------------------------------------------------
out=$(req "HEALTH")
grep -q 'OK .*gen=1' <<<"$out" || fail "HEALTH: $out"

out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CA truncated=0 gen=1" <<<"$out" || fail "QUERY gen1: $out"

out=$(req "STATS")
grep -qF '"index"'   <<<"$out" || fail "STATS missing index: $out"
grep -qF '"serving"' <<<"$out" || fail "STATS missing serving: $out"
grep -qF '"generation":1' <<<"$out" || fail "STATS generation: $out"

# the STATS payload is the same schema stats --json emits for the index
idx_wire=$(req "STATS" | grep -o '"index":{[^}]*}')
idx_cli=$("$TOOL" stats --prefix "$DIR/ixA" --json | grep -o '"index":{[^}]*}')
[ "$idx_wire" = "$idx_cli" ] || fail "STATS/stats --json schema drift: $idx_wire vs $idx_cli"

out=$(req "NO_SUCH_VERB")
grep -q '^ERR bad_request' <<<"$out" || fail "unknown verb: $out"

out=$(req "QUERY S((NP)")
grep -q '^ERR bad_query' <<<"$out" || fail "syntax error: $out"

# ---- deadline-exceeded and partial degradation ---------------------------
out=$(req "QUERY S(//NP)(//NP) deadline_ms=0")
grep -q '^ERR timeout' <<<"$out" || fail "deadline: $out"

out=$(req "QUERY S(//NP)(//NP) deadline_ms=0 partial=1")
grep -q 'OK n=[0-9]* truncated=1' <<<"$out" || fail "partial degradation: $out"

# ---- concurrent queries racing a live SWAP -------------------------------
# Two client loops hammer the server while the index is swapped under
# them.  Zero drops allowed; every answer must be (CA, gen 1) or (CB,
# gen 2) — i.e. from exactly one generation, never a torn mix.
client_loop() { # client_loop OUTFILE
  local i
  for i in $(seq 40); do
    req "QUERY $Q count_only=1 client=loop$$" >>"$1" || true
  done
}
: >"$DIR/c1.out"; : >"$DIR/c2.out"
client_loop "$DIR/c1.out" & C1=$!
client_loop "$DIR/c2.out" & C2=$!
sleep 0.15
out=$(req "SWAP $DIR/ixB")
grep -q 'OK gen=2' <<<"$out" || fail "SWAP: $out"
wait "$C1" "$C2"

answers=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" | wc -l)
[ "$answers" = 80 ] || fail "dropped requests during swap: $answers/80 answered"
bad=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" \
  | grep -v -e "n=$CA truncated=0 gen=1" -e "n=$CB truncated=0 gen=2" || true)
[ -z "$bad" ] || fail "torn generation answer(s): $bad"

# both generations actually served during the race, and post-swap traffic
# is on generation 2
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CB truncated=0 gen=2" <<<"$out" || fail "post-swap answer: $out"

# ---- failpoint-killed swap: old index keeps serving ----------------------
out=$(req "SWAP $DIR/no-such-prefix")
grep -q '^ERR io' <<<"$out" || fail "swap to missing prefix: $out"
out=$(req "QUERY $Q count_only=1")
grep -q 'gen=2' <<<"$out" || fail "failed swap disturbed serving: $out"

# ---- SIGHUP reload: re-opens the current prefix as a new generation ------
kill -HUP "$SRV_PID"
for _ in $(seq 100); do
  grep -q 'SIGHUP reload -> generation 3' "$DIR/server.log" && break
  sleep 0.05
done
grep -q 'SIGHUP reload -> generation 3' "$DIR/server.log" \
  || fail "SIGHUP reload missing: $(cat "$DIR/server.log")"
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CB truncated=0 gen=3" <<<"$out" || fail "post-HUP answer: $out"

# ---- graceful drain on SHUTDOWN ------------------------------------------
out=$(req "SHUTDOWN")
grep -q '^OK draining' <<<"$out" || fail "SHUTDOWN ack: $out"
wait "$SRV_PID" || fail "server exited non-zero after SHUTDOWN"
SRV_PID=""
grep -q 'shutdown complete: queries=' "$DIR/server.log" || fail "no shutdown summary"
qps=$(sed -n 's/.*qps=\([0-9.]*\).*/\1/p' "$DIR/server.log" | head -1)
awk -v q="$qps" 'BEGIN{exit !(q > 0)}' || fail "shutdown summary qps=$qps not positive"

# ---- a swap killed mid-flight by a failpoint -----------------------------
# serve.swap.open=fail@1 aborts the FIRST swap attempt; the server stays
# up on generation 1 and the second attempt (failpoint spent) succeeds.
SI_FAILPOINTS='serve.swap.open=fail@1' start_server
out=$(req "SWAP $DIR/ixB")
grep -q '^ERR internal' <<<"$out" || fail "armed swap should abort: $out"
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CA truncated=0 gen=1" <<<"$out" || fail "old index not serving after aborted swap: $out"
out=$(req "SWAP $DIR/ixB")
grep -q 'OK gen=2' <<<"$out" || fail "second swap (failpoint spent): $out"
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CB truncated=0 gen=2" <<<"$out" || fail "post-retry answer: $out"
stop_server

# ---- per-client quota rejection ------------------------------------------
start_server --quota-rps 0.000001 --quota-burst 2
ok=0; rejected=0
for i in 1 2 3; do
  out=$(req "QUERY $Q count_only=1 client=alice")
  if grep -q '^OK n=' <<<"$out"; then ok=$((ok+1)); fi
  if grep -q '^ERR quota_exceeded' <<<"$out"; then rejected=$((rejected+1)); fi
done
[ "$ok" = 2 ] || fail "quota burst 2 admitted $ok"
[ "$rejected" = 1 ] || fail "quota burst 2 rejected $rejected"
# a different client id draws from its own bucket
out=$(req "QUERY $Q count_only=1 client=bob")
grep -q '^OK n=' <<<"$out" || fail "quota leaked across clients: $out"
# rejections are visible in the metrics
out=$(req "STATS")
grep -qF '"quota":1' <<<"$out" || fail "STATS quota counter: $out"
stop_server

echo "serve_net_test: OK"
