open Si_treebank
open Si_subtree

let qcheck = QCheck_alcotest.to_alcotest

let prop_varint =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(oneof [ int_bound 127; int_bound 100_000; int_bound max_int ])
    (fun v ->
      let buf = Buffer.create 8 in
      Varint.write buf v;
      let s = Buffer.contents buf in
      let v', off = Varint.read s 0 in
      v = v' && off = String.length s && Varint.size v = String.length s)

(* shuffle children recursively with a seeded rng *)
let rec shuffle rng (t : Tree.t) =
  let kids = List.map (shuffle rng) t.Tree.children in
  let arr = Array.of_list kids in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Si_grammar.Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  { t with Tree.children = Array.to_list arr }

let prop_canonical_invariant =
  QCheck.Test.make ~name:"canonical key invariant under child order" ~count:200
    (QCheck.pair Test_treebank.arb_tree QCheck.small_int) (fun (t, seed) ->
      QCheck.assume (Si_treebank.Tree.size t <= 255);
      let rng = Si_grammar.Prng.create seed in
      String.equal (Canonical.encode_tree t) (Canonical.encode_tree (shuffle rng t)))

let prop_decode =
  QCheck.Test.make ~name:"decode inverts encode (canonical form)" ~count:200
    Test_treebank.arb_tree (fun t ->
      QCheck.assume (Tree.size t <= 255);
      let key = Canonical.encode_tree t in
      let d = Canonical.decode key in
      String.equal key (Canonical.encode_tree d)
      && Canonical.key_size key = Tree.size t
      && Tree.size d = Tree.size t)

(* canonical node with pre-order payloads, for alignment tests *)
let with_preorder (t : Tree.t) =
  let next = ref 0 in
  let rec go (t : Tree.t) =
    let id = !next in
    incr next;
    { Canonical.label = t.Tree.label; payload = id; kids = List.map go t.Tree.children }
  in
  go t

let test_payload_order () =
  let t = Penn.parse_one_exn "(S (NP (DT d)) (VP v))" in
  let key, payloads = Canonical.encode (with_preorder t) in
  Alcotest.(check int) "root first" 0 payloads.(0);
  Alcotest.(check int) "all nodes" (Tree.size t) (Array.length payloads);
  Alcotest.(check bool) "payloads are a permutation" true
    (List.sort compare (Array.to_list payloads) = List.init (Tree.size t) Fun.id);
  Alcotest.(check int) "key size" (Tree.size t) (Canonical.key_size key)

let test_alignments () =
  let orders s = snd (Canonical.encodings (with_preorder (Penn.parse_one_exn s))) in
  Alcotest.(check int) "asymmetric: unique alignment" 1
    (List.length (orders "(S (NP n) (VP v))"));
  Alcotest.(check int) "two symmetric leaves" 2 (List.length (orders "(NP NN NN)"));
  Alcotest.(check int) "three symmetric leaves" 6 (List.length (orders "(NP NN NN NN)"));
  (* |Aut| = 2 (swap the NPs) x 2 x 2 (swap NNs inside each) *)
  Alcotest.(check int) "nested symmetry" 8
    (List.length (orders "(S (NP NN NN) (NP NN NN))"));
  (* first order is the default encode order *)
  let t = with_preorder (Penn.parse_one_exn "(NP NN NN)") in
  let _, os = Canonical.encodings t in
  Alcotest.(check bool) "default first" true (List.hd os = snd (Canonical.encode t))

let test_extract_counts () =
  (* 9-node tree probed by hand: size<=1 -> 9 (nodes), <=2 -> +8 (edges) *)
  let d = Annotated.of_tree (Penn.parse_one_exn "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))") in
  Alcotest.(check int) "mss=1" 9 (Extract.count_instances d ~mss:1);
  Alcotest.(check int) "mss=2" 17 (Extract.count_instances d ~mss:2);
  (* chain a-b-c: subtrees {a},{b},{c},{ab},{bc},{abc} *)
  let chain = Annotated.of_tree (Penn.parse_one_exn "(a (b c))") in
  Alcotest.(check int) "chain mss=3" 6 (Extract.count_instances chain ~mss:3);
  (* star with 3 leaves, mss=4: 4 singletons + 3 pairs + 3 triples + 1 quad *)
  let star = Annotated.of_tree (Penn.parse_one_exn "(r x y z)") in
  Alcotest.(check int) "star mss=4" 11 (Extract.count_instances star ~mss:4)

let prop_extract =
  QCheck.Test.make ~name:"extraction wellformedness" ~count:100 Test_treebank.arb_tree
    (fun t ->
      let d = Annotated.of_tree t in
      let mss = 3 in
      let seen = Hashtbl.create 64 in
      Extract.fold_instances d ~mss ~init:true ~f:(fun ok ~key ~nodes ->
          let sz = Canonical.key_size key in
          let distinct =
            List.length (List.sort_uniq compare (Array.to_list nodes))
            = Array.length nodes
          in
          (* instances are enumerated exactly once *)
          let id = (key, Array.to_list nodes |> List.sort compare) in
          let fresh = not (Hashtbl.mem seen id) in
          Hashtbl.replace seen id ();
          ok && fresh && distinct
          && sz = Array.length nodes
          && sz >= 1 && sz <= mss
          (* the key's label multiset matches the data nodes' labels *)
          && List.sort compare
               (Tree.fold (fun acc n -> n.Tree.label :: acc) [] (Canonical.decode key))
             = List.sort compare
                 (Array.to_list (Array.map (fun v -> d.Annotated.label.(v)) nodes))))

let suite =
  [
    qcheck prop_varint;
    qcheck prop_canonical_invariant;
    qcheck prop_decode;
    Alcotest.test_case "payload order" `Quick test_payload_order;
    Alcotest.test_case "alignments" `Quick test_alignments;
    Alcotest.test_case "extraction counts" `Quick test_extract_counts;
    qcheck prop_extract;
  ]
