(* Serving-path tests: the bounded decode cache, the block-skip streaming
   cursor, the streaming evaluators' differential against the legacy
   full-decode path, the parallel batch evaluator, and SIDX3/SIDX2
   cross-version compatibility. *)

open Si_treebank
open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let save_exn b p = ok_exn "save" (Builder.save b p)
let load_exn p = ok_exn "load" (Builder.load p)
let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let docs trees = Array.of_list (List.map Annotated.of_tree trees)

let with_temp f =
  let path = Filename.temp_file "si_serve" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let schemes = [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let query_strings =
  [
    "S(NP)(VP)";
    "S(NP(DT)(NN))(VP)";
    "NP(DT)(NN)";
    "NP(NN)(NN)";
    "S(//NN)";
    "S(NP)(VP(//NP(NN)))";
    "S(//NP)(//NP)";
    "VP(VBZ)(NP(DT)(NN))";
    "NP(NP(//NN))(PP)";
    "S(//PP(IN)(NP))";
  ]

let queries = List.map Si_query.Parser.parse_exn query_strings

(* ---- the bounded LRU cache --------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~budget:100 ~cost:String.length () in
  let calls = ref 0 in
  let get k v = Cache.find_or_add c k (fun () -> incr calls; v) in
  Alcotest.(check string) "first get produces" "aaaa" (get 1 "aaaa");
  Alcotest.(check string) "second get cached" "aaaa" (get 1 "ignored");
  Alcotest.(check int) "producer ran once" 1 !calls;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "resident" 4 s.Cache.resident;
  Alcotest.(check int) "entries" 1 s.Cache.entries;
  Alcotest.(check int) "budget" 100 s.Cache.budget

let test_cache_eviction_lru () =
  (* budget 8, entries cost 4: the third insert evicts the coldest *)
  let c = Cache.create ~budget:8 ~cost:String.length () in
  let get k = Cache.find_or_add c k (fun () -> String.make 4 (Char.chr (65 + k))) in
  ignore (get 0);
  ignore (get 1);
  ignore (get 0);
  (* 0 is now hottest *)
  ignore (get 2);
  (* must evict 1, the LRU — not 0 *)
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "resident stays within budget" 8 s.Cache.resident;
  let before = (Cache.stats c).Cache.hits in
  ignore (get 0);
  Alcotest.(check int) "0 survived (hit)" (before + 1) (Cache.stats c).Cache.hits;
  ignore (get 1);
  Alcotest.(check int) "1 was evicted (miss)" 4 (Cache.stats c).Cache.misses

let test_cache_over_budget () =
  let c = Cache.create ~budget:10 ~cost:String.length () in
  let v = Cache.find_or_add c 0 (fun () -> String.make 20 'x') in
  Alcotest.(check int) "value still returned" 20 (String.length v);
  let s = Cache.stats c in
  Alcotest.(check int) "not retained" 0 s.Cache.entries;
  Alcotest.(check int) "resident empty" 0 s.Cache.resident;
  (* a fetch of the same key is a miss again *)
  ignore (Cache.find_or_add c 0 (fun () -> "y"));
  Alcotest.(check int) "misses" 2 (Cache.stats c).Cache.misses

let test_cache_oversized_spares_rest () =
  (* an entry bigger than the whole budget is admitted at the cold end,
     served once, and reclaimed by the same eviction sweep — exactly one
     eviction, accounting back to where it was, and the resident entries
     untouched (the old path would have been a miss storm or a panic) *)
  let c = Cache.create ~budget:10 ~cost:String.length () in
  ignore (Cache.find_or_add c 1 (fun () -> "aaaa"));
  ignore (Cache.find_or_add c 2 (fun () -> "bbbb"));
  let s0 = Cache.stats c in
  Alcotest.(check int) "resident before" 8 s0.Cache.resident;
  let v = Cache.find_or_add c 3 (fun () -> String.make 25 'x') in
  Alcotest.(check int) "oversized value served" 25 (String.length v);
  let s = Cache.stats c in
  Alcotest.(check int) "exactly one eviction (itself)" 1 s.Cache.evictions;
  Alcotest.(check int) "accounting exact" 8 s.Cache.resident;
  Alcotest.(check int) "small entries survive" 2 s.Cache.entries;
  ignore (Cache.find_or_add c 1 (fun () -> Alcotest.fail "1 was dumped"));
  ignore (Cache.find_or_add c 2 (fun () -> Alcotest.fail "2 was dumped"));
  Alcotest.(check int) "survivors hit" 2 (Cache.stats c).Cache.hits

let test_cache_produce_exception () =
  let c = Cache.create ~budget:10 ~cost:String.length () in
  (match Cache.find_or_add c 0 (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "nothing inserted" 0 (Cache.stats c).Cache.entries

(* ---- the streaming cursor over forced-small blocks --------------------- *)

let posting_tids p = List.init (Coding.entries p) (Coding.tid_at p)

let biggest_key b =
  let best = ref None in
  Builder.iter b (fun key p ->
      let n = Coding.entries p in
      match !best with
      | Some (_, m) when m >= n -> ()
      | _ -> best := Some ((key, p), n));
  match !best with
  | Some ((key, p), _) -> (key, p)
  | None -> Alcotest.fail "empty index"

let test_cursor_walk_and_seek () =
  let d = docs (corpus 120 73) in
  let b = Builder.build ~block_entries:4 ~scheme:Coding.Filter ~mss:2 d in
  let key, posting = biggest_key b in
  let tids = posting_tids posting in
  Alcotest.(check bool) "posting spans multiple blocks" true
    (List.length tids > 8);
  (* sequential walk reproduces the full tid list *)
  let cur = Option.get (Cursor.create b key) in
  let walked = ref [] in
  while not (Cursor.exhausted cur) do
    walked := Option.get (Cursor.peek cur) :: !walked;
    Cursor.advance cur
  done;
  Alcotest.(check (list int)) "walk = full decode" tids (List.rev !walked);
  (* seek to every present tid lands exactly on it *)
  let cache = Cursor.create_cache () in
  List.iter
    (fun t ->
      let cur = Option.get (Cursor.create ~cache b key) in
      Cursor.seek cur t;
      Alcotest.(check (option int)) "seek lands on tid" (Some t) (Cursor.peek cur))
    tids;
  (* seek to an absent tid lands on the successor; past the end exhausts *)
  let arr = Array.of_list tids in
  let succ_of t =
    let rec go i = if i >= Array.length arr then None
      else if arr.(i) >= t then Some arr.(i) else go (i + 1) in
    go 0
  in
  List.iter
    (fun t ->
      let cur = Option.get (Cursor.create ~cache b key) in
      Cursor.seek cur (t + 1);
      Alcotest.(check (option int)) "seek to gap" (succ_of (t + 1)) (Cursor.peek cur))
    tids;
  let cur = Option.get (Cursor.create ~cache b key) in
  Cursor.seek cur (List.fold_left max 0 tids + 1);
  Alcotest.(check bool) "seek past end exhausts" true (Cursor.exhausted cur);
  (* monotone interleaved seeks on one cursor (the join access pattern) *)
  let cur = Option.get (Cursor.create ~cache b key) in
  List.iter
    (fun t ->
      Cursor.seek cur t;
      Alcotest.(check (option int)) "monotone reseek" (Some t) (Cursor.peek cur))
    tids;
  Alcotest.(check bool) "cursor absent key" true (Cursor.create b "\xff\xff" = None)

(* ---- streaming differential: blocked + cached = full decode = oracle --- *)

let check_stream_differential ~seed ~n ~mss =
  let d = docs (corpus n seed) in
  let oracle = List.map (fun q -> (q, Si_query.Matcher.corpus_roots d q)) queries in
  List.iter
    (fun scheme ->
      (* block_entries=4 forces real multi-block postings on a small corpus;
         the file round trip makes the cursors walk mmap-shaped file bytes *)
      let built = Builder.build ~block_entries:4 ~scheme ~mss d in
      let index = with_temp (fun p -> save_exn built p; load_exn p) in
      let cache = Cursor.create_cache () in
      let nocache = Cursor.create_cache ~budget:0 () in
      List.iter
        (fun (q, want) ->
          let ctx =
            Printf.sprintf "%s/%s mss=%d" (Coding.scheme_to_string scheme)
              (Si_query.Ast.to_string q) mss
          in
          let legacy = Eval.run_exn ~index ~corpus:(Corpus.of_array d) q in
          let cold = Eval.run_exn ~index ~corpus:(Corpus.of_array d) ~cache q in
          let warm = Eval.run_exn ~index ~corpus:(Corpus.of_array d) ~cache q in
          let evicting = Eval.run_exn ~index ~corpus:(Corpus.of_array d) ~cache:nocache q in
          if legacy <> want then
            QCheck.Test.fail_reportf "legacy path diverges from oracle: %s" ctx;
          if cold <> want then
            QCheck.Test.fail_reportf "streaming (cold cache) diverges: %s" ctx;
          if warm <> want then
            QCheck.Test.fail_reportf "streaming (warm cache) diverges: %s" ctx;
          if evicting <> want then
            QCheck.Test.fail_reportf "streaming (zero budget) diverges: %s" ctx)
        oracle)
    schemes

let prop_stream_differential =
  QCheck.Test.make
    ~name:"block-skip + cache streaming = full decode = oracle (3 codings, mss 1-3)"
    ~count:5
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      check_stream_differential ~seed:(seed + 307) ~n:50 ~mss;
      true)

let test_stream_differential_fixed () =
  check_stream_differential ~seed:42 ~n:120 ~mss:3;
  check_stream_differential ~seed:7 ~n:120 ~mss:1

(* ---- parallel batch over one shared handle ----------------------------- *)

let test_batch_parallel () =
  let trees = corpus 150 61 in
  List.iter
    (fun scheme ->
      let si = Si.build ~scheme ~mss:2 ~trees () in
      let qarr = Array.init 60 (fun i -> List.nth query_strings (i mod 10)) in
      let seq =
        Array.map (fun s -> ok_exn ("seq " ^ s) (Si.query si s)) qarr
      in
      List.iter
        (fun domains ->
          let batch = Si.query_batch ~domains ~cache_budget:(1 lsl 16) si qarr in
          Array.iteri
            (fun i ans ->
              let o = ok_exn "batch answer" ans in
              Alcotest.(check bool)
                (Printf.sprintf "batch d=%d q=%d not truncated" domains i)
                false o.Limits.truncated;
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "batch d=%d q=%d" domains i)
                seq.(i) o.Limits.matches)
            batch.Si.answers;
          Alcotest.(check int) "one latency per query" (Array.length qarr)
            (Array.length batch.Si.latencies_ns);
          Array.iter
            (fun l -> Alcotest.(check bool) "latency non-negative" true (l >= 0.))
            batch.Si.latencies_ns;
          let cs = batch.Si.cache in
          Alcotest.(check bool) "cache counters populated" true
            (cs.Cache.hits + cs.Cache.misses > 0))
        [ 1; 2; 4 ])
    schemes;
  let si = Si.build ~scheme:Coding.Filter ~mss:1 ~trees:(corpus 5 3) () in
  match Si.query_batch ~domains:0 si [| "S(NP)" |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 accepted"

let test_batch_bad_query_slot () =
  (* one malformed query in a batch poisons only its own slot *)
  let si = Si.build ~scheme:Coding.Root_split ~mss:2 ~trees:(corpus 30 83) () in
  let batch = Si.query_batch ~domains:2 si [| "S(NP)(VP)"; "S((NP)"; "NP(DT)(NN)" |] in
  (match batch.Si.answers.(1) with
  | Error (Si_error.Bad_query _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
  | Ok _ -> Alcotest.fail "syntax error accepted");
  ignore (ok_exn "slot 0" batch.Si.answers.(0));
  ignore (ok_exn "slot 2" batch.Si.answers.(2))

(* ---- SIDX3 on-disk format and cross-version compatibility -------------- *)

let check_same_postings what a b =
  Alcotest.(check int) (what ^ ": keys") (Builder.n_keys a) (Builder.n_keys b);
  Builder.iter a (fun key p ->
      match Builder.find_exn b key with
      | Some p' -> Alcotest.(check bool) (what ^ ": posting equal") true (p = p')
      | None -> Alcotest.failf "%s: key lost" what)

let test_v3_blocked_file_roundtrip () =
  let d = docs (corpus 150 71) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~block_entries:4 ~scheme ~mss:2 d in
      let b' = with_temp (fun p -> save_exn b p; load_exn p) in
      (* the saved file kept the forced blocking: some key spans > 1 block *)
      Alcotest.(check bool) "multi-block keys present" true
        (List.exists (fun (nb, _) -> nb > 1) (Builder.block_histogram b'));
      check_same_postings "v3 blocked roundtrip" b b')
    schemes

let test_sidx2_back_compat () =
  let d = docs (corpus 60 67) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:3 d in
      (* an SIDX2 file still loads, decodes and answers identically *)
      let via_v2 =
        with_temp (fun p -> ok_exn "save_v2" (Builder.save_v2 b p); load_exn p)
      in
      check_same_postings "SIDX2 load" b via_v2;
      let cache = Cursor.create_cache () in
      List.iter
        (fun q ->
          Alcotest.(check (list (pair int int)))
            ("SIDX2 streaming: " ^ Si_query.Ast.to_string q)
            (Eval.run_exn ~index:b ~corpus:(Corpus.of_array d) q)
            (Eval.run_exn ~index:via_v2 ~corpus:(Corpus.of_array d) ~cache q))
        queries;
      (* saving a V2-loaded index re-encodes to SIDX3 without loss *)
      let reconverted = with_temp (fun p -> save_exn via_v2 p; load_exn p) in
      check_same_postings "v2 -> v3 conversion" b reconverted;
      (* and a built index still writes a loadable SIDX2 on request *)
      let down =
        with_temp (fun p -> ok_exn "save_v2" (Builder.save_v2 reconverted p); load_exn p)
      in
      check_same_postings "v3 -> v2 conversion" b down)
    schemes

(* ---- v3 codec: flat/blocked threshold and layout ------------------------ *)

let test_pack_v3_layout () =
  let posting = Coding.Filter_p (Array.init 23 (fun i -> 3 * i)) in
  (* blocked: 23 entries at 4/block = 6 blocks *)
  let buf = Buffer.create 64 in
  Coding.pack_v3 ~block_entries:4 buf posting;
  let s = Buffer.contents buf in
  let count, blocks = Coding.v3_layout Coding.Filter (Coding.str s) 0 in
  Alcotest.(check int) "count" 23 count;
  Alcotest.(check int) "nblocks" 6 (Array.length blocks);
  Array.iteri
    (fun i b ->
      Alcotest.(check int) (Printf.sprintf "block %d first tid" i)
        (3 * 4 * i) b.Coding.first_tid;
      Alcotest.(check int) (Printf.sprintf "block %d entries" i)
        (if i = 5 then 3 else 4) b.Coding.bentries;
      let bp = Coding.unpack_block Coding.Filter ~key_size:1 (Coding.str s) b in
      Alcotest.(check int) "block decodes its entries"
        b.Coding.bentries (Coding.entries bp))
    blocks;
  let p', off = Coding.unpack_v3 Coding.Filter ~key_size:1 (Coding.str s) 0 in
  Alcotest.(check bool) "unpack_v3 = posting" true (p' = posting);
  Alcotest.(check int) "consumed all" (String.length s) off;
  Alcotest.(check int) "packed_entries_v3" 23 (Coding.packed_entries_v3 (Coding.str s) 0);
  (* at or under the threshold the body stays flat: one pseudo-block *)
  let buf = Buffer.create 64 in
  Coding.pack_v3 ~block_entries:32 buf posting;
  let s = Buffer.contents buf in
  let count, blocks = Coding.v3_layout Coding.Filter (Coding.str s) 0 in
  Alcotest.(check int) "flat count" 23 count;
  Alcotest.(check int) "flat = single block" 1 (Array.length blocks);
  let p', _ = Coding.unpack_v3 Coding.Filter ~key_size:1 (Coding.str s) 0 in
  Alcotest.(check bool) "flat unpack_v3 = posting" true (p' = posting)

let suite =
  [
    Alcotest.test_case "cache hit/miss accounting" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache LRU eviction order" `Quick test_cache_eviction_lru;
    Alcotest.test_case "cache oversized entry spares the rest" `Quick
      test_cache_oversized_spares_rest;
    Alcotest.test_case "cache over-budget value uncached" `Quick
      test_cache_over_budget;
    Alcotest.test_case "cache producer exception" `Quick
      test_cache_produce_exception;
    Alcotest.test_case "cursor walk and seek (blocked)" `Quick
      test_cursor_walk_and_seek;
    qcheck prop_stream_differential;
    Alcotest.test_case "streaming differential (fixed)" `Slow
      test_stream_differential_fixed;
    Alcotest.test_case "parallel batch = sequential" `Slow test_batch_parallel;
    Alcotest.test_case "batch isolates bad query" `Quick test_batch_bad_query_slot;
    Alcotest.test_case "SIDX3 blocked file roundtrip" `Quick
      test_v3_blocked_file_roundtrip;
    Alcotest.test_case "SIDX2 back-compat + conversion" `Slow test_sidx2_back_compat;
    Alcotest.test_case "pack_v3 layout (flat/blocked)" `Quick test_pack_v3_layout;
  ]
