open Si_treebank
open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let interval_gen =
  QCheck.Gen.(
    map3
      (fun pre post level -> { Coding.pre; post; level })
      (int_bound 10_000) (int_bound 10_000) (int_bound 30))

let posting_gen =
  let open QCheck.Gen in
  let tids = map (fun l -> List.sort_uniq compare l) (list_size (1 -- 20) (int_bound 5000)) in
  oneof
    [
      map (fun l -> Coding.Filter_p (Array.of_list l)) tids;
      ( pair tids (1 -- 4) >>= fun (ts, k) ->
        map
          (fun ivss ->
            Coding.Interval_p
              (Array.of_list (List.combine ts (List.map Array.of_list ivss))))
          (list_repeat (List.length ts) (list_repeat k interval_gen)) );
      ( tids >>= fun ts ->
        map
          (fun ivs -> Coding.Root_p (Array.of_list (List.combine ts ivs)))
          (list_repeat (List.length ts) interval_gen) );
    ]

let key_size_of = function
  | Coding.Interval_p rows when Array.length rows > 0 ->
      Array.length (snd rows.(0))
  | _ -> 1

let scheme_of = function
  | Coding.Filter_p _ -> Coding.Filter
  | Coding.Interval_p _ -> Coding.Interval
  | Coding.Root_p _ -> Coding.Root_split

let prop_posting_codec =
  QCheck.Test.make ~name:"posting codec roundtrip" ~count:300
    (QCheck.make posting_gen) (fun p ->
      let buf = Buffer.create 64 in
      Coding.write buf p;
      let s = Buffer.contents buf in
      let p', off = Coding.read (scheme_of p) ~key_size:(key_size_of p) s 0 in
      p = p' && off = String.length s)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let docs trees = Array.of_list (List.map Annotated.of_tree trees)

(* SIDX2 packing relies on corpus invariants (post = pre + size - 1 - level,
   instance nodes descend from the instance root), so its roundtrip is
   checked on postings from real builds rather than free-form generators. *)
let prop_pack_roundtrip =
  QCheck.Test.make ~name:"SIDX2 pack/unpack roundtrip (built postings)"
    ~count:12
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss (docs (corpus 30 (seed + 3))) in
          Builder.iter b (fun key p ->
              let buf = Buffer.create 64 in
              Coding.pack buf p;
              let s = Buffer.contents buf in
              let p', off =
                Coding.unpack scheme ~key_size:(Si_subtree.Canonical.key_size key) s 0
              in
              if p <> p' || off <> String.length s then
                QCheck.Test.fail_reportf "pack/unpack mismatch (%s, mss=%d)"
                  (Coding.scheme_to_string scheme) mss))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

let test_builder_invariants () =
  let d = docs (corpus 60 11) in
  let nodes = Array.fold_left (fun a t -> a + Annotated.size t) 0 d in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:2 d in
      Alcotest.(check int) "trees" 60 b.Builder.stats.Builder.trees;
      Alcotest.(check int) "nodes" nodes b.Builder.stats.Builder.nodes;
      Alcotest.(check int) "keys = table size" (Builder.n_keys b)
        b.Builder.stats.Builder.keys;
      (* postings sorted and (where promised) unique *)
      Builder.iter b (fun key p ->
          let sorted_unique l = List.sort_uniq compare l = l in
          ignore key;
          match p with
          | Coding.Filter_p tids ->
              Alcotest.(check bool) "filter sorted unique" true
                (sorted_unique (Array.to_list tids))
          | Coding.Root_p rows ->
              Alcotest.(check bool) "root rows sorted unique" true
                (sorted_unique
                   (Array.to_list
                      (Array.map (fun (t, iv) -> (t, iv.Coding.pre)) rows)))
          | Coding.Interval_p rows ->
              Alcotest.(check bool) "interval tids sorted" true
                (let ts = Array.to_list (Array.map fst rows) in
                 List.sort compare ts = ts)))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_mss1_codings_align () =
  (* at mss=1 every instance root is the (single) key node, so interval and
     root-split carry identical entry counts; filter collapses to tids *)
  let d = docs (corpus 40 13) in
  let stat scheme =
    (Builder.build ~scheme ~mss:1 d).Builder.stats.Builder.postings
  in
  let nodes = Array.fold_left (fun a t -> a + Annotated.size t) 0 d in
  Alcotest.(check int) "interval postings = corpus nodes" nodes
    (stat Coding.Interval);
  Alcotest.(check int) "root-split = interval at mss=1" (stat Coding.Interval)
    (stat Coding.Root_split);
  Alcotest.(check bool) "filter smaller" true (stat Coding.Filter < nodes)

let test_keys_grow_with_mss () =
  let d = docs (corpus 50 17) in
  let keys mss =
    (Builder.build ~scheme:Coding.Filter ~mss d).Builder.stats.Builder.keys
  in
  let k1 = keys 1 and k2 = keys 2 and k3 = keys 3 in
  Alcotest.(check bool) "k1 < k2 < k3" true (k1 < k2 && k2 < k3)

let test_builder_save_load () =
  let d = docs (corpus 30 19) in
  let path = Filename.temp_file "si_test" ".idx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss:3 d in
          Builder.save b path;
          let b' = Builder.load path in
          Alcotest.(check bool) "scheme" true (b'.Builder.scheme = scheme);
          Alcotest.(check int) "mss" 3 b'.Builder.mss;
          Alcotest.(check int) "keys" b.Builder.stats.Builder.keys
            b'.Builder.stats.Builder.keys;
          Alcotest.(check int) "postings stat survives lazy load"
            b.Builder.stats.Builder.postings b'.Builder.stats.Builder.postings;
          Alcotest.(check int) "table size" (Builder.n_keys b) (Builder.n_keys b');
          Builder.iter b (fun key p ->
              match Builder.find b' key with
              | Some p' -> Alcotest.(check bool) "posting equal" true (p = p')
              | None -> Alcotest.fail "key lost in save/load"))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ])

(* ---- the differential heart: every coding's evaluator = the oracle ---- *)

let queries =
  List.map Si_query.Parser.parse_exn
    [
      "S(NP)(VP)";
      "S(NP(DT)(NN))(VP)";
      "NP(DT)(NN)";
      "NP(NN)(NN)";
      "S(//NN)";
      "S(NP)(VP(//NP(NN)))";
      "S(//NP)(//NP)";
      "VP(VBZ)(NP(DT)(NN))";
      "NP(NP(//NN))(PP)";
      "S(//PP(IN)(NP))";
    ]

let check_differential ~seed ~n ~mss =
  let d = docs (corpus n seed) in
  let oracle = Hashtbl.create 16 in
  List.iter
    (fun q -> Hashtbl.replace oracle q (Si_query.Matcher.corpus_roots d q))
    queries;
  List.iter
    (fun scheme ->
      let index = Builder.build ~scheme ~mss d in
      List.iter
        (fun q ->
          let got = Eval.run ~index ~corpus:d q in
          let want = Hashtbl.find oracle q in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s/%s mss=%d"
               (Coding.scheme_to_string scheme)
               (Si_query.Ast.to_string q) mss)
            want got)
        queries)
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_differential_fixed () =
  check_differential ~seed:42 ~n:120 ~mss:3;
  check_differential ~seed:7 ~n:120 ~mss:2

let prop_differential =
  (* random corpora x random mss, same query battery *)
  QCheck.Test.make ~name:"codings match oracle (random corpora)" ~count:8
    QCheck.(pair (int_range 1 4) small_nat)
    (fun (mss, seed) ->
      check_differential ~seed:(seed + 1) ~n:60 ~mss;
      true)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp f =
  let path = Filename.temp_file "si_test" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* parallel build differential: the saved index must be byte-identical *)
let prop_parallel_byte_identical =
  QCheck.Test.make ~name:"parallel build (2/4 domains) byte-identical to sequential"
    ~count:6
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      List.iter
        (fun scheme ->
          let d = docs (corpus 50 (seed + 101)) in
          let reference =
            with_temp (fun p ->
                Builder.save (Builder.build ~domains:1 ~scheme ~mss d) p;
                read_file p)
          in
          List.iter
            (fun domains ->
              let bytes =
                with_temp (fun p ->
                    Builder.save (Builder.build ~domains ~scheme ~mss d) p;
                    read_file p)
              in
              if not (String.equal reference bytes) then
                QCheck.Test.fail_reportf
                  "%d-domain build differs from sequential (%s, mss=%d, seed=%d)"
                  domains (Coding.scheme_to_string scheme) mss seed)
            [ 2; 4 ])
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

(* SIDX2 differential: a saved-and-lazily-reloaded index answers every
   query exactly like in-memory evaluation and the brute-force oracle *)
let prop_sidx2_differential =
  QCheck.Test.make ~name:"SIDX2 lazy reload matches eval and oracle" ~count:5
    QCheck.(pair (int_range 1 4) small_nat)
    (fun (mss, seed) ->
      let d = docs (corpus 60 (seed + 211)) in
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss d in
          let b' = with_temp (fun p -> Builder.save b p; Builder.load p) in
          List.iter
            (fun q ->
              let mem = Eval.run ~index:b ~corpus:d q in
              let lazy_ = Eval.run ~index:b' ~corpus:d q in
              let want = Si_query.Matcher.corpus_roots d q in
              if mem <> lazy_ || lazy_ <> want then
                QCheck.Test.fail_reportf "SIDX2 mismatch on %s (%s, mss=%d)"
                  (Si_query.Ast.to_string q)
                  (Coding.scheme_to_string scheme)
                  mss)
            queries)
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

let test_sidx1_compat () =
  (* a legacy SIDX1 file loads into the same index as the SIDX2 file *)
  let d = docs (corpus 40 37) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:3 d in
      let via_v1 = with_temp (fun p -> Builder.save_v1 b p; Builder.load p) in
      Alcotest.(check int) "keys" (Builder.n_keys b) (Builder.n_keys via_v1);
      Builder.iter b (fun key p ->
          match Builder.find via_v1 key with
          | Some p' -> Alcotest.(check bool) "posting equal" true (p = p')
          | None -> Alcotest.fail "key lost in SIDX1 roundtrip"))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_sidx2_smaller_than_sidx1 () =
  let d = docs (corpus 200 41) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:3 d in
      let size save = with_temp (fun p -> save b p; (Unix.stat p).Unix.st_size) in
      let v2 = size Builder.save and v1 = size Builder.save_v1 in
      Alcotest.(check bool)
        (Printf.sprintf "SIDX2 (%d) < SIDX1 (%d) for %s" v2 v1
           (Coding.scheme_to_string scheme))
        true (v2 < v1))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_bad_magic () =
  with_temp (fun p ->
      let oc = open_out_bin p in
      output_string oc "NOTIDX\njunk";
      close_out oc;
      match Builder.load p with
      | exception Failure msg ->
          Alcotest.(check bool) "mentions magic" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "bad magic accepted")

let test_si_roundtrip () =
  let trees = corpus 80 23 in
  let dir = Filename.temp_file "si_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      List.iter
        (fun scheme ->
          let prefix =
            Filename.concat dir ("ix-" ^ Coding.scheme_to_string scheme)
          in
          let si = Si.build ~scheme ~mss:3 ~trees ~prefix () in
          let si' = Si.open_ prefix in
          Alcotest.(check bool) "scheme" true (Si.scheme si' = scheme);
          Alcotest.(check int) "mss" 3 (Si.mss si');
          Alcotest.(check int) "trees stat" 80
            (Si.stats si').Builder.trees;
          List.iter
            (fun q ->
              Alcotest.(check (list (pair int int)))
                ("reopened: " ^ Si_query.Ast.to_string q)
                (Si.query_ast si q) (Si.query_ast si' q);
              Alcotest.(check (list (pair int int)))
                ("vs oracle: " ^ Si_query.Ast.to_string q)
                (Si.oracle si' q) (Si.query_ast si' q))
            queries;
          Alcotest.(check bool) "sentence roundtrip" true
            (Tree.equal (Si.sentence si 5) (Si.sentence si' 5)))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ])

let test_unknown_label () =
  let si = Si.build ~scheme:Coding.Root_split ~mss:2 ~trees:(corpus 20 29) () in
  match Si.query si "ZZZ(QQQ)" with
  | Ok [] -> ()
  | Ok l -> Alcotest.failf "expected no matches, got %d" (List.length l)
  | Error e -> Alcotest.failf "expected empty result, got error: %s" e

let test_query_syntax_error () =
  let si = Si.build ~scheme:Coding.Filter ~mss:2 ~trees:(corpus 5 31) () in
  Alcotest.(check bool) "syntax error surfaces" true
    (Result.is_error (Si.query si "S((NP)"))

let suite =
  [
    qcheck prop_posting_codec;
    qcheck prop_pack_roundtrip;
    Alcotest.test_case "builder invariants" `Quick test_builder_invariants;
    Alcotest.test_case "mss=1 coding alignment" `Quick test_mss1_codings_align;
    Alcotest.test_case "keys grow with mss" `Quick test_keys_grow_with_mss;
    Alcotest.test_case "builder save/load" `Quick test_builder_save_load;
    qcheck prop_parallel_byte_identical;
    qcheck prop_sidx2_differential;
    Alcotest.test_case "SIDX1 compat load" `Quick test_sidx1_compat;
    Alcotest.test_case "SIDX2 smaller than SIDX1" `Quick test_sidx2_smaller_than_sidx1;
    Alcotest.test_case "bad magic rejected" `Quick test_bad_magic;
    Alcotest.test_case "differential vs oracle (fixed)" `Slow test_differential_fixed;
    qcheck prop_differential;
    Alcotest.test_case "Si persistence roundtrip" `Slow test_si_roundtrip;
    Alcotest.test_case "unknown label" `Quick test_unknown_label;
    Alcotest.test_case "query syntax error" `Quick test_query_syntax_error;
  ]
