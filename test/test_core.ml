open Si_treebank
open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let save_exn b p = ok_exn "save" (Builder.save b p)
let load_exn p = ok_exn "load" (Builder.load p)

let interval_gen =
  QCheck.Gen.(
    map3
      (fun pre post level -> { Coding.pre; post; level })
      (int_bound 10_000) (int_bound 10_000) (int_bound 30))

let posting_gen =
  let open QCheck.Gen in
  let tids = map (fun l -> List.sort_uniq compare l) (list_size (1 -- 20) (int_bound 5000)) in
  oneof
    [
      map (fun l -> Coding.Filter_p (Array.of_list l)) tids;
      ( pair tids (1 -- 4) >>= fun (ts, k) ->
        map
          (fun ivss ->
            Coding.Interval_p
              (Array.of_list (List.combine ts (List.map Array.of_list ivss))))
          (list_repeat (List.length ts) (list_repeat k interval_gen)) );
      ( tids >>= fun ts ->
        map
          (fun ivs -> Coding.Root_p (Array.of_list (List.combine ts ivs)))
          (list_repeat (List.length ts) interval_gen) );
    ]

let key_size_of = function
  | Coding.Interval_p rows when Array.length rows > 0 ->
      Array.length (snd rows.(0))
  | _ -> 1

let scheme_of = function
  | Coding.Filter_p _ -> Coding.Filter
  | Coding.Interval_p _ -> Coding.Interval
  | Coding.Root_p _ -> Coding.Root_split

let prop_posting_codec =
  QCheck.Test.make ~name:"posting codec roundtrip" ~count:300
    (QCheck.make posting_gen) (fun p ->
      let buf = Buffer.create 64 in
      Coding.write buf p;
      let s = Buffer.contents buf in
      let p', off = Coding.read (scheme_of p) ~key_size:(key_size_of p) (Coding.str s) 0 in
      p = p' && off = String.length s)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let docs trees = Array.of_list (List.map Annotated.of_tree trees)

(* SIDX2 packing relies on corpus invariants (post = pre + size - 1 - level,
   instance nodes descend from the instance root), so its roundtrip is
   checked on postings from real builds rather than free-form generators. *)
let prop_pack_roundtrip =
  QCheck.Test.make ~name:"SIDX2 pack/unpack roundtrip (built postings)"
    ~count:12
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss (docs (corpus 30 (seed + 3))) in
          Builder.iter b (fun key p ->
              let buf = Buffer.create 64 in
              Coding.pack buf p;
              let s = Buffer.contents buf in
              let p', off =
                Coding.unpack scheme ~key_size:(Si_subtree.Canonical.key_size key) (Coding.str s) 0
              in
              if p <> p' || off <> String.length s then
                QCheck.Test.fail_reportf "pack/unpack mismatch (%s, mss=%d)"
                  (Coding.scheme_to_string scheme) mss))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

let test_builder_invariants () =
  let d = docs (corpus 60 11) in
  let nodes = Array.fold_left (fun a t -> a + Annotated.size t) 0 d in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:2 d in
      Alcotest.(check int) "trees" 60 b.Builder.stats.Builder.trees;
      Alcotest.(check int) "nodes" nodes b.Builder.stats.Builder.nodes;
      Alcotest.(check int) "keys = table size" (Builder.n_keys b)
        b.Builder.stats.Builder.keys;
      (* postings sorted and (where promised) unique *)
      Builder.iter b (fun key p ->
          let sorted_unique l = List.sort_uniq compare l = l in
          ignore key;
          match p with
          | Coding.Filter_p tids ->
              Alcotest.(check bool) "filter sorted unique" true
                (sorted_unique (Array.to_list tids))
          | Coding.Root_p rows ->
              Alcotest.(check bool) "root rows sorted unique" true
                (sorted_unique
                   (Array.to_list
                      (Array.map (fun (t, iv) -> (t, iv.Coding.pre)) rows)))
          | Coding.Interval_p rows ->
              Alcotest.(check bool) "interval tids sorted" true
                (let ts = Array.to_list (Array.map fst rows) in
                 List.sort compare ts = ts)))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_mss1_codings_align () =
  (* at mss=1 every instance root is the (single) key node, so interval and
     root-split carry identical entry counts; filter collapses to tids *)
  let d = docs (corpus 40 13) in
  let stat scheme =
    (Builder.build ~scheme ~mss:1 d).Builder.stats.Builder.postings
  in
  let nodes = Array.fold_left (fun a t -> a + Annotated.size t) 0 d in
  Alcotest.(check int) "interval postings = corpus nodes" nodes
    (stat Coding.Interval);
  Alcotest.(check int) "root-split = interval at mss=1" (stat Coding.Interval)
    (stat Coding.Root_split);
  Alcotest.(check bool) "filter smaller" true (stat Coding.Filter < nodes)

let test_keys_grow_with_mss () =
  let d = docs (corpus 50 17) in
  let keys mss =
    (Builder.build ~scheme:Coding.Filter ~mss d).Builder.stats.Builder.keys
  in
  let k1 = keys 1 and k2 = keys 2 and k3 = keys 3 in
  Alcotest.(check bool) "k1 < k2 < k3" true (k1 < k2 && k2 < k3)

let test_builder_save_load () =
  let d = docs (corpus 30 19) in
  let path = Filename.temp_file "si_test" ".idx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss:3 d in
          save_exn b path;
          let b' = load_exn path in
          Alcotest.(check bool) "scheme" true (b'.Builder.scheme = scheme);
          Alcotest.(check int) "mss" 3 b'.Builder.mss;
          Alcotest.(check int) "keys" b.Builder.stats.Builder.keys
            b'.Builder.stats.Builder.keys;
          Alcotest.(check int) "postings stat survives lazy load"
            b.Builder.stats.Builder.postings b'.Builder.stats.Builder.postings;
          Alcotest.(check int) "table size" (Builder.n_keys b) (Builder.n_keys b');
          Builder.iter b (fun key p ->
              match Builder.find_exn b' key with
              | Some p' -> Alcotest.(check bool) "posting equal" true (p = p')
              | None -> Alcotest.fail "key lost in save/load"))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ])

(* ---- the differential heart: every coding's evaluator = the oracle ---- *)

let queries =
  List.map Si_query.Parser.parse_exn
    [
      "S(NP)(VP)";
      "S(NP(DT)(NN))(VP)";
      "NP(DT)(NN)";
      "NP(NN)(NN)";
      "S(//NN)";
      "S(NP)(VP(//NP(NN)))";
      "S(//NP)(//NP)";
      "VP(VBZ)(NP(DT)(NN))";
      "NP(NP(//NN))(PP)";
      "S(//PP(IN)(NP))";
    ]

let check_differential ~seed ~n ~mss =
  let d = docs (corpus n seed) in
  let oracle = Hashtbl.create 16 in
  List.iter
    (fun q -> Hashtbl.replace oracle q (Si_query.Matcher.corpus_roots d q))
    queries;
  List.iter
    (fun scheme ->
      let index = Builder.build ~scheme ~mss d in
      List.iter
        (fun q ->
          let got = Eval.run_exn ~index ~corpus:(Corpus.of_array d) q in
          let want = Hashtbl.find oracle q in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s/%s mss=%d"
               (Coding.scheme_to_string scheme)
               (Si_query.Ast.to_string q) mss)
            want got)
        queries)
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_differential_fixed () =
  check_differential ~seed:42 ~n:120 ~mss:3;
  check_differential ~seed:7 ~n:120 ~mss:2

let prop_differential =
  (* random corpora x random mss, same query battery *)
  QCheck.Test.make ~name:"codings match oracle (random corpora)" ~count:8
    QCheck.(pair (int_range 1 4) small_nat)
    (fun (mss, seed) ->
      check_differential ~seed:(seed + 1) ~n:60 ~mss;
      true)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp f =
  let path = Filename.temp_file "si_test" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* parallel build differential: the saved index must be byte-identical *)
let prop_parallel_byte_identical =
  QCheck.Test.make ~name:"parallel build (2/4 domains) byte-identical to sequential"
    ~count:6
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      List.iter
        (fun scheme ->
          let d = docs (corpus 50 (seed + 101)) in
          let reference =
            with_temp (fun p ->
                save_exn (Builder.build ~domains:1 ~scheme ~mss d) p;
                read_file p)
          in
          List.iter
            (fun domains ->
              let bytes =
                with_temp (fun p ->
                    save_exn (Builder.build ~domains ~scheme ~mss d) p;
                    read_file p)
              in
              if not (String.equal reference bytes) then
                QCheck.Test.fail_reportf
                  "%d-domain build differs from sequential (%s, mss=%d, seed=%d)"
                  domains (Coding.scheme_to_string scheme) mss seed)
            [ 2; 4 ])
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

(* SIDX2 differential: a saved-and-lazily-reloaded index answers every
   query exactly like in-memory evaluation and the brute-force oracle *)
let prop_sidx2_differential =
  QCheck.Test.make ~name:"SIDX2 lazy reload matches eval and oracle" ~count:5
    QCheck.(pair (int_range 1 4) small_nat)
    (fun (mss, seed) ->
      let d = docs (corpus 60 (seed + 211)) in
      List.iter
        (fun scheme ->
          let b = Builder.build ~scheme ~mss d in
          let b' = with_temp (fun p -> save_exn b p; load_exn p) in
          List.iter
            (fun q ->
              let mem = Eval.run_exn ~index:b ~corpus:(Corpus.of_array d) q in
              let lazy_ = Eval.run_exn ~index:b' ~corpus:(Corpus.of_array d) q in
              let want = Si_query.Matcher.corpus_roots d q in
              if mem <> lazy_ || lazy_ <> want then
                QCheck.Test.fail_reportf "SIDX2 mismatch on %s (%s, mss=%d)"
                  (Si_query.Ast.to_string q)
                  (Coding.scheme_to_string scheme)
                  mss)
            queries)
        [ Coding.Filter; Coding.Interval; Coding.Root_split ];
      true)

let test_sidx1_compat () =
  (* a legacy SIDX1 file loads into the same index as the SIDX2 file *)
  let d = docs (corpus 40 37) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:3 d in
      let via_v1 =
        with_temp (fun p -> ok_exn "save_v1" (Builder.save_v1 b p); load_exn p)
      in
      Alcotest.(check int) "keys" (Builder.n_keys b) (Builder.n_keys via_v1);
      Builder.iter b (fun key p ->
          match Builder.find_exn via_v1 key with
          | Some p' -> Alcotest.(check bool) "posting equal" true (p = p')
          | None -> Alcotest.fail "key lost in SIDX1 roundtrip"))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let test_sidx2_smaller_than_sidx1 () =
  let d = docs (corpus 200 41) in
  List.iter
    (fun scheme ->
      let b = Builder.build ~scheme ~mss:3 d in
      let size save =
        with_temp (fun p -> ok_exn "save" (save b p); (Unix.stat p).Unix.st_size)
      in
      let v2 = size Builder.save and v1 = size Builder.save_v1 in
      Alcotest.(check bool)
        (Printf.sprintf "SIDX2 (%d) < SIDX1 (%d) for %s" v2 v1
           (Coding.scheme_to_string scheme))
        true (v2 < v1))
    [ Coding.Filter; Coding.Interval; Coding.Root_split ]

(* ---- error taxonomy: one regression per Si_error variant -------------- *)

let write_bytes p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let expect_corrupt what p =
  match Builder.load p with
  | Error (Si_error.Corrupt _) -> ()
  | Error e -> Alcotest.failf "%s: wrong error: %s" what (Si_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: corrupt file accepted" what

let test_load_corrupt_taxonomy () =
  let b = Builder.build ~scheme:Coding.Root_split ~mss:2 (docs (corpus 20 43)) in
  with_temp (fun p ->
      (* bad magic *)
      write_bytes p "NOTIDX\njunk";
      expect_corrupt "bad magic" p;
      (* empty file — distinguished message *)
      write_bytes p "";
      (match Builder.load p with
      | Error (Si_error.Corrupt { what; _ }) ->
          Alcotest.(check string) "empty file message" "empty file" what
      | _ -> Alcotest.fail "empty file accepted");
      (* proper prefix of the magic = truncated header, not bad magic *)
      write_bytes p "SIDX";
      (match Builder.load p with
      | Error (Si_error.Corrupt { what; _ }) ->
          Alcotest.(check bool) "truncated-header message" true
            (String.length what >= 9 && String.sub what 0 9 = "truncated")
      | _ -> Alcotest.fail "truncated header accepted");
      (* real magic but truncated body *)
      save_exn b p;
      let full = read_file p in
      write_bytes p (String.sub full 0 (String.length full / 2));
      expect_corrupt "truncated SIDX2" p;
      (* missing footer (pre-checksum SIDX2 shape) *)
      write_bytes p (String.sub full 0 (String.length full - 32));
      expect_corrupt "missing footer" p;
      (* single flipped bit in the postings region *)
      let n = String.length full in
      let flipped = Bytes.of_string full in
      Bytes.set flipped (n - 40) (Char.chr (Char.code full.[n - 40] lxor 0x01));
      write_bytes p (Bytes.to_string flipped);
      expect_corrupt "bit flip" p;
      (* intact file still loads after all that *)
      write_bytes p full;
      ignore (load_exn p))

let test_error_io () =
  match Builder.load "/nonexistent/si_test.idx" with
  | Error (Si_error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
  | Ok _ -> Alcotest.fail "nonexistent file loaded"

let test_error_bad_query () =
  let si = Si.build ~scheme:Coding.Filter ~mss:2 ~trees:(corpus 5 47) () in
  match Si.query si "S((NP)" with
  | Error (Si_error.Bad_query _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
  | Ok _ -> Alcotest.fail "syntax error accepted"

let test_error_schema_mismatch () =
  (* cross the .meta of one scheme with the .idx of another *)
  let trees = corpus 20 53 in
  let dir = Filename.temp_file "si_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let pf = Filename.concat dir "f" and pr = Filename.concat dir "r" in
      ignore (Si.build ~scheme:Coding.Filter ~mss:2 ~trees ~prefix:pf ());
      ignore (Si.build ~scheme:Coding.Root_split ~mss:2 ~trees ~prefix:pr ());
      let idx = read_file (pf ^ ".idx") in
      write_bytes (pr ^ ".idx") idx;
      match Si.open_ pr with
      | Error (Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "mismatched .meta accepted")

let test_atomic_save () =
  (* a failed save must leave the existing file untouched, and no .tmp *)
  let b = Builder.build ~scheme:Coding.Interval ~mss:2 (docs (corpus 15 59)) in
  with_temp (fun p ->
      save_exn b p;
      let before = read_file p in
      let bad = Filename.concat p "sub.idx" (* p is a file: open must fail *) in
      (match Builder.save b bad with
      | Error (Si_error.Io _) -> ()
      | Ok () -> Alcotest.fail "save into a file-as-directory succeeded"
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e));
      Alcotest.(check string) "original intact" before (read_file p);
      Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (p ^ ".tmp")))

(* ---- pack-time validation (adversarial posting shapes) ---------------- *)

let expect_pack_invalid what p =
  let buf = Buffer.create 16 in
  match Coding.pack buf p with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.failf "%s: packed without complaint" what

let test_pack_validation () =
  let iv pre level size = { Coding.pre; post = pre + size - 1 - level; level } in
  (* well-formed shapes pack fine *)
  let buf = Buffer.create 16 in
  Coding.pack buf (Coding.Filter_p [| 0; 1; 5 |]);
  Coding.pack buf (Coding.Root_p [| (0, iv 0 0 3); (0, iv 2 1 1); (4, iv 1 1 2) |]);
  Coding.pack buf
    (Coding.Interval_p [| (1, [| iv 3 1 2; iv 4 2 1 |]) |]);
  (* adversarial shapes are rejected, not silently mis-encoded *)
  expect_pack_invalid "unsorted filter tids" (Coding.Filter_p [| 3; 1 |]);
  expect_pack_invalid "duplicate filter tid" (Coding.Filter_p [| 2; 2 |]);
  expect_pack_invalid "negative tid" (Coding.Filter_p [| -1; 2 |]);
  expect_pack_invalid "unsorted root tids"
    (Coding.Root_p [| (5, iv 0 0 1); (1, iv 0 0 1) |]);
  expect_pack_invalid "root pre decreasing within tid"
    (Coding.Root_p [| (0, iv 4 1 1); (0, iv 2 1 1) |]);
  expect_pack_invalid "interval violating post identity"
    (Coding.Root_p [| (0, { Coding.pre = 5; post = 1; level = 2 }) |]);
  expect_pack_invalid "empty interval instance" (Coding.Interval_p [| (0, [||]) |]);
  expect_pack_invalid "instance node above its root"
    (Coding.Interval_p [| (0, [| iv 5 2 2; iv 3 1 1 |]) |])

(* unpack on random garbage: returns or raises Malformed — never anything
   else, never a crash *)
let prop_unpack_garbage =
  QCheck.Test.make ~name:"unpack(garbage) = posting or Malformed" ~count:2000
    QCheck.(
      triple (int_range 0 2) (int_range 1 4)
        (string_gen_of_size Gen.(0 -- 40) Gen.char))
    (fun (si, key_size, s) ->
      let scheme =
        match si with 0 -> Coding.Filter | 1 -> Coding.Interval | _ -> Coding.Root_split
      in
      (match Coding.unpack scheme ~key_size (Coding.str s) 0 with
      | _ -> ()
      | exception Coding.Malformed _ -> ());
      (match Coding.read scheme ~key_size (Coding.str s) 0 with
      | _ -> ()
      | exception Coding.Malformed _ -> ());
      true)

(* pack/unpack roundtrip on adversarial-but-legal shapes the generator-based
   corpus tests never produce: empty postings, max-mss keys, duplicate roots *)
let prop_pack_roundtrip_adversarial =
  let iv pre level size = { Coding.pre; post = pre + size - 1 - level; level } in
  let legal_gen =
    let open QCheck.Gen in
    let tids n = map (fun l -> List.sort_uniq compare l) (list_size (0 -- n) (int_bound 50)) in
    oneof
      [
        (* filter, possibly empty *)
        map (fun l -> Coding.Filter_p (Array.of_list l)) (tids 8);
        (* root-split with duplicate tids, distinct non-decreasing pres *)
        ( tids 5 >>= fun ts ->
          map
            (fun dups ->
              let rows =
                List.map2
                  (fun t d -> List.init d (fun i -> (t, iv (2 * i) (min i 3) (1 + (i mod 3)))))
                  ts dups
                |> List.concat
              in
              Coding.Root_p (Array.of_list rows))
            (list_repeat (List.length ts) (1 -- 3)) );
        (* interval with the same root appearing under several tids *)
        ( pair (tids 5) (1 -- 4) >>= fun (ts, k) ->
          return
            (Coding.Interval_p
               (Array.of_list
                  (List.map
                     (fun t ->
                       (t, Array.init k (fun i ->
                                if i = 0 then iv 1 1 k else iv (1 + i) 2 1)))
                     ts))) );
      ]
  in
  QCheck.Test.make ~name:"pack/unpack roundtrip (adversarial legal shapes)"
    ~count:500 (QCheck.make legal_gen) (fun p ->
      let buf = Buffer.create 64 in
      Coding.pack buf p;
      let s = Buffer.contents buf in
      let key_size = key_size_of p in
      let p', off = Coding.unpack (scheme_of p) ~key_size (Coding.str s) 0 in
      p = p' && off = String.length s)

let test_si_roundtrip () =
  let trees = corpus 80 23 in
  let dir = Filename.temp_file "si_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      List.iter
        (fun scheme ->
          let prefix =
            Filename.concat dir ("ix-" ^ Coding.scheme_to_string scheme)
          in
          let si = Si.build ~scheme ~mss:3 ~trees ~prefix () in
          let si' = ok_exn "open_" (Si.open_ prefix) in
          Alcotest.(check bool) "scheme" true (Si.scheme si' = scheme);
          Alcotest.(check int) "mss" 3 (Si.mss si');
          Alcotest.(check int) "trees stat" 80
            (Si.stats si').Builder.trees;
          List.iter
            (fun q ->
              Alcotest.(check (list (pair int int)))
                ("reopened: " ^ Si_query.Ast.to_string q)
                (ok_exn "query_ast" (Si.query_ast si q))
                (ok_exn "query_ast" (Si.query_ast si' q));
              Alcotest.(check (list (pair int int)))
                ("vs oracle: " ^ Si_query.Ast.to_string q)
                (Si.oracle si' q)
                (ok_exn "query_ast" (Si.query_ast si' q)))
            queries;
          Alcotest.(check bool) "sentence roundtrip" true
            (Tree.equal (Si.sentence si 5) (Si.sentence si' 5)))
        [ Coding.Filter; Coding.Interval; Coding.Root_split ])

let test_unknown_label () =
  let si = Si.build ~scheme:Coding.Root_split ~mss:2 ~trees:(corpus 20 29) () in
  match Si.query si "ZZZ(QQQ)" with
  | Ok [] -> ()
  | Ok l -> Alcotest.failf "expected no matches, got %d" (List.length l)
  | Error e ->
      Alcotest.failf "expected empty result, got error: %s" (Si_error.to_string e)

let test_query_syntax_error () =
  let si = Si.build ~scheme:Coding.Filter ~mss:2 ~trees:(corpus 5 31) () in
  Alcotest.(check bool) "syntax error surfaces" true
    (Result.is_error (Si.query si "S((NP)"))

let suite =
  [
    qcheck prop_posting_codec;
    qcheck prop_pack_roundtrip;
    Alcotest.test_case "builder invariants" `Quick test_builder_invariants;
    Alcotest.test_case "mss=1 coding alignment" `Quick test_mss1_codings_align;
    Alcotest.test_case "keys grow with mss" `Quick test_keys_grow_with_mss;
    Alcotest.test_case "builder save/load" `Quick test_builder_save_load;
    qcheck prop_parallel_byte_identical;
    qcheck prop_sidx2_differential;
    Alcotest.test_case "SIDX1 compat load" `Quick test_sidx1_compat;
    Alcotest.test_case "SIDX2 smaller than SIDX1" `Quick test_sidx2_smaller_than_sidx1;
    Alcotest.test_case "corrupt-load taxonomy" `Quick test_load_corrupt_taxonomy;
    Alcotest.test_case "Si_error.Io on missing file" `Quick test_error_io;
    Alcotest.test_case "Si_error.Bad_query on syntax error" `Quick test_error_bad_query;
    Alcotest.test_case "Si_error.Schema_mismatch on crossed .meta" `Quick
      test_error_schema_mismatch;
    Alcotest.test_case "atomic save leaves original intact" `Quick test_atomic_save;
    Alcotest.test_case "pack-time validation" `Quick test_pack_validation;
    qcheck prop_unpack_garbage;
    qcheck prop_pack_roundtrip_adversarial;
    Alcotest.test_case "differential vs oracle (fixed)" `Slow test_differential_fixed;
    qcheck prop_differential;
    Alcotest.test_case "Si persistence roundtrip" `Slow test_si_roundtrip;
    Alcotest.test_case "unknown label" `Quick test_unknown_label;
    Alcotest.test_case "query syntax error" `Quick test_query_syntax_error;
  ]
