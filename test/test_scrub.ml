(* Self-healing integrity (DESIGN.md §15): scrub, quarantine, repair.

   The contract under test: a corrupted SIDX4 prefix still answers every
   query *exactly* — the first query that touches the damage quarantines
   the handle and the evaluator falls back to the zero-copy corpus store
   (oracle semantics, degraded flag set) — the scrub localizes the damage
   without ever raising, and a repair rebuilt purely from the corpus
   store + WAL delta answers byte-identically to a fresh build over the
   same trees. *)

open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let schemes = [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let queries =
  [
    "S(NP)(VP)";
    "S(NP(DT)(NN))(VP)";
    "NP(DT)(NN)";
    "S(//NN)";
    "S(//NP)(//NP)";
    "VP(VBZ)(NP(DT)(NN))";
  ]

let with_dir f =
  let dir = Filename.temp_file "si_scrub" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let flip_byte file pos =
  let b = Bytes.of_string (read_file file) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
  write_file file (Bytes.to_string b)

(* the byte span of a named lazily-verified .idx region, read off a clean
   handle (offsets are a property of the file, not the handle) *)
let region_span prefix name =
  let si = ok_exn "open for layout" (Si.open_ prefix) in
  match
    List.find_opt
      (fun (n, _, _, _) -> n = name)
      (Builder.scrub_regions (Si.index si))
  with
  | Some (_, off, len, _) -> (off, len)
  | None -> Alcotest.failf "no %s region in %s.idx" name prefix

(* ---- quarantine fallback = oracle over a corrupted postings region ------ *)

let check_fallback_exact ~seed ~n ~mss scheme =
  with_dir @@ fun dir ->
  let trees = corpus n seed in
  let prefix = Filename.concat dir "ix" in
  ignore (Si.build ~format:`Sidx4 ~scheme ~mss ~trees ~prefix ());
  let off, len = region_span prefix "postings" in
  flip_byte (prefix ^ ".idx") (off + (len / 2));
  let si = ok_exn "open corrupted" (Si.open_ prefix) in
  Alcotest.(check bool) "not quarantined before first touch" false
    (Si.quarantined si);
  List.iter
    (fun qstr ->
      let o = ok_exn ("fallback " ^ qstr) (Si.query_outcome si qstr) in
      let oracle = Si.oracle si (Si_query.Parser.parse_exn qstr) in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s/%s fallback = oracle"
           (Coding.scheme_to_string scheme) qstr)
        oracle o.Limits.matches;
      Alcotest.(check bool) (qstr ^ " degraded") true o.Limits.degraded;
      Alcotest.(check bool) (qstr ^ " not truncated") false o.Limits.truncated)
    queries;
  Alcotest.(check bool) "quarantined after discovery" true (Si.quarantined si);
  let st = Si.integrity si in
  Alcotest.(check bool) "state degraded" true (st.Si.state = `Degraded);
  Alcotest.(check bool) "fallbacks counted" true
    (st.Si.fallback_answers >= List.length queries)

let test_fallback_fixed () =
  List.iter (fun s -> check_fallback_exact ~seed:19 ~n:90 ~mss:3 s) schemes

let prop_fallback =
  QCheck.Test.make ~name:"quarantine fallback = oracle (random corpora)"
    ~count:4
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      check_fallback_exact ~seed:(seed + 1) ~n:40 ~mss Coding.Root_split;
      true)

(* governed fallback: limits still bound the oracle path *)
let test_fallback_limits () =
  with_dir @@ fun dir ->
  let trees = corpus 100 23 in
  let prefix = Filename.concat dir "ix" in
  ignore
    (Si.build ~format:`Sidx4 ~scheme:Coding.Interval ~mss:2 ~trees ~prefix ());
  let off, len = region_span prefix "postings" in
  flip_byte (prefix ^ ".idx") (off + (len / 3));
  let si = ok_exn "open" (Si.open_ prefix) in
  let full =
    (ok_exn "full" (Si.query_outcome si "S(//NP)(//NP)")).Limits.matches
  in
  let limits = Limits.v ~max_results:4 () in
  let o = ok_exn "capped" (Si.query_outcome ~limits si "S(//NP)(//NP)") in
  Alcotest.(check bool) "capped degraded" true o.Limits.degraded;
  if List.length full > 4 then begin
    Alcotest.(check bool) "capped truncated" true o.Limits.truncated;
    Alcotest.(check int) "capped length" 4 (List.length o.Limits.matches)
  end;
  List.iter
    (fun r ->
      if not (List.mem r full) then
        Alcotest.fail "capped fallback result not in the full answer")
    o.Limits.matches;
  (* a starved partial budget degrades to truncated, never to an error *)
  let tight = Limits.v ~max_decoded_bytes:1 ~partial:true () in
  let o = ok_exn "tight" (Si.query_outcome ~limits:tight si "S(//NP)(//NP)") in
  Alcotest.(check bool) "tight degraded" true o.Limits.degraded

(* ---- scrub: localization, budgets, cursor resumption -------------------- *)

let test_scrub_clean () =
  with_dir @@ fun dir ->
  let trees = corpus 80 31 in
  let prefix = Filename.concat dir "ix" in
  ignore
    (Si.build ~format:`Sidx4 ~scheme:Coding.Root_split ~mss:3 ~trees ~prefix ());
  let si = ok_exn "open" (Si.open_ prefix) in
  let r = Si.scrub si in
  Alcotest.(check bool) "complete" true r.Scrub.complete;
  Alcotest.(check bool) "clean" true r.Scrub.clean;
  Alcotest.(check bool) "not quarantined" false (Si.quarantined si);
  (* a clean cycle commits the lazy flags: the next cycle re-verifies
     the same regions and still reports clean *)
  let r2 = Si.scrub si in
  Alcotest.(check bool) "second cycle clean" true r2.Scrub.clean;
  (* budgeted passes resume through the cursor and converge on the same
     verdict *)
  let budget = Scrub.budget ~max_bytes:4096 () in
  let passes = ref 0 in
  let rec drive () =
    incr passes;
    let r = Si.scrub ~budget si in
    if not r.Scrub.complete then drive () else r
  in
  let r3 = drive () in
  Alcotest.(check bool) "budgeted cycle clean" true r3.Scrub.clean;
  Alcotest.(check bool) "budget forced multiple passes" true (!passes > 1)

let test_scrub_localizes () =
  with_dir @@ fun dir ->
  let trees = corpus 70 37 in
  let prefix = Filename.concat dir "ix" in
  ignore
    (Si.build ~format:`Sidx4 ~scheme:Coding.Interval ~mss:3 ~trees ~prefix ());
  let off, len = region_span prefix "postings" in
  flip_byte (prefix ^ ".idx") (off + (len / 2));
  let si = ok_exn "open" (Si.open_ prefix) in
  let rec drive () =
    let r = Si.scrub ~budget:(Scrub.budget ~max_bytes:8192 ()) si in
    if r.Scrub.complete then r else drive ()
  in
  let r = drive () in
  Alcotest.(check bool) "found the bad region" true
    (List.mem "postings" r.Scrub.bad_regions);
  Alcotest.(check bool) "not clean" false r.Scrub.clean;
  Alcotest.(check bool) "scrub quarantined the handle" true (Si.quarantined si);
  (* a query after the scrub is exact via the fallback *)
  let o = ok_exn "post-scrub query" (Si.query_outcome si "S(NP)(VP)") in
  Alcotest.(check (list (pair int int))) "post-scrub = oracle"
    (Si.oracle si (Si_query.Parser.parse_exn "S(NP)(VP)"))
    o.Limits.matches;
  let st = Si.integrity si in
  Alcotest.(check int) "scrub passes counted" !(ref st.Si.scrub_passes)
    st.Si.scrub_passes;
  Alcotest.(check bool) "scrub bytes counted" true (st.Si.scrub_bytes > 0)

(* .trees damage is corpus-store damage: reported, not quarantined (the
   fallback needs the store — nothing to hide behind) *)
let test_scrub_store_damage () =
  with_dir @@ fun dir ->
  let trees = corpus 60 41 in
  let prefix = Filename.concat dir "ix" in
  ignore
    (Si.build ~format:`Sidx4 ~scheme:Coding.Interval ~mss:2 ~trees ~prefix ());
  (* flip inside the trees region of the store, clear of its footer *)
  let store = prefix ^ ".trees" in
  let len = String.length (read_file store) in
  flip_byte store (len / 2);
  let si = ok_exn "open" (Si.open_ prefix) in
  let rec drive () =
    let r = Si.scrub si in
    if r.Scrub.complete then r else drive ()
  in
  let r = drive () in
  Alcotest.(check bool) "store region reported" true
    (List.exists
       (fun n -> n = "ts_trees" || n = "ts_offsets")
       r.Scrub.bad_regions);
  Alcotest.(check bool) "store damage does not quarantine" false
    (Si.quarantined si)

(* ---- repair = fresh rebuild --------------------------------------------- *)

let answers si =
  List.map (fun q -> ok_exn q (Si.query si q)) queries

let check_repair ~format ~scheme ~mss ~corrupt_first =
  with_dir @@ fun dir ->
  let trees = corpus 75 47 in
  let prefix = Filename.concat dir "ix" in
  ignore (Si.build ~format ~scheme ~mss ~trees ~prefix ());
  if corrupt_first then begin
    let off, len = region_span prefix "postings" in
    flip_byte (prefix ^ ".idx") (off + (len / 2))
  end;
  let si = ok_exn "open" (Si.open_ prefix) in
  let repaired = ok_exn "repair" (Si.repair si) in
  Alcotest.(check int) "repair keeps every tree" (List.length trees) repaired;
  (* the repaired prefix reopens clean and answers = a fresh build *)
  let si' = ok_exn "reopen repaired" (Si.open_ prefix) in
  Alcotest.(check bool) "reopened clean" false (Si.quarantined si');
  let fresh_prefix = Filename.concat dir "fresh" in
  let fresh = Si.build ~format ~scheme ~mss ~trees ~prefix:fresh_prefix () in
  List.iter2
    (fun got want ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s mss=%d repaired = fresh"
           (Coding.scheme_to_string scheme) mss)
        want got)
    (answers si')
    (answers fresh);
  (* and the repaired bytes verify end to end *)
  match Si.format si' with
  | `Sidx4 ->
      let r = Si.scrub si' in
      Alcotest.(check bool) "repaired scrubs clean" true r.Scrub.clean
  | `Sidx3 -> ()

let test_repair_differential () =
  List.iter
    (fun scheme ->
      check_repair ~format:`Sidx4 ~scheme ~mss:3 ~corrupt_first:true;
      check_repair ~format:`Sidx3 ~scheme ~mss:2 ~corrupt_first:false)
    schemes

let prop_repair =
  QCheck.Test.make ~name:"repair-then-query = fresh rebuild (random)"
    ~count:3
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      with_dir (fun dir ->
          let trees = corpus 40 (seed + 3) in
          let prefix = Filename.concat dir "ix" in
          ignore
            (Si.build ~format:`Sidx4 ~scheme:Coding.Interval ~mss ~trees
               ~prefix ());
          let off, len = region_span prefix "postings" in
          flip_byte (prefix ^ ".idx") (off + (len / 2));
          let si = ok_exn "open" (Si.open_ prefix) in
          ignore (ok_exn "repair" (Si.repair si));
          let si' = ok_exn "reopen" (Si.open_ prefix) in
          List.iter
            (fun q ->
              let got = ok_exn q (Si.query si' q) in
              let want = Si.oracle si' (Si_query.Parser.parse_exn q) in
              if got <> want then
                Alcotest.failf "repaired %s diverges from oracle" q)
            queries);
      true)

(* repair folds the WAL delta: acknowledged inserts survive the rebuild *)
let test_repair_folds_delta () =
  with_dir @@ fun dir ->
  let trees = corpus 50 53 in
  let extra = corpus 7 59 in
  let prefix = Filename.concat dir "ix" in
  ignore
    (Si.build ~format:`Sidx4 ~scheme:Coding.Root_split ~mss:3 ~trees ~prefix ());
  let si = ok_exn "open" (Si.open_ prefix) in
  ignore (ok_exn "insert" (Si.insert si extra));
  let want = answers si in
  let off, len = region_span prefix "postings" in
  flip_byte (prefix ^ ".idx") (off + (len / 2));
  let si = ok_exn "reopen corrupted" (Si.open_ prefix) in
  let repaired = ok_exn "repair" (Si.repair si) in
  Alcotest.(check int) "main + delta trees"
    (List.length trees + List.length extra)
    repaired;
  let si' = ok_exn "reopen repaired" (Si.open_ prefix) in
  Alcotest.(check int) "delta folded, wal empty" 0 (Si.pending si');
  List.iter2
    (fun got want ->
      Alcotest.(check (list (pair int int))) "post-repair answers" want got)
    (answers si') want

let suite =
  [
    Alcotest.test_case "corrupted postings: fallback = oracle" `Quick
      test_fallback_fixed;
    qcheck prop_fallback;
    Alcotest.test_case "fallback respects limits" `Quick test_fallback_limits;
    Alcotest.test_case "scrub: clean cycles, budgets, cursor" `Quick
      test_scrub_clean;
    Alcotest.test_case "scrub localizes postings damage" `Quick
      test_scrub_localizes;
    Alcotest.test_case "store damage reported, not quarantined" `Quick
      test_scrub_store_damage;
    Alcotest.test_case "repair = fresh rebuild (3 codings x 2 formats)" `Quick
      test_repair_differential;
    qcheck prop_repair;
    Alcotest.test_case "repair folds the WAL delta" `Quick
      test_repair_folds_delta;
  ]
