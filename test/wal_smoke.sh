#!/usr/bin/env bash
# WAL incremental-insert acceptance harness (ISSUE 8).
#
# Three gates:
#   1. live server — INSERT over the wire is visible to the very next
#      QUERY, an explicit CHECKPOINT folds it through a generation swap,
#      and the --checkpoint-records threshold auto-folds;
#   2. kill at EVERY WAL/checkpoint failpoint (exit 42) — the index must
#      reopen equal to the pre-insert or post-insert state, answer the
#      oracle, and finish the interrupted fold on the next clean attempt;
#   3. a torn or CRC-failing WAL tail is never replayed as a record, and
#      never prevents the index from serving.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

say() { echo "wal_smoke: $*"; }
fail() { echo "wal_smoke FAIL: $*" >&2; exit 1; }

# ---- fixtures ------------------------------------------------------------
"$TOOL" gen -n 200 --seed 91 -o "$DIR/corpus.penn" 2>/dev/null
PFX="$DIR/ix"
"$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
  --scheme root-split --mss 3 >/dev/null

Q='S(NP(DT)(NN))(VP)'
# one inserted tree that the probe query definitely matches, so the
# pre-insert and post-insert states answer with different counts
TREE='(S (NP (DT the) (NN cat)) (VP (VBZ sits) (NP (DT the) (NN mat))))'
echo "$TREE" > "$DIR/extra.penn"

PRE=$("$TOOL" query --prefix "$PFX" "$Q" | head -1 | awk '{print $1}')
POST=$((PRE + 1))

for ext in .idx .dat .labels .meta; do
  cp "$PFX$ext" "$DIR/pristine$ext"
done
reset_state() {
  for ext in .idx .dat .labels .meta; do
    cp "$DIR/pristine$ext" "$PFX$ext"
  done
  rm -f "$PFX.wal"
}

count() { "$TOOL" query --prefix "$PFX" "$Q" | head -1 | awk '{print $1}'; }

# ---- 1. live server ------------------------------------------------------
say "live server: INSERT visible immediately, CHECKPOINT swaps"

start_server() { # start_server [extra serve flags...]
  "$TOOL" serve --prefix "$PFX" --listen 0 --workers 2 "$@" \
    >"$DIR/server.log" 2>&1 &
  SRV_PID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$DIR/server.log" | head -1)
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died on startup: $(cat "$DIR/server.log")"
    sleep 0.05
  done
  [ -n "$PORT" ] || fail "server never reported its port: $(cat "$DIR/server.log")"
}

stop_server() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  SRV_PID=""
}

req() { # one request per connection; prints every response line
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT"
  printf '%s\nQUIT\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

start_server

out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$PRE truncated=0 gen=1" <<<"$out" || fail "pre-insert count: $out"

out=$(req "INSERT $TREE")
grep -q "OK n=201 pending=1 gen=1" <<<"$out" || fail "INSERT ack: $out"

# the inserted tree answers the very next query — no rebuild, no reopen
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$POST truncated=0 gen=1" <<<"$out" || fail "post-insert count: $out"

out=$(req "CHECKPOINT")
grep -q "OK merged=1 gen=2" <<<"$out" || fail "CHECKPOINT ack: $out"

out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$POST truncated=0 gen=2" <<<"$out" || fail "post-checkpoint count: $out"

out=$(req "STATS")
grep -qF '"wal":{"inserts":1,"checkpoints":1,"checkpoint_failures":0' <<<"$out" \
  || fail "STATS wal section: $out"

out=$(req "INSERT (not a tree")
grep -q "ERR bad_request" <<<"$out" || fail "malformed INSERT accepted: $out"

stop_server

# the folded set is durable: a cold reopen answers the post-insert count
[ "$(count)" = "$POST" ] || fail "cold reopen after server fold: $(count) != $POST"
"$TOOL" query --prefix "$PFX" "$Q" --check-oracle >/dev/null || fail "oracle after fold"

say "live server: --checkpoint-records threshold auto-folds"
reset_state
start_server --checkpoint-records 2
req "INSERT $TREE" >/dev/null
out=$(req "INSERT $TREE")
grep -q "pending=2" <<<"$out" || fail "second INSERT ack: $out"
# the second insert crossed the threshold: the server folded and swapped
out=$(req "HEALTH")
grep -q 'gen=2' <<<"$out" || fail "auto-checkpoint did not swap: $out"
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$((PRE + 2)) " <<<"$out" || fail "post-auto-fold count: $out"
stop_server

# ---- 2. kill at every WAL/checkpoint failpoint ---------------------------
say "kill at every WAL/checkpoint failpoint"

mapfile -t POINTS < <(
  "$TOOL" failpoints | awk '/^  (wal\.|si\.checkpoint\.)/ { print $1 }'
)
if [ "${#POINTS[@]}" -lt 5 ]; then
  fail "expected >= 5 WAL/checkpoint failpoints, got: ${POINTS[*]}"
fi

for point in "${POINTS[@]}"; do
  reset_state
  # drive insert -> checkpoint with the point armed; whichever stage hosts
  # the point dies with the simulated crash (exit 42)
  crashes=0
  set +e
  SI_FAILPOINTS="$point=exit:42" \
    "$TOOL" insert --prefix "$PFX" --corpus "$DIR/extra.penn" >/dev/null 2>&1
  c_ins=$?
  set -e
  [ "$c_ins" = 42 ] && crashes=$((crashes + 1))
  if [ "$c_ins" = 0 ]; then
    set +e
    SI_FAILPOINTS="$point=exit:42" \
      "$TOOL" checkpoint --prefix "$PFX" >/dev/null 2>&1
    c_ck=$?
    set -e
    [ "$c_ck" = 42 ] && crashes=$((crashes + 1))
  fi
  [ "$crashes" = 1 ] || fail "$point: never fired (insert=$c_ins)"

  # recovery gate: the index reopens, answers the oracle, and the count is
  # exactly the pre-insert or post-insert state — nothing torn, nothing
  # double-applied
  out=$("$TOOL" query --prefix "$PFX" "$Q" --check-oracle) \
    || fail "$point: index does not reopen after crash"
  grep -q 'oracle: OK' <<<"$out" || fail "$point: oracle mismatch: $out"
  n=$(head -1 <<<"$out" | awk '{print $1}')
  if [ "$n" != "$PRE" ] && [ "$n" != "$POST" ]; then
    fail "$point: count $n is neither pre ($PRE) nor post ($POST)"
  fi

  # the interrupted pipeline completes cleanly on the next attempt
  if [ "$n" = "$PRE" ] && [ "$c_ins" != 0 ]; then
    "$TOOL" insert --prefix "$PFX" --corpus "$DIR/extra.penn" >/dev/null
  fi
  "$TOOL" checkpoint --prefix "$PFX" >/dev/null
  [ "$(count)" = "$POST" ] || fail "$point: clean retry did not converge"
  "$TOOL" query --prefix "$PFX" "$Q" --check-oracle >/dev/null \
    || fail "$point: oracle after clean retry"
  # the fold truncated the WAL back to its 8-byte header
  [ "$(stat -c %s "$PFX.wal")" = 8 ] || fail "$point: WAL not truncated"
  say "  $point: recovered (count $n -> $POST)"
done

# ---- 3. no torn WAL accepted ---------------------------------------------
say "torn and CRC-failing WAL tails are dropped, never replayed"

reset_state
"$TOOL" insert --prefix "$PFX" --corpus "$DIR/extra.penn" >/dev/null
[ "$(count)" = "$POST" ] || fail "setup insert"

# a crash mid-append leaves a partial frame: ignored, index still serves
printf '\x40\x00\x00\x00\xde\xad' >> "$PFX.wal"
out=$("$TOOL" query --prefix "$PFX" "$Q" --check-oracle)
grep -q 'oracle: OK' <<<"$out" || fail "torn tail broke the oracle: $out"
[ "$(head -1 <<<"$out" | awk '{print $1}')" = "$POST" ] \
  || fail "torn tail changed the answer: $out"

# a bit flip inside the record breaks its CRC: the record is dropped (back
# to the pre-insert answer), never served as data, never a crash
reset_state
"$TOOL" insert --prefix "$PFX" --corpus "$DIR/extra.penn" >/dev/null
printf '\xff' | dd of="$PFX.wal" bs=1 seek=20 conv=notrunc 2>/dev/null
out=$("$TOOL" query --prefix "$PFX" "$Q" --check-oracle)
grep -q 'oracle: OK' <<<"$out" || fail "CRC-failing record broke the oracle: $out"
[ "$(head -1 <<<"$out" | awk '{print $1}')" = "$PRE" ] \
  || fail "CRC-failing record was replayed: $out"

# ---- 4. checkpoint republishes the mapped backend consistently -----------
# regression: a checkpoint in a fresh process interns the WAL's labels
# before ever touching the mapped corpus, so its live id order diverges
# from the stored .labels order — the republished .trees store must be
# written in the published stored space, or the corpus (and the oracle)
# comes back mislabeled
say "sidx4 checkpoint: republished corpus store answers the oracle"

"$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$DIR/m4" \
  --scheme interval --mss 3 --format sidx4 >/dev/null
M4PRE=$("$TOOL" query --prefix "$DIR/m4" "$Q" | head -1 | awk '{print $1}')
"$TOOL" insert --prefix "$DIR/m4" "$TREE" >/dev/null
"$TOOL" checkpoint --prefix "$DIR/m4" >/dev/null
out=$("$TOOL" query --prefix "$DIR/m4" "$Q" --check-oracle) \
  || fail "sidx4 post-checkpoint oracle: $out"
[ "$(head -1 <<<"$out" | awk '{print $1}')" = "$((M4PRE + 1))" ] \
  || fail "sidx4 post-checkpoint count: $out"

say "PASS: live inserts, $(( ${#POINTS[@]} )) crash points, torn-WAL rejection, sidx4 refold"
