(* Resource governance, failpoint fault injection and crash consistency:
   the degradation contract of governed queries (exact / truncated /
   typed error), batch fault isolation, and the staged-save protocol that
   keeps a pre-existing index loadable through injected failures. *)

open Si_core

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let schemes = [ Coding.Filter; Coding.Interval; Coding.Root_split ]

(* enough structure that every scheme does real join/intersection work *)
let heavy = "S(//NP)(//NP)"
let cheap = "NP(DT)(NN)"

let build_si scheme = Si.build ~scheme ~mss:2 ~trees:(corpus 120 11) ()

let with_failpoints spec f =
  Failpoint.arm_exn spec;
  Fun.protect ~finally:Failpoint.clear f

let check_subset what sub full =
  List.iter
    (fun r ->
      if not (List.mem r full) then
        Alcotest.failf "%s: truncated result not in the full answer" what)
    sub

(* a scratch directory for prefix file sets *)
let with_dir f =
  let dir = Filename.temp_file "si_limits" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* ---- governed evaluation: the degradation contract ---------------------- *)

let test_ungoverned_unchanged () =
  Alcotest.(check bool) "none is none" true (Limits.is_none Limits.none);
  Alcotest.(check bool) "v () is none" true (Limits.is_none (Limits.v ()));
  List.iter
    (fun scheme ->
      let si = build_si scheme in
      let plain = ok_exn "plain" (Si.query si heavy) in
      (* a roomy budget must not change the answer *)
      let limits =
        Limits.v ~deadline_ns:max_int ~max_decoded_bytes:max_int
          ~max_join_steps:max_int ~max_results:max_int ()
      in
      let o = ok_exn "roomy" (Si.query_outcome ~limits si heavy) in
      Alcotest.(check bool) "roomy not truncated" false o.Limits.truncated;
      Alcotest.(check (list (pair int int))) "roomy same answer" plain
        o.Limits.matches)
    schemes

let test_deadline_zero () =
  List.iter
    (fun scheme ->
      let si = build_si scheme in
      let limits = Limits.v ~deadline_ns:0 () in
      (match Si.query ~limits si heavy with
      | Error (Si_error.Timeout _ as e) ->
          Alcotest.(check int) "timeout exit code" 6 (Si_error.exit_code e)
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "deadline 0 did not time out");
      (* partial degrades the same trip to a truncated Ok *)
      let limits = Limits.v ~deadline_ns:0 ~partial:true () in
      let o = ok_exn "partial timeout" (Si.query_outcome ~limits si heavy) in
      Alcotest.(check bool) "partial is truncated" true o.Limits.truncated;
      Alcotest.(check (list (pair int int))) "nothing verified at t=0" []
        o.Limits.matches)
    schemes

let test_max_results () =
  List.iter
    (fun scheme ->
      let si = build_si scheme in
      let full = ok_exn "full" (Si.query si heavy) in
      let n = List.length full in
      if n < 2 then Alcotest.failf "corpus too small: %d matches" n;
      let capped m = Limits.v ~max_results:m () in
      let o = ok_exn "capped" (Si.query_outcome ~limits:(capped (n - 1)) si heavy) in
      Alcotest.(check bool) "under-cap truncated" true o.Limits.truncated;
      Alcotest.(check int) "exactly m results" (n - 1)
        (List.length o.Limits.matches);
      check_subset "capped" o.Limits.matches full;
      (* a cap the answer fits in exactly is not a truncation *)
      let o = ok_exn "exact cap" (Si.query_outcome ~limits:(capped n) si heavy) in
      Alcotest.(check bool) "exact cap untruncated" false o.Limits.truncated;
      Alcotest.(check (list (pair int int))) "exact cap full answer" full
        o.Limits.matches)
    schemes

let test_step_budget () =
  List.iter
    (fun scheme ->
      let si = build_si scheme in
      let limits = Limits.v ~max_join_steps:1 () in
      (match Si.query ~limits si heavy with
      | Error (Si_error.Resource_exhausted { what; budget; spent } as e) ->
          Alcotest.(check string) "what" "join-steps" what;
          Alcotest.(check int) "budget" 1 budget;
          Alcotest.(check bool) "spent > budget" true (spent > budget);
          Alcotest.(check int) "exhausted exit code" 7 (Si_error.exit_code e)
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "1-step budget did not trip");
      (* the materialized (no-cache) evaluator is governed identically *)
      (match
         Si_query.Parser.parse_exn heavy
         |> Eval.run ~index:(Si.index si) ~corpus:(Si.corpus si) ~limits
       with
      | Error (Si_error.Resource_exhausted _) -> ()
      | Error e -> Alcotest.failf "materialized: wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "materialized path ungoverned");
      (* partial: a subset of the full answer, flagged *)
      let full = ok_exn "full" (Si.query si heavy) in
      let limits = Limits.v ~max_join_steps:1 ~partial:true () in
      let o = ok_exn "partial steps" (Si.query_outcome ~limits si heavy) in
      Alcotest.(check bool) "partial truncated" true o.Limits.truncated;
      check_subset "partial steps" o.Limits.matches full)
    schemes

let test_decode_budget () =
  List.iter
    (fun scheme ->
      let si = build_si scheme in
      let limits = Limits.v ~max_decoded_bytes:1 () in
      match Si.query ~limits si heavy with
      | Error (Si_error.Resource_exhausted { what; _ }) ->
          Alcotest.(check string) "what" "decoded-bytes" what
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "1-byte decode budget did not trip")
    schemes

let test_delay_injection_times_out () =
  (* deterministic mid-query timeout: every block decode sleeps 30 ms
     under a 10 ms deadline, so the first decode's charge trips it *)
  let si = build_si Coding.Interval in
  with_failpoints "cursor.decode=delay:30@1+" (fun () ->
      let limits = Limits.v ~deadline_ns:10_000_000 () in
      match Si.query ~limits si heavy with
      | Error (Si_error.Timeout { elapsed_ns; deadline_ns }) ->
          Alcotest.(check bool) "elapsed past deadline" true
            (elapsed_ns > deadline_ns)
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "delayed decode did not time out")

(* ---- batch fault isolation ---------------------------------------------- *)

let test_batch_limits_per_slot () =
  let si = build_si Coding.Root_split in
  let qs = [| cheap; heavy; "S((NP)" |] in
  let b = Si.query_batch ~limits:(Limits.v ~deadline_ns:0 ()) si qs in
  (* every governed slot times out on its own; the syntax error stays a
     syntax error; the batch itself survives *)
  (match b.Si.answers.(0) with
  | Error (Si_error.Timeout _) -> ()
  | r -> Alcotest.failf "slot 0: %s" (match r with Ok _ -> "ok" | Error e -> Si_error.to_string e));
  (match b.Si.answers.(1) with
  | Error (Si_error.Timeout _) -> ()
  | _ -> Alcotest.fail "slot 1 did not time out");
  (match b.Si.answers.(2) with
  | Error (Si_error.Bad_query _) -> ()
  | _ -> Alcotest.fail "slot 2 not a syntax error");
  Alcotest.(check int) "one latency per query" 3 (Array.length b.Si.latencies_ns);
  let ran =
    Array.fold_left (fun a (s : Si.domain_stat) -> a + s.Si.queries_run) 0
      b.Si.domain_stats
  in
  Alcotest.(check int) "every slot ran" 3 ran;
  Array.iter
    (fun (s : Si.domain_stat) ->
      Alcotest.(check (option string)) "no worker died" None s.Si.died)
    b.Si.domain_stats

let test_batch_isolates_internal_fault () =
  let si = build_si Coding.Interval in
  (* the first block decode of the batch raises a typed internal fault:
     it poisons exactly one slot, the rest of the batch answers *)
  with_failpoints "cursor.decode=fail@1" (fun () ->
      let b = Si.query_batch ~domains:1 si [| heavy; cheap; heavy |] in
      (match b.Si.answers.(0) with
      | Error (Si_error.Internal _ as e) ->
          Alcotest.(check int) "internal exit code" 8 (Si_error.exit_code e)
      | r ->
          Alcotest.failf "slot 0: %s"
            (match r with Ok _ -> "ok" | Error e -> Si_error.to_string e));
      ignore (ok_exn "slot 1" b.Si.answers.(1));
      let o2 = ok_exn "slot 2" b.Si.answers.(2) in
      let want = ok_exn "reference" (Si.query si heavy) in
      Alcotest.(check (list (pair int int))) "slot 2 answer intact" want
        o2.Limits.matches)

(* ---- failpoint registry ------------------------------------------------- *)

let test_failpoint_spec_parsing () =
  List.iter
    (fun bad ->
      match Failpoint.arm bad with
      | Ok () -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ "nonsense"; "x=bogus"; "x=fail@zzz"; "x=exit:999"; "=fail"; "x=short:x" ];
  Alcotest.(check bool) "nothing armed by rejects" false (Failpoint.active ());
  with_failpoints "cursor.seek=delay:0@2+; builder.load.read=short:10@p:0:42"
    (fun () -> Alcotest.(check bool) "armed" true (Failpoint.active ()));
  Alcotest.(check bool) "clear disarms" false (Failpoint.active ())

let test_failpoint_nth_trigger () =
  let si = build_si Coding.Interval in
  with_failpoints "cursor.decode=fail@3" (fun () ->
      (* per-handle cache: the first two decodes pass, the third raises;
         which query it lands in depends only on the deterministic decode
         order, so the outcome is stable *)
      let rec run i fails oks =
        if i = 0 then (fails, oks)
        else
          match Si.query si heavy with
          | Ok _ -> run (i - 1) fails (oks + 1)
          | Error (Si_error.Internal _) -> run (i - 1) (fails + 1) oks
          | Error e -> Alcotest.failf "unexpected: %s" (Si_error.to_string e)
      in
      let fails, oks = run 4 0 0 in
      Alcotest.(check int) "exactly one injected failure" 1 fails;
      Alcotest.(check int) "the rest answer" 3 oks)

(* ---- injected I/O failures and crash consistency ------------------------ *)

let test_sys_failpoint_aborts_save_cleanly () =
  let b =
    Builder.build ~scheme:Coding.Interval ~mss:2
      (Array.of_list (List.map Si_treebank.Annotated.of_tree (corpus 40 5)))
  in
  with_dir (fun dir ->
      let path = Filename.concat dir "ix.idx" in
      ok_exn "first save" (Builder.save b path) |> ignore;
      let before = In_channel.with_open_bin path In_channel.input_all in
      with_failpoints "builder.save.rename=sys" (fun () ->
          match Builder.save b path with
          | Error (Si_error.Io _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok () -> Alcotest.fail "sys failpoint did not abort the save");
      Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
      let after = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check bool) "previous file untouched" true (before = after))

let test_torn_read_is_corrupt () =
  let b =
    Builder.build ~scheme:Coding.Root_split ~mss:2
      (Array.of_list (List.map Si_treebank.Annotated.of_tree (corpus 40 5)))
  in
  with_dir (fun dir ->
      let path = Filename.concat dir "ix.idx" in
      ok_exn "save" (Builder.save b path) |> ignore;
      with_failpoints "builder.load.read=short:50" (fun () ->
          match Builder.load path with
          | Error (Si_error.Corrupt _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "torn read loaded"))

let rewrite_meta path f =
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
          match f l with
          | Some l' -> Out_channel.output_string oc (l' ^ "\n")
          | None -> ())
        lines)

let test_meta_idx_crc_cross_check () =
  with_dir (fun dir ->
      let prefix = Filename.concat dir "ix" in
      let _ =
        Si.build ~scheme:Coding.Interval ~mss:2 ~trees:(corpus 40 5) ~prefix ()
      in
      Alcotest.(check bool) "loaded file_crc recorded" true
        (let si = ok_exn "open" (Si.open_ prefix) in
         (Si.index si).Builder.file_crc <> None);
      (* a wrong idx_crc means a mixed file set: refused, not answered *)
      rewrite_meta (prefix ^ ".meta") (fun l ->
          if String.length l >= 8 && String.sub l 0 8 = "idx_crc=" then
            Some "idx_crc=12345"
          else Some l);
      (match Si.open_ prefix with
      | Error (Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "mixed file set accepted");
      (* a pre-crc .meta (no idx_crc line) still loads: back-compat *)
      rewrite_meta (prefix ^ ".meta") (fun l ->
          if String.length l >= 8 && String.sub l 0 8 = "idx_crc=" then None
          else Some l);
      ignore (ok_exn "pre-crc meta" (Si.open_ prefix)))

let test_mixed_idx_detected () =
  with_dir (fun dir ->
      (* two prefixes, identical shape (scheme, mss, tree count) but
         different corpora: swapping one .idx in must be refused *)
      let p1 = Filename.concat dir "a" and p2 = Filename.concat dir "b" in
      let _ = Si.build ~scheme:Coding.Interval ~mss:2 ~trees:(corpus 40 5) ~prefix:p1 () in
      let _ = Si.build ~scheme:Coding.Interval ~mss:2 ~trees:(corpus 40 99) ~prefix:p2 () in
      let bytes = In_channel.with_open_bin (p2 ^ ".idx") In_channel.input_all in
      Out_channel.with_open_bin (p1 ^ ".idx") (fun oc ->
          Out_channel.output_string oc bytes);
      match Si.open_ p1 with
      | Error (Si_error.Schema_mismatch _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "foreign .idx accepted")

let test_aborted_resave_keeps_old_index () =
  with_dir (fun dir ->
      let prefix = Filename.concat dir "ix" in
      let trees_a = corpus 40 5 in
      let _ = Si.build ~scheme:Coding.Root_split ~mss:2 ~trees:trees_a ~prefix () in
      (* a re-save of a different corpus dies after staging, before any
         publish rename: the published set must be byte-for-byte the old
         index, still loadable and still answering from corpus A *)
      with_failpoints "si.save.siblings=sys" (fun () ->
          match
            Si.build ~scheme:Coding.Root_split ~mss:2 ~trees:(corpus 80 7)
              ~prefix ()
          with
          | exception Si_error.Error (Si_error.Io _) -> ()
          | _ -> Alcotest.fail "aborted re-save did not error");
      let si = ok_exn "open after aborted re-save" (Si.open_ prefix) in
      Alcotest.(check int) "old corpus intact" (List.length trees_a)
        (Corpus.length (Si.corpus si));
      ignore (ok_exn "still answers" (Si.query si cheap)))

let suite =
  [
    Alcotest.test_case "ungoverned/roomy limits unchanged" `Quick
      test_ungoverned_unchanged;
    Alcotest.test_case "deadline 0 -> Timeout / partial" `Quick test_deadline_zero;
    Alcotest.test_case "max-results truncation contract" `Quick test_max_results;
    Alcotest.test_case "join-step budget -> Resource_exhausted" `Quick
      test_step_budget;
    Alcotest.test_case "decode-byte budget -> Resource_exhausted" `Quick
      test_decode_budget;
    Alcotest.test_case "injected decode delay -> Timeout" `Quick
      test_delay_injection_times_out;
    Alcotest.test_case "batch: limits govern each slot" `Quick
      test_batch_limits_per_slot;
    Alcotest.test_case "batch: internal fault poisons one slot" `Quick
      test_batch_isolates_internal_fault;
    Alcotest.test_case "failpoint spec parsing" `Quick test_failpoint_spec_parsing;
    Alcotest.test_case "failpoint nth trigger" `Quick test_failpoint_nth_trigger;
    Alcotest.test_case "sys failpoint: save aborts cleanly" `Quick
      test_sys_failpoint_aborts_save_cleanly;
    Alcotest.test_case "torn read -> Corrupt" `Quick test_torn_read_is_corrupt;
    Alcotest.test_case ".meta idx_crc cross-check" `Quick
      test_meta_idx_crc_cross_check;
    Alcotest.test_case "foreign .idx refused" `Quick test_mixed_idx_detected;
    Alcotest.test_case "aborted re-save keeps old index" `Quick
      test_aborted_resave_keeps_old_index;
  ]
