#!/usr/bin/env bash
# Acceptance flow of ISSUE 1: gen -> build --scheme root-split --mss 3 ->
# query returns the oracle's match set, for all three codings.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TOOL" gen -n 1000 --seed 2012 -o "$DIR/corpus.penn" 2>/dev/null

QUERIES=(
  'S(NP(DT)(NN))(VP)'
  'S(NP)(VP(//NP(NN)))'
  'NP(NN)(NN)'
  'S(//NP)(//NP)'
  'VP(VBZ)(NP(DT)(NN))'
)

for scheme in filter interval root-split; do
  "$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$DIR/ix-$scheme" \
    --scheme "$scheme" --mss 3 >/dev/null
  for q in "${QUERIES[@]}"; do
    out="$("$TOOL" query --prefix "$DIR/ix-$scheme" "$q" --check-oracle)"
    if ! grep -q 'oracle: OK' <<<"$out"; then
      echo "FAIL: scheme=$scheme query=$q" >&2
      echo "$out" >&2
      exit 1
    fi
  done
done

# the three codings also agree with each other on match counts
for q in "${QUERIES[@]}"; do
  counts=$(for scheme in filter interval root-split; do
    "$TOOL" query --prefix "$DIR/ix-$scheme" "$q" | head -1
  done | sort -u | wc -l)
  if [ "$counts" != 1 ]; then
    echo "FAIL: codings disagree on $q" >&2
    exit 1
  fi
done

# ---- failure modes & exit codes (README table) --------------------------
# 2 = bad query, 3 = corrupt index, 4 = i/o error
PFX="$DIR/ix-root-split"
cp "$PFX.idx" "$DIR/pristine.idx"

expect_exit() { # expect_exit CODE GREP_PATTERN CMD...
  local want="$1" pat="$2"; shift 2
  local out code
  set +e
  out="$("$@" 2>&1)"
  code=$?
  set -e
  if [ "$code" != "$want" ]; then
    echo "FAIL: expected exit $want, got $code: $*" >&2
    echo "$out" >&2
    exit 1
  fi
  if ! grep -q "$pat" <<<"$out"; then
    echo "FAIL: expected message matching '$pat': $out" >&2
    exit 1
  fi
}

# truncated index -> documented corruption exit code and message
head -c 100 "$DIR/pristine.idx" > "$PFX.idx"
expect_exit 3 'corrupt index' "$TOOL" query --prefix "$PFX" 'S(NP)(VP)'

# a single flipped bit -> caught by the checksum, same contract
cp "$DIR/pristine.idx" "$PFX.idx"
byte=$(od -An -tu1 -j200 -N1 "$PFX.idx" | tr -d ' ')
printf "$(printf '\\%03o' $((byte ^ 1)))" \
  | dd of="$PFX.idx" bs=1 seek=200 conv=notrunc 2>/dev/null
expect_exit 3 'corrupt index' "$TOOL" query --prefix "$PFX" 'S(NP)(VP)'

# restore; syntax error -> 2, missing prefix -> 4
cp "$DIR/pristine.idx" "$PFX.idx"
expect_exit 2 'bad query' "$TOOL" query --prefix "$PFX" 'S((NP)'
expect_exit 4 'i/o error' "$TOOL" query --prefix "$DIR/no-such-prefix" 'S(NP)(VP)'

# the restored index still answers correctly after all that
out="$("$TOOL" query --prefix "$PFX" 'S(NP)(VP)' --check-oracle)"
grep -q 'oracle: OK' <<<"$out" || { echo "FAIL: restored index broken" >&2; exit 1; }

# ---- serving path: batch query and multi-domain throughput smoke ---------
BATCH="$DIR/batch.txt"
{
  echo '# serving smoke batch (200 queries)'
  echo ''
  for _ in $(seq 40); do printf '%s\n' "${QUERIES[@]}"; done
} > "$BATCH"

# one open, 200 oracle-checked evaluations, one answer line per query
out="$("$TOOL" query --prefix "$PFX" --queries "$BATCH" --check-oracle 2>"$DIR/batch.err")"
lines=$(grep -c "$(printf '\t')" <<<"$out")
if [ "$lines" != 200 ]; then
  echo "FAIL: batch query answered $lines/200 queries" >&2
  exit 1
fi
grep -q 'oracle: OK' "$DIR/batch.err" \
  || { echo "FAIL: batch oracle check missing" >&2; exit 1; }

# the same stream through the parallel evaluator, 2 domains (clamped to
# the core count on small machines — the reported width is the actual one)
cores=$(nproc 2>/dev/null || echo 1)
want_domains=$(( cores < 2 ? cores : 2 ))
out="$("$TOOL" serve --prefix "$PFX" --batch "$BATCH" --domains 2 2>/dev/null)"
for pat in 'queries=200' "domains=$want_domains" 'qps=' 'latency_ns p50=' 'cache hits='; do
  grep -q "$pat" <<<"$out" \
    || { echo "FAIL: serve output missing '$pat': $out" >&2; exit 1; }
done

# asking for far more domains than cores is clamped with a warning
err="$("$TOOL" serve --prefix "$PFX" --batch "$BATCH" --domains 64 2>&1 >/dev/null)"
grep -q 'clamping batch domains 64' <<<"$err" \
  || { echo "FAIL: no clamp warning for --domains 64: $err" >&2; exit 1; }

# ---- resource governance: deadlines, budgets, truncation ------------------
# 6 = timeout, 7 = resource exhausted; --partial degrades both to a
# truncated (but clean, exit 0) answer
expect_exit 6 'timeout' "$TOOL" query --prefix "$PFX" --deadline-ms 0 'S(//NP)(//NP)'
expect_exit 7 'resource exhausted' \
  "$TOOL" query --prefix "$PFX" --max-decoded-bytes 1 'S(NP)(VP)'
expect_exit 7 'join-steps' \
  "$TOOL" query --prefix "$PFX" --max-steps 1 'S(//NP)(//NP)'

out="$("$TOOL" query --prefix "$PFX" --deadline-ms 0 --partial 'S(NP)(VP)')"
grep -q '(truncated)' <<<"$out" \
  || { echo "FAIL: --partial did not flag truncation: $out" >&2; exit 1; }

# --max-results truncates at exactly N and says so (no error, no --partial)
out="$("$TOOL" query --prefix "$PFX" --max-results 3 'S(NP)(VP)')"
grep -q '^3 matches (truncated)' <<<"$out" \
  || { echo "FAIL: --max-results 3 gave: $out" >&2; exit 1; }

# serve under a zero deadline: fault-isolated, every slot errors, exit 0
out="$("$TOOL" serve --prefix "$PFX" --batch "$BATCH" --deadline-ms 0 2>/dev/null)"
grep -q 'errors=200' <<<"$out" \
  || { echo "FAIL: serve --deadline-ms 0 expected errors=200: $out" >&2; exit 1; }
# ... and with --partial the same batch degrades instead of erroring
out="$("$TOOL" serve --prefix "$PFX" --batch "$BATCH" --deadline-ms 0 --partial)"
grep -q 'errors=0 truncated=200' <<<"$out" \
  || { echo "FAIL: serve --partial expected truncated=200: $out" >&2; exit 1; }

# ---- failpoints: injected crashes must not hurt the published index -------
# a simulated crash right before the atomic rename (exit:42) kills the
# build, and the pre-existing index still answers with oracle equality
expect_exit 42 'failpoint' "$TOOL" build --corpus "$DIR/corpus.penn" \
  --prefix "$PFX" --scheme root-split --mss 3 \
  --failpoints 'builder.save.rename=exit:42'
out="$("$TOOL" query --prefix "$PFX" 'S(NP)(VP)' --check-oracle)"
grep -q 'oracle: OK' <<<"$out" \
  || { echo "FAIL: index broken after failpoint crash" >&2; exit 1; }

# same through the environment variable, crashing after all four files are
# staged but before any publish rename
SI_FAILPOINTS='si.save.siblings=exit:42' expect_exit 42 'failpoint' \
  "$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
  --scheme root-split --mss 3
out="$("$TOOL" query --prefix "$PFX" 'S(NP)(VP)' --check-oracle)"
grep -q 'oracle: OK' <<<"$out" \
  || { echo "FAIL: index broken after env-armed failpoint crash" >&2; exit 1; }

# a bad spec is a usage error (exit 2), armed either way
expect_exit 2 'bad --failpoints spec' "$TOOL" build --corpus "$DIR/corpus.penn" \
  --prefix "$PFX" --scheme root-split --mss 3 --failpoints 'nonsense'
SI_FAILPOINTS='x=bogus' expect_exit 2 'SI_FAILPOINTS' \
  "$TOOL" query --prefix "$PFX" 'S(NP)(VP)'

# the failpoints catalogue lists every injection site used above
out="$("$TOOL" failpoints)"
for name in builder.save.rename si.save.siblings builder.load.read; do
  grep -q "$name" <<<"$out" \
    || { echo "FAIL: failpoints catalogue missing $name" >&2; exit 1; }
done

# stats surfaces the block histogram and cache counters
out="$("$TOOL" stats --prefix "$PFX")"
grep -q 'block histogram' <<<"$out" \
  || { echo "FAIL: stats missing block histogram" >&2; exit 1; }
grep -q 'cache budget=' <<<"$out" \
  || { echo "FAIL: stats missing cache counters" >&2; exit 1; }

# stats --json emits the machine-readable schema the server's STATS verb
# shares (an "index" object with the same fields)
out="$("$TOOL" stats --prefix "$PFX" --json)"
for key in '"index"' '"scheme":"root-split"' '"mss":3' '"trees":1000' \
           '"postings"' '"posting_length_histogram"' '"block_histogram"' '"cache"'; do
  grep -qF "$key" <<<"$out" \
    || { echo "FAIL: stats --json missing $key: $out" >&2; exit 1; }
done
if command -v python3 >/dev/null; then
  python3 -c 'import json,sys; json.loads(sys.stdin.read())' <<<"$out" \
    || { echo "FAIL: stats --json is not valid JSON" >&2; exit 1; }
fi

# ---- SIDX4: mmap-resident backend ----------------------------------------
# build --format sidx4 writes the .trees corpus store, answers stay
# oracle-identical under every coding, and stats reports the mapped
# backend with per-region CRC state
for scheme in filter interval root-split; do
  P4="$DIR/ix4-$scheme"
  "$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$P4" \
    --scheme "$scheme" --mss 3 --format sidx4 >/dev/null
  [ -f "$P4.trees" ] || { echo "FAIL: sidx4 build wrote no .trees" >&2; exit 1; }
  for q in "${QUERIES[@]}"; do
    out="$("$TOOL" query --prefix "$P4" "$q" --check-oracle)"
    grep -q 'oracle: OK' <<<"$out" \
      || { echo "FAIL: sidx4 scheme=$scheme query=$q: $out" >&2; exit 1; }
    # the mapped backend answers with the same counts as the sidx3 prefix
    c3="$("$TOOL" query --prefix "$DIR/ix-$scheme" "$q" | head -1)"
    c4="$(head -1 <<<"$out")"
    [ "$c3" = "$c4" ] \
      || { echo "FAIL: sidx4/$scheme $q: $c4 vs sidx3 $c3" >&2; exit 1; }
  done
done

P4="$DIR/ix4-interval"
out="$("$TOOL" stats --prefix "$P4")"
for pat in 'backend=mapped' 'mmap mapped_bytes=' 'resident_estimate=' \
           'region idx/kindex' 'region idx/keydir' 'region idx/postings' \
           'region trees/offsets' 'region trees/trees' 'crc=lazy'; do
  grep -q "$pat" <<<"$out" \
    || { echo "FAIL: sidx4 stats missing '$pat': $out" >&2; exit 1; }
done

out="$("$TOOL" stats --prefix "$P4" --json)"
for key in '"backend":"mapped"' '"mapped_bytes"' '"mmap"' '"resident_estimate"' \
           '"regions"' '"verified":false'; do
  grep -qF "$key" <<<"$out" \
    || { echo "FAIL: sidx4 stats --json missing $key: $out" >&2; exit 1; }
done
if command -v python3 >/dev/null; then
  python3 -c 'import json,sys
j = json.loads(sys.stdin.read())
assert j["index"]["backend"] == "mapped"
assert j["index"]["mapped_bytes"] > 0
assert j["mmap"]["mapped_bytes"] == j["index"]["mapped_bytes"]
assert 0 <= j["mmap"]["resident_estimate"] <= j["mmap"]["mapped_bytes"]
names = {(r["file"], r["name"]) for r in j["mmap"]["regions"]}
assert names == {("idx","kindex"),("idx","keydir"),("idx","postings"),
                 ("trees","offsets"),("trees","trees")}, names' <<<"$out" \
    || { echo "FAIL: sidx4 stats --json schema check" >&2; exit 1; }
fi
# ... and the sidx3 prefix reports the heap backend
out="$("$TOOL" stats --prefix "$DIR/ix-interval")"
grep -q 'backend=heap' <<<"$out" \
  || { echo "FAIL: sidx3 stats should say backend=heap" >&2; exit 1; }

# corruption contract holds for both mapped files (exit 3, clean message)
cp "$P4.idx" "$DIR/p4-pristine.idx"; cp "$P4.trees" "$DIR/p4-pristine.trees"
head -c 100 "$DIR/p4-pristine.idx" > "$P4.idx"
expect_exit 3 'corrupt index' "$TOOL" query --prefix "$P4" 'S(NP)(VP)'
cp "$DIR/p4-pristine.idx" "$P4.idx"
head -c 50 "$DIR/p4-pristine.trees" > "$P4.trees"
expect_exit 3 'corrupt index' "$TOOL" query --prefix "$P4" 'S(NP)(VP)'
cp "$DIR/p4-pristine.trees" "$P4.trees"
out="$("$TOOL" query --prefix "$P4" 'S(NP)(VP)' --check-oracle)"
grep -q 'oracle: OK' <<<"$out" \
  || { echo "FAIL: restored sidx4 index broken" >&2; exit 1; }

# openbench reports the backend and a parseable latency line
out="$("$TOOL" openbench --prefix "$P4" --repeat 2 --query 'S(NP)(VP)')"
for pat in 'open_ms_min=' 'backend=mapped' 'first_query_ms=' 'matches='; do
  grep -q "$pat" <<<"$out" \
    || { echo "FAIL: openbench missing '$pat': $out" >&2; exit 1; }
done

# the serving path accepts a mapped prefix (batch mode smoke)
out="$("$TOOL" serve --prefix "$P4" --batch "$BATCH" 2>/dev/null)"
grep -q 'queries=200' <<<"$out" \
  || { echo "FAIL: serve --batch over sidx4: $out" >&2; exit 1; }

echo "cli_test: OK"
