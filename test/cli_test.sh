#!/usr/bin/env bash
# Acceptance flow of ISSUE 1: gen -> build --scheme root-split --mss 3 ->
# query returns the oracle's match set, for all three codings.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TOOL" gen -n 1000 --seed 2012 -o "$DIR/corpus.penn" 2>/dev/null

QUERIES=(
  'S(NP(DT)(NN))(VP)'
  'S(NP)(VP(//NP(NN)))'
  'NP(NN)(NN)'
  'S(//NP)(//NP)'
  'VP(VBZ)(NP(DT)(NN))'
)

for scheme in filter interval root-split; do
  "$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$DIR/ix-$scheme" \
    --scheme "$scheme" --mss 3 >/dev/null
  for q in "${QUERIES[@]}"; do
    out="$("$TOOL" query --prefix "$DIR/ix-$scheme" "$q" --check-oracle)"
    if ! grep -q 'oracle: OK' <<<"$out"; then
      echo "FAIL: scheme=$scheme query=$q" >&2
      echo "$out" >&2
      exit 1
    fi
  done
done

# the three codings also agree with each other on match counts
for q in "${QUERIES[@]}"; do
  counts=$(for scheme in filter interval root-split; do
    "$TOOL" query --prefix "$DIR/ix-$scheme" "$q" | head -1
  done | sort -u | wc -l)
  if [ "$counts" != 1 ]; then
    echo "FAIL: codings disagree on $q" >&2
    exit 1
  fi
done

echo "cli_test: OK"
