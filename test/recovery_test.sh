#!/usr/bin/env bash
# Crash-recovery acceptance harness (ISSUE 5).
#
# For every save-path injection point in the si_tool failpoints catalogue,
# kill a rebuild with a simulated crash (exit:42) at that point and assert
# the pre-existing published index is untouched: all four files
# byte-identical, the prefix loads, and queries still equal the oracle.
# Then one clean rebuild must succeed over the littered prefix and leave
# no .tmp / .new staging files behind.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

say() { echo "recovery_test: $*"; }

"$TOOL" gen -n 400 --seed 51 -o "$DIR/corpus.penn" 2>/dev/null
PFX="$DIR/ix"
"$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
  --scheme root-split --mss 3 >/dev/null

QUERY='S(NP(DT)(NN))(VP)'
for ext in .idx .dat .labels .meta; do
  cp "$PFX$ext" "$DIR/pristine$ext"
done

# the save-path points, straight from the tool's own catalogue — a new
# injection point in the save sequence is covered here automatically
mapfile -t POINTS < <(
  "$TOOL" failpoints | awk '/^  (builder|si)\.save\./ { print $1 }'
)
if [ "${#POINTS[@]}" -lt 5 ]; then
  echo "FAIL: expected >= 5 save-path failpoints, got: ${POINTS[*]}" >&2
  exit 1
fi

for point in "${POINTS[@]}"; do
  set +e
  out="$("$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
    --scheme root-split --mss 3 --failpoints "$point=exit:42" 2>&1)"
  code=$?
  set -e
  if [ "$code" != 42 ]; then
    echo "FAIL: $point: expected simulated crash (exit 42), got $code" >&2
    echo "$out" >&2
    exit 1
  fi
  # the published files survived the crash byte-for-byte
  for ext in .idx .dat .labels .meta; do
    cmp -s "$PFX$ext" "$DIR/pristine$ext" || {
      echo "FAIL: $point: $PFX$ext changed under a crashed build" >&2
      exit 1
    }
  done
  # ... and the index still answers correctly
  out="$("$TOOL" query --prefix "$PFX" "$QUERY" --check-oracle)"
  grep -q 'oracle: OK' <<<"$out" || {
    echo "FAIL: $point: index no longer answers after crash: $out" >&2
    exit 1
  }
  say "crash at $point: old index intact, oracle OK"
done

# a mixed file set — crash mid-publish, simulated by splicing in an .idx
# from a different corpus — must be refused, not silently answered
"$TOOL" gen -n 400 --seed 52 -o "$DIR/other.penn" 2>/dev/null
"$TOOL" build --corpus "$DIR/other.penn" --prefix "$DIR/other" \
  --scheme root-split --mss 3 >/dev/null
cp "$DIR/other.idx" "$PFX.idx"
set +e
out="$("$TOOL" query --prefix "$PFX" "$QUERY" 2>&1)"
code=$?
set -e
if [ "$code" != 5 ] || ! grep -q 'mixed file set' <<<"$out"; then
  echo "FAIL: torn publish not detected (exit $code): $out" >&2
  exit 1
fi
say "torn publish detected (schema mismatch, exit 5)"
cp "$DIR/pristine.idx" "$PFX.idx"

# recovery: one clean rebuild over the littered prefix repairs everything
"$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
  --scheme root-split --mss 3 >/dev/null
out="$("$TOOL" query --prefix "$PFX" "$QUERY" --check-oracle)"
grep -q 'oracle: OK' <<<"$out" || {
  echo "FAIL: clean rebuild after crashes is broken: $out" >&2
  exit 1
}
litter="$(find "$DIR" -name '*.tmp' -o -name '*.new' | sort)"
if [ -n "$litter" ]; then
  echo "FAIL: staging litter survived the clean rebuild:" >&2
  echo "$litter" >&2
  exit 1
fi
say "clean rebuild repaired the prefix, no staging litter"

echo "recovery_test: OK"
