(* fuzz_main — corruption / differential fuzzer for the index files.

   Builds small pristine indexes under all three codings (SIDX2 and legacy
   SIDX1, mss 1 and 3), then hammers them with deterministic byte
   mutations — truncation, bit flips, splices, range fills, appends,
   deletions — asserting the crash-proofing invariant:

     a mutated file produces a clean [Si_error] or a correct answer —
     never an uncaught exception, never a silently wrong result.

   "Correct answer" is oracle-checked: when a mutated checksummed (SIDX2)
   index still opens, its query answers must equal the brute-force
   matcher's.  Legacy SIDX1 files carry no checksum, so a mutation can in
   principle decode into a *valid but different* index — those assert
   no-crash only.

   Three phases, interleaved per iteration: [idx] mutates the .idx bytes,
   [codec] feeds raw garbage to the posting decoders (must return or raise
   [Coding.Malformed], nothing else), [sibling] mutates .dat/.labels/.meta
   (open must return [Ok]/[Error], queries must not raise).

   Fully deterministic: all randomness flows from --seed through splitmix64
   (Si_grammar.Prng), so a failing run reproduces exactly. *)

open Si_core
module Prng = Si_grammar.Prng

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let failures = ref 0

let fail_iter iter fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "fuzz FAILURE at iteration %d: %s\n%!" iter msg)
    fmt

(* ---- byte mutations ---------------------------------------------------- *)

let mutate_once g s =
  let n = String.length s in
  let b = Bytes.of_string s in
  match Prng.int g 7 with
  | 0 -> (* truncate *) if n = 0 then s else String.sub s 0 (Prng.int g n)
  | 1 ->
      (* flip 1..8 random bits *)
      if n = 0 then s
      else begin
        for _ = 1 to 1 + Prng.int g 8 do
          let i = Prng.int g n in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int g 8)))
        done;
        Bytes.to_string b
      end
  | 2 ->
      (* splice: overwrite a range with bytes copied from elsewhere *)
      if n < 2 then s
      else begin
        let len = 1 + Prng.int g (min 32 (n - 1)) in
        let src = Prng.int g (n - len + 1) and dst = Prng.int g (n - len + 1) in
        Bytes.blit_string s src b dst len;
        Bytes.to_string b
      end
  | 3 ->
      (* fill a range with 0x00 or 0xff *)
      if n = 0 then s
      else begin
        let len = 1 + Prng.int g (min 32 n) in
        let off = Prng.int g (n - len + 1) in
        Bytes.fill b off len (if Prng.int g 2 = 0 then '\x00' else '\xff');
        Bytes.to_string b
      end
  | 4 ->
      (* append garbage *)
      s ^ String.init (1 + Prng.int g 64) (fun _ -> Char.chr (Prng.int g 256))
  | 5 ->
      (* delete a range *)
      if n = 0 then s
      else begin
        let len = 1 + Prng.int g (min 32 n) in
        let off = Prng.int g (n - len + 1) in
        String.sub s 0 off ^ String.sub s (off + len) (n - len - off)
      end
  | _ ->
      (* store 1..4 random bytes *)
      if n = 0 then s
      else begin
        for _ = 1 to 1 + Prng.int g 4 do
          Bytes.set b (Prng.int g n) (Char.chr (Prng.int g 256))
        done;
        Bytes.to_string b
      end

let mutate g s =
  let rec go s k = if k = 0 then s else go (mutate_once g s) (k - 1) in
  go s (1 + Prng.int g 3)

(* ---- pristine bases ----------------------------------------------------- *)

let queries =
  List.map Si_query.Parser.parse_exn
    [ "S(NP)(VP)"; "NP(DT)(NN)"; "S(//NN)"; "S(NP(DT)(NN))(VP)" ]

type base = {
  name : string;
  scratch : string;  (** prefix whose files are rewritten per iteration *)
  files : (string * string) list;  (** pristine bytes per extension *)
  v2 : bool;
  expected : (Si_query.Ast.t * (int * int) list) list;
}

let make_bases dir =
  let bases = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun mss ->
          List.iter
            (fun v2 ->
              let name =
                Printf.sprintf "%s-mss%d-%s"
                  (Coding.scheme_to_string scheme)
                  mss
                  (if v2 then "v2" else "v1")
              in
              let prefix = Filename.concat dir name in
              let trees =
                Si_grammar.Generator.corpus ~seed:(100 + mss) ~n:25 ()
              in
              let si = Si.build ~scheme ~mss ~trees ~prefix () in
              if not v2 then begin
                match Builder.save_v1 (Si.index si) (prefix ^ ".idx") with
                | Ok () -> ()
                | Error e -> failwith (Si_error.to_string e)
              end;
              let expected = List.map (fun q -> (q, Si.oracle si q)) queries in
              let files =
                List.map
                  (fun ext -> (ext, read_file (prefix ^ ext)))
                  [ ".idx"; ".dat"; ".labels"; ".meta" ]
              in
              let scratch = Filename.concat dir (name ^ "-scratch") in
              bases := { name; scratch; files; v2; expected } :: !bases)
            [ true; false ])
        [ 1; 3 ])
    [ Coding.Filter; Coding.Interval; Coding.Root_split ];
  Array.of_list (List.rev !bases)

let restore base =
  List.iter (fun (ext, bytes) -> write_file (base.scratch ^ ext) bytes) base.files

(* ---- phases ------------------------------------------------------------- *)

type stats = {
  mutable idx_runs : int;
  mutable idx_rejected : int;  (** mutated .idx -> clean error *)
  mutable idx_opened : int;  (** mutated .idx still opened (oracle-checked) *)
  mutable codec_runs : int;
  mutable sibling_runs : int;
}

(* every query on a surviving index must come back as a result; on a
   checksummed (v2) file an [Ok] must equal the oracle *)
let check_queries iter base si ~oracle_checked =
  List.iter
    (fun (q, want) ->
      match Si.query_ast si q with
      | Error _ -> ()
      | Ok got ->
          if oracle_checked && got <> want then
            fail_iter iter
              "silent wrong result on %s: base %s, index %d matches, oracle %d"
              (Si_query.Ast.to_string q) base.name (List.length got)
              (List.length want))
    base.expected

let fuzz_idx g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  let pristine = List.assoc ".idx" base.files in
  let mutated = mutate g pristine in
  write_file (base.scratch ^ ".idx") mutated;
  st.idx_runs <- st.idx_runs + 1;
  match Si.open_ base.scratch with
  | Error _ -> st.idx_rejected <- st.idx_rejected + 1
  | Ok si ->
      st.idx_opened <- st.idx_opened + 1;
      (* v2 opened => every checksum matched => answers must be correct;
         v1 has no checksum, so only crash-freedom is asserted *)
      check_queries iter base si
        ~oracle_checked:(base.v2 && not (String.equal mutated pristine))

let fuzz_codec g st _iter =
  st.codec_runs <- st.codec_runs + 1;
  let s = String.init (Prng.int g 200) (fun _ -> Char.chr (Prng.int g 256)) in
  let scheme = Prng.pick g [| Coding.Filter; Coding.Interval; Coding.Root_split |] in
  let key_size = 1 + Prng.int g 4 in
  (match Coding.unpack scheme ~key_size s 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ());
  match Coding.read scheme ~key_size s 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ()

let fuzz_sibling g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  let ext = Prng.pick g [| ".dat"; ".labels"; ".meta" |] in
  write_file (base.scratch ^ ext) (mutate g (List.assoc ext base.files));
  st.sibling_runs <- st.sibling_runs + 1;
  match Si.open_ base.scratch with
  | Error _ -> ()
  | Ok si ->
      (* the mutated sibling may parse to a *different* valid corpus, so the
         stored oracle answers no longer apply: assert crash-freedom only *)
      check_queries iter base si ~oracle_checked:false

(* ---- driver ------------------------------------------------------------- *)

let () =
  Printexc.record_backtrace true;
  let seed = ref 0xC0FFEE in
  let iters = ref 2000 in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "PRNG seed (default 0xC0FFEE)");
      ("--iters", Arg.Set_int iters, "number of fuzz iterations (default 2000)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz_main [--seed S] [--iters N]";
  let dir = Filename.temp_file "si_fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let bases = make_bases dir in
  let g = Prng.create !seed in
  let st =
    { idx_runs = 0; idx_rejected = 0; idx_opened = 0; codec_runs = 0; sibling_runs = 0 }
  in
  for iter = 1 to !iters do
    let run f = try f () with e ->
      fail_iter iter "uncaught exception %s\n%s" (Printexc.to_string e)
        (Printexc.get_backtrace ())
    in
    let phase = Prng.int g 10 in
    if phase < 7 then run (fun () -> fuzz_idx g bases st iter)
    else if phase < 9 then run (fun () -> fuzz_codec g st iter)
    else run (fun () -> fuzz_sibling g bases st iter)
  done;
  Printf.printf
    "fuzz: %d iterations, %d failures (idx: %d runs, %d rejected, %d survived; \
     codec: %d; sibling: %d)\n"
    !iters !failures st.idx_runs st.idx_rejected st.idx_opened st.codec_runs
    st.sibling_runs;
  if !failures > 0 then exit 1
