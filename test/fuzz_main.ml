(* fuzz_main — corruption / differential fuzzer for the index files.

   Builds small pristine indexes under all three codings (SIDX3, SIDX2 and
   legacy SIDX1, mss 1 and 3), then hammers them with deterministic byte
   mutations — truncation, bit flips, splices, range fills, appends,
   deletions — asserting the crash-proofing invariant:

     a mutated file produces a clean [Si_error] or a correct answer —
     never an uncaught exception, never a silently wrong result.

   "Correct answer" is oracle-checked: when a mutated checksummed
   (SIDX3/SIDX2) index still opens, its query answers must equal the
   brute-force matcher's.  Legacy SIDX1 files carry no checksum, so a
   mutation can in principle decode into a *valid but different* index —
   those assert no-crash only.

   Four phases, interleaved per iteration: [idx] mutates the .idx bytes,
   [skip] mutates bytes inside the SIDX3 postings region — the block-skip
   tables and block bodies — then refits the region checksum so the load
   gate passes and the decode-time structural validation is what must
   reject the damage (cleanly, at query time), [codec] feeds raw garbage to
   the posting decoders (must return or raise [Coding.Malformed], nothing
   else), [sibling] mutates .dat/.labels/.meta (open must return
   [Ok]/[Error], queries must not raise).

   Fully deterministic: all randomness flows from --seed through splitmix64
   (Si_grammar.Prng), so a failing run reproduces exactly. *)

open Si_core
module Prng = Si_grammar.Prng

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let failures = ref 0

let fail_iter iter fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "fuzz FAILURE at iteration %d: %s\n%!" iter msg)
    fmt

(* ---- byte mutations ---------------------------------------------------- *)

let mutate_once g s =
  let n = String.length s in
  let b = Bytes.of_string s in
  match Prng.int g 7 with
  | 0 -> (* truncate *) if n = 0 then s else String.sub s 0 (Prng.int g n)
  | 1 ->
      (* flip 1..8 random bits *)
      if n = 0 then s
      else begin
        for _ = 1 to 1 + Prng.int g 8 do
          let i = Prng.int g n in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int g 8)))
        done;
        Bytes.to_string b
      end
  | 2 ->
      (* splice: overwrite a range with bytes copied from elsewhere *)
      if n < 2 then s
      else begin
        let len = 1 + Prng.int g (min 32 (n - 1)) in
        let src = Prng.int g (n - len + 1) and dst = Prng.int g (n - len + 1) in
        Bytes.blit_string s src b dst len;
        Bytes.to_string b
      end
  | 3 ->
      (* fill a range with 0x00 or 0xff *)
      if n = 0 then s
      else begin
        let len = 1 + Prng.int g (min 32 n) in
        let off = Prng.int g (n - len + 1) in
        Bytes.fill b off len (if Prng.int g 2 = 0 then '\x00' else '\xff');
        Bytes.to_string b
      end
  | 4 ->
      (* append garbage *)
      s ^ String.init (1 + Prng.int g 64) (fun _ -> Char.chr (Prng.int g 256))
  | 5 ->
      (* delete a range *)
      if n = 0 then s
      else begin
        let len = 1 + Prng.int g (min 32 n) in
        let off = Prng.int g (n - len + 1) in
        String.sub s 0 off ^ String.sub s (off + len) (n - len - off)
      end
  | _ ->
      (* store 1..4 random bytes *)
      if n = 0 then s
      else begin
        for _ = 1 to 1 + Prng.int g 4 do
          Bytes.set b (Prng.int g n) (Char.chr (Prng.int g 256))
        done;
        Bytes.to_string b
      end

let mutate g s =
  let rec go s k = if k = 0 then s else go (mutate_once g s) (k - 1) in
  go s (1 + Prng.int g 3)

(* ---- pristine bases ----------------------------------------------------- *)

let queries =
  List.map Si_query.Parser.parse_exn
    [ "S(NP)(VP)"; "NP(DT)(NN)"; "S(//NN)"; "S(NP(DT)(NN))(VP)" ]

type version = V4 | V3 | V2 | V1

let version_name = function V4 -> "v4" | V3 -> "v3" | V2 -> "v2" | V1 -> "v1"

type base = {
  name : string;
  scratch : string;  (** prefix whose files are rewritten per iteration *)
  files : (string * string) list;  (** pristine bytes per extension *)
  version : version;
  expected : (Si_query.Ast.t * (int * int) list) list;
}

(* checksummed containers: a mutation either fails the CRC gate or left the
   bytes semantically intact, so surviving opens are oracle-checked *)
let checksummed base = base.version <> V1

(* rewriting the .idx in an older format invalidates the idx_crc the .meta
   recorded at build time (the mixed-file-set detector would reject the
   base as a torn save) — refit it to the rewritten bytes *)
let refit_meta prefix =
  let crc = Crc32.string (read_file (prefix ^ ".idx")) in
  let lines = String.split_on_char '\n' (read_file (prefix ^ ".meta")) in
  let lines =
    List.map
      (fun l ->
        if String.length l >= 8 && String.sub l 0 8 = "idx_crc=" then
          "idx_crc=" ^ string_of_int crc
        else l)
      lines
  in
  write_file (prefix ^ ".meta") (String.concat "\n" lines)

let make_bases dir =
  let bases = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun mss ->
          List.iter
            (fun version ->
              let name =
                Printf.sprintf "%s-mss%d-%s"
                  (Coding.scheme_to_string scheme)
                  mss (version_name version)
              in
              let prefix = Filename.concat dir name in
              let trees =
                Si_grammar.Generator.corpus ~seed:(100 + mss) ~n:25 ()
              in
              let format = match version with V4 -> `Sidx4 | _ -> `Sidx3 in
              let si = Si.build ~format ~scheme ~mss ~trees ~prefix () in
              let rewrite save =
                match save (Si.index si) (prefix ^ ".idx") with
                | Ok () -> ()
                | Error e -> failwith (Si_error.to_string e)
              in
              (match version with
              | V4 | V3 -> ()  (* Si.build already saved this container *)
              | V2 ->
                  rewrite Builder.save_v2;
                  refit_meta prefix
              | V1 ->
                  rewrite Builder.save_v1;
                  refit_meta prefix);
              let expected = List.map (fun q -> (q, Si.oracle si q)) queries in
              let files =
                List.map
                  (fun ext -> (ext, read_file (prefix ^ ext)))
                  ([ ".idx"; ".dat"; ".labels"; ".meta" ]
                  @ match version with V4 -> [ ".trees" ] | _ -> [])
              in
              let scratch = Filename.concat dir (name ^ "-scratch") in
              bases := { name; scratch; files; version; expected } :: !bases)
            [ V4; V3; V2; V1 ])
        [ 1; 3 ])
    [ Coding.Filter; Coding.Interval; Coding.Root_split ];
  Array.of_list (List.rev !bases)

let restore base =
  List.iter (fun (ext, bytes) -> write_file (base.scratch ^ ext) bytes) base.files

(* ---- phases ------------------------------------------------------------- *)

type stats = {
  mutable idx_runs : int;
  mutable idx_rejected : int;  (** mutated .idx -> clean error *)
  mutable idx_opened : int;  (** mutated .idx still opened (oracle-checked) *)
  mutable skip_runs : int;
  mutable skip_rejected : int;  (** crc-refit mutation -> clean error *)
  mutable skip_opened : int;  (** opened; queries must not crash *)
  mutable codec_runs : int;
  mutable sibling_runs : int;
  mutable failpoint_runs : int;
  mutable scrub_runs : int;
  mutable scrub_rejected : int;  (** mutated prefix -> clean open error *)
  mutable scrub_repairs : int;  (** successful repair + oracle-exact reopen *)
}

(* every query on a surviving index must come back as a result; on a
   checksummed (v2) file an [Ok] must equal the oracle *)
let check_queries iter base si ~oracle_checked =
  List.iter
    (fun (q, want) ->
      match Si.query_ast si q with
      | Error _ -> ()
      | Ok got ->
          if oracle_checked && got <> want then
            fail_iter iter
              "silent wrong result on %s: base %s, index %d matches, oracle %d"
              (Si_query.Ast.to_string q) base.name (List.length got)
              (List.length want))
    base.expected

let fuzz_idx g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  (* V4 prefixes carry a second mapped file — the .trees corpus store —
     under the same fully-checksummed contract as the .idx *)
  let ext =
    if base.version = V4 && Prng.int g 3 = 0 then ".trees" else ".idx"
  in
  let pristine = List.assoc ext base.files in
  let mutated = mutate g pristine in
  write_file (base.scratch ^ ext) mutated;
  st.idx_runs <- st.idx_runs + 1;
  match Si.open_ base.scratch with
  | Error _ -> st.idx_rejected <- st.idx_rejected + 1
  | Ok si ->
      st.idx_opened <- st.idx_opened + 1;
      (* v3/v2 opened => every checksum matched => answers must be correct;
         v1 has no checksum, so only crash-freedom is asserted *)
      check_queries iter base si
        ~oracle_checked:(checksummed base && not (String.equal mutated pristine))

(* [skip] phase: damage the SIDX3 postings region — block-skip tables,
   block bodies, posting headers — then recompute the region CRC in the
   footer so the load-time integrity gate passes.  The structural
   validation (skip-table bounds, block tiling, first-tid monotonicity,
   exact-length decode) is now the only line of defense: the file may be
   rejected at load, or open and fail cleanly at query time, or decode to
   a valid-but-different posting — but it must never crash.  Oracle
   equality is deliberately not asserted: a refit mutation is
   indistinguishable from a legitimately different index. *)

let u64_at s off =
  let v = ref 0 in
  for i = 7 downto 0 do v := (!v lsl 8) lor Char.code s.[off + i] done;
  !v

let fuzz_skip g v3_bases st iter =
  let base = Prng.pick g v3_bases in
  restore base;
  let pristine = List.assoc ".idx" base.files in
  let len = String.length pristine in
  let keydir_len = u64_at pristine (len - 32) in
  let postings_len = u64_at pristine (len - 24) in
  let p_start = 8 + keydir_len in
  if postings_len > 0 then begin
    st.skip_runs <- st.skip_runs + 1;
    let b = Bytes.of_string pristine in
    for _ = 1 to 1 + Prng.int g 4 do
      Bytes.set b (p_start + Prng.int g postings_len) (Char.chr (Prng.int g 256))
    done;
    let s = Bytes.to_string b in
    let crc = Crc32.substring s p_start postings_len in
    for i = 0 to 3 do
      Bytes.set b (len - 8 + i) (Char.chr ((crc lsr (8 * i)) land 0xff))
    done;
    write_file (base.scratch ^ ".idx") (Bytes.to_string b);
    (* also refit the .meta whole-file cross-check, for the same reason:
       the decode-time validation is the layer under test, not the gates *)
    refit_meta base.scratch;
    match Si.open_ base.scratch with
    | Error _ -> st.skip_rejected <- st.skip_rejected + 1
    | Ok si ->
        st.skip_opened <- st.skip_opened + 1;
        check_queries iter base si ~oracle_checked:false
  end

let fuzz_codec g st _iter =
  st.codec_runs <- st.codec_runs + 1;
  let s = String.init (Prng.int g 200) (fun _ -> Char.chr (Prng.int g 256)) in
  let scheme = Prng.pick g [| Coding.Filter; Coding.Interval; Coding.Root_split |] in
  let key_size = 1 + Prng.int g 4 in
  (match Coding.unpack scheme ~key_size (Coding.str s) 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ());
  (match Coding.read scheme ~key_size (Coding.str s) 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ());
  (* the v3 container decoders obey the same contract on garbage *)
  (match Coding.unpack_v3 scheme ~key_size (Coding.str s) 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ());
  (match Coding.v3_layout scheme (Coding.str s) 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ());
  (* the v4 slice decoder, with a benign resolver standing in for the
     corpus store (real resolution is fuzzed through the [idx] phase) *)
  let resolve _tid _pre = { Coding.pre = 0; post = 0; level = 0 } in
  match Coding.unpack_v4 ~key_size ~resolve (Coding.str s) 0 with
  | _ -> ()
  | exception Coding.Malformed _ -> ()

let fuzz_sibling g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  let ext = Prng.pick g [| ".dat"; ".labels"; ".meta" |] in
  write_file (base.scratch ^ ext) (mutate g (List.assoc ext base.files));
  st.sibling_runs <- st.sibling_runs + 1;
  match Si.open_ base.scratch with
  | Error _ -> ()
  | Ok si ->
      (* the mutated sibling may parse to a *different* valid corpus, so the
         stored oracle answers no longer apply: assert crash-freedom only *)
      check_queries iter base si ~oracle_checked:false

(* [failpoint] phase: instead of mutating bytes, inject faults through the
   {!Failpoint} registry — the same mechanism the recovery harness uses —
   with deterministic random specs drawn from the fuzz PRNG.

   Load-side: arm a read/decode-path point (torn reads, decode failures,
   seek failures) and open + query; every outcome must be a clean
   [Si_error] or a result — never a crash.  Save-side: arm a save-path
   point and attempt a rebuild over the scratch prefix; the save must fail
   cleanly (the points all sit before the publish renames) and the
   previously published index must remain byte-intact, loadable, and
   oracle-correct.  The registry is cleared after every iteration so no
   armed point leaks into the byte-mutation phases. *)

let load_specs g =
  match Prng.int g 7 with
  | 0 -> Printf.sprintf "builder.load.read=short:%d" (Prng.int g 512)
  | 1 -> "builder.load.read=sys"
  | 6 -> if Prng.int g 2 = 0 then "builder.load.map=sys" else "builder.load.map=fail"
  | 2 -> Printf.sprintf "builder.decode-block=fail@%d" (1 + Prng.int g 3)
  | 3 -> Printf.sprintf "cursor.decode=fail@%d" (1 + Prng.int g 3)
  | 4 -> Printf.sprintf "cursor.seek=fail@%d" (1 + Prng.int g 2)
  | _ ->
      Printf.sprintf "cursor.decode=fail@p:%d:%d" (10 + Prng.int g 90)
        (Prng.int g 1_000_000)

let save_specs g =
  let name =
    Prng.pick g
      [|
        "builder.save.tmp-open";
        "builder.save.write";
        "builder.save.fsync";
        "builder.save.rename";
        "si.save.siblings";
      |]
  in
  Printf.sprintf "%s=%s" name (if Prng.int g 2 = 0 then "fail" else "sys")

let fuzz_failpoint g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  st.failpoint_runs <- st.failpoint_runs + 1;
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  if Prng.int g 2 = 0 then begin
    (* load-side: faults during open/query surface as clean errors *)
    Failpoint.arm_exn (load_specs g);
    match Si.open_ base.scratch with
    | Error _ -> ()
    | Ok si ->
        (* a point armed with @N may fire on a later query — or never;
           either way each query returns [Ok]/[Error] cleanly, so no
           oracle check (an injected fault legitimately changes answers
           to errors) *)
        check_queries iter base si ~oracle_checked:false
  end
  else begin
    (* save-side: every named save point precedes the publish renames, so
       an aborted rebuild must leave the published set untouched *)
    Failpoint.arm_exn (save_specs g);
    let si0 =
      match Si.open_ base.scratch with
      | Ok si -> si
      | Error e ->
          failwith ("pristine scratch failed to open: " ^ Si_error.to_string e)
    in
    let trees = Si_grammar.Generator.corpus ~seed:iter ~n:6 () in
    let format = match base.version with V4 -> `Sidx4 | _ -> `Sidx3 in
    (match
       Si.build ~format ~scheme:(Si.scheme si0) ~mss:(Si.mss si0) ~trees
         ~prefix:base.scratch ()
     with
    | _ ->
        fail_iter iter "armed save failpoint did not abort the rebuild (%s)"
          base.name
    | exception Si_error.Error _ -> ()
    | exception Sys_error _ -> ());
    Failpoint.clear ();
    match Si.open_ base.scratch with
    | Error e ->
        fail_iter iter "published index unloadable after aborted save (%s): %s"
          base.name (Si_error.to_string e)
    | Ok si -> check_queries iter base si ~oracle_checked:true
  end

(* [scrub] phase (DESIGN.md §15): open a pristine or mutated prefix and
   drive the integrity scrub through a full cycle under random budgets —
   it must never raise, a pristine prefix must scrub clean, and a
   quarantined handle must keep answering oracle-exact via the corpus
   fallback.  Half the damaged runs then repair: a successful repair must
   reopen to an oracle-correct index (the rebuild sources the corpus, so
   even an unchecksummed V1 mutation repairs to the truth). *)

let fuzz_scrub g bases st iter =
  let base = Prng.pick g bases in
  restore base;
  st.scrub_runs <- st.scrub_runs + 1;
  let mutated_ext =
    match Prng.int g 3 with
    | 0 -> None
    | _ ->
        Some
          (if base.version = V4 && Prng.int g 3 = 0 then ".trees" else ".idx")
  in
  let changed =
    match mutated_ext with
    | None -> false
    | Some ext ->
        let pristine = List.assoc ext base.files in
        let mutated = mutate g pristine in
        write_file (base.scratch ^ ext) mutated;
        not (String.equal mutated pristine)
  in
  match Si.open_ base.scratch with
  | Error _ -> st.scrub_rejected <- st.scrub_rejected + 1
  | Ok si -> (
      let budget =
        if Prng.int g 2 = 0 then None
        else Some (Scrub.budget ~max_bytes:(1 + Prng.int g 20_000) ())
      in
      let rec drive k last =
        if k = 0 then last
        else
          let r = Si.scrub ?budget si in
          if r.Scrub.complete then r else drive (k - 1) r
      in
      match drive 64 (Si.scrub ?budget si) with
      | exception e ->
          fail_iter iter "scrub raised %s on %s" (Printexc.to_string e)
            base.name
      | r ->
          if (not changed) && r.Scrub.complete && not r.Scrub.clean then
            fail_iter iter "pristine %s scrubbed dirty (bad: %s)" base.name
              (String.concat " " r.Scrub.bad_regions);
          (* quarantined or not, every answer is clean — and exact on a
             checksummed base (the fallback is the oracle) *)
          check_queries iter base si ~oracle_checked:(checksummed base);
          if changed && Prng.int g 2 = 0 then (
            match Si.repair si with
            | Error _ -> ()  (* e.g. the corpus store itself is damaged *)
            | exception Si_error.Error _ | (exception Sys_error _) -> ()
            | Ok _ -> (
                match Si.open_ base.scratch with
                | Error e ->
                    fail_iter iter
                      "repaired prefix unloadable (%s): %s" base.name
                      (Si_error.to_string e)
                | Ok si' ->
                    st.scrub_repairs <- st.scrub_repairs + 1;
                    (* the rebuild sourced the (verified) corpus, so the
                       repaired answers are the truth even on V1 bases *)
                    check_queries iter base si' ~oracle_checked:true)))

(* ---- driver ------------------------------------------------------------- *)

let () =
  Printexc.record_backtrace true;
  let seed = ref 0xC0FFEE in
  let iters = ref 2000 in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "PRNG seed (default 0xC0FFEE)");
      ("--iters", Arg.Set_int iters, "number of fuzz iterations (default 2000)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz_main [--seed S] [--iters N]";
  let dir = Filename.temp_file "si_fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let bases = make_bases dir in
  let v3_bases =
    Array.of_list
      (List.filter (fun b -> b.version = V3) (Array.to_list bases))
  in
  let g = Prng.create !seed in
  let st =
    {
      idx_runs = 0;
      idx_rejected = 0;
      idx_opened = 0;
      skip_runs = 0;
      skip_rejected = 0;
      skip_opened = 0;
      codec_runs = 0;
      sibling_runs = 0;
      failpoint_runs = 0;
      scrub_runs = 0;
      scrub_rejected = 0;
      scrub_repairs = 0;
    }
  in
  for iter = 1 to !iters do
    let run f = try f () with e ->
      Failpoint.clear ();
      fail_iter iter "uncaught exception %s\n%s" (Printexc.to_string e)
        (Printexc.get_backtrace ())
    in
    let phase = Prng.int g 16 in
    if phase < 6 then run (fun () -> fuzz_idx g bases st iter)
    else if phase < 9 then run (fun () -> fuzz_skip g v3_bases st iter)
    else if phase < 11 then run (fun () -> fuzz_codec g st iter)
    else if phase < 12 then run (fun () -> fuzz_sibling g bases st iter)
    else if phase < 14 then run (fun () -> fuzz_failpoint g bases st iter)
    else run (fun () -> fuzz_scrub g bases st iter)
  done;
  Printf.printf
    "fuzz: %d iterations, %d failures (idx: %d runs, %d rejected, %d survived; \
     skip: %d runs, %d rejected, %d survived; codec: %d; sibling: %d; \
     failpoint: %d; scrub: %d runs, %d rejected, %d repaired)\n"
    !iters !failures st.idx_runs st.idx_rejected st.idx_opened st.skip_runs
    st.skip_rejected st.skip_opened st.codec_runs st.sibling_runs
    st.failpoint_runs st.scrub_runs st.scrub_rejected st.scrub_repairs;
  if !failures > 0 then exit 1
