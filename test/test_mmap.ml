(* The SIDX4 mmap-resident backend and its corpus store.

   The contract under test: an SIDX4 prefix answers *byte-identically* to
   the same index persisted as SIDX3 (and to the brute-force oracle), the
   corpus store reconstructs exactly the annotation a Penn re-parse would
   build, open-time work is O(1) with region CRCs verifying lazily, and a
   damaged file surfaces as [Corrupt] — never a crash and never a silently
   wrong answer. *)

open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()
let schemes = [ Coding.Filter; Coding.Interval; Coding.Root_split ]

let queries =
  [
    "S(NP)(VP)";
    "S(NP(DT)(NN))(VP)";
    "NP(DT)(NN)";
    "NP(NN)(NN)";
    "S(//NN)";
    "S(NP)(VP(//NP(NN)))";
    "S(//NP)(//NP)";
    "VP(VBZ)(NP(DT)(NN))";
    "NP(NP(//NN))(PP)";
    "S(//PP(IN)(NP))";
  ]

(* a scratch directory for prefix file sets *)
let with_dir f =
  let dir = Filename.temp_file "si_mmap" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let build_both dir ~scheme ~mss ~trees =
  let p3 = Filename.concat dir "ix3" and p4 = Filename.concat dir "ix4" in
  ignore (Si.build ~format:`Sidx3 ~scheme ~mss ~trees ~prefix:p3 ());
  ignore (Si.build ~format:`Sidx4 ~scheme ~mss ~trees ~prefix:p4 ());
  (p3, p4)

(* ---- differential: SIDX4 = SIDX3 = oracle ------------------------------- *)

let check_differential ~seed ~n ~mss =
  with_dir @@ fun dir ->
  let trees = corpus n seed in
  List.iter
    (fun scheme ->
      let p3, p4 = build_both dir ~scheme ~mss ~trees in
      let s3 = ok_exn "open sidx3" (Si.open_ p3) in
      let s4 = ok_exn "open sidx4" (Si.open_ p4) in
      Alcotest.(check bool) "sidx3 backend" false (Builder.is_mapped (Si.index s3));
      Alcotest.(check bool) "sidx4 backend" true (Builder.is_mapped (Si.index s4));
      List.iter
        (fun qstr ->
          let want = ok_exn ("sidx3 " ^ qstr) (Si.query s3 qstr) in
          let got = ok_exn ("sidx4 " ^ qstr) (Si.query s4 qstr) in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s/%s mss=%d sidx4 = sidx3"
               (Coding.scheme_to_string scheme) qstr mss)
            want got;
          let oracle = Si.oracle s4 (Si_query.Parser.parse_exn qstr) in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s/%s mss=%d sidx4 = oracle"
               (Coding.scheme_to_string scheme) qstr mss)
            oracle got)
        queries;
      (* sentence output: the store reconstruction = the .dat parse *)
      for tid = 0 to min 9 (List.length trees - 1) do
        Alcotest.(check string) "sentence"
          (Si_treebank.Tree.to_string (Si.sentence s3 tid))
          (Si_treebank.Tree.to_string (Si.sentence s4 tid))
      done)
    schemes

let test_differential_fixed () =
  check_differential ~seed:42 ~n:120 ~mss:3;
  check_differential ~seed:7 ~n:80 ~mss:2

let prop_differential =
  QCheck.Test.make ~name:"sidx4 matches sidx3 and oracle (random corpora)"
    ~count:5
    QCheck.(pair (int_range 1 3) small_nat)
    (fun (mss, seed) ->
      check_differential ~seed:(seed + 1) ~n:50 ~mss;
      true)

(* ---- governed evaluation over the mapped backend ------------------------ *)

let test_limits_differential () =
  with_dir @@ fun dir ->
  let trees = corpus 120 11 in
  List.iter
    (fun scheme ->
      let _, p4 = build_both dir ~scheme ~mss:2 ~trees in
      let s4 = ok_exn "open" (Si.open_ p4) in
      let heavy = "S(//NP)(//NP)" in
      let full = ok_exn "full" (Si.query s4 heavy) in
      (* a roomy budget must not change the answer *)
      let roomy =
        Limits.v ~deadline_ns:max_int ~max_decoded_bytes:max_int
          ~max_join_steps:max_int ~max_results:max_int ()
      in
      let o = ok_exn "roomy" (Si.query_outcome ~limits:roomy s4 heavy) in
      Alcotest.(check bool) "roomy not truncated" false o.Limits.truncated;
      Alcotest.(check (list (pair int int))) "roomy same answer" full
        o.Limits.matches;
      (* max-results truncation is a sorted prefix of the full answer *)
      let limits = Limits.v ~max_results:5 () in
      let o = ok_exn "capped" (Si.query_outcome ~limits s4 heavy) in
      if List.length full > 5 then begin
        Alcotest.(check bool) "capped truncated" true o.Limits.truncated;
        Alcotest.(check int) "capped length" 5 (List.length o.Limits.matches)
      end;
      List.iter
        (fun r ->
          if not (List.mem r full) then
            Alcotest.fail "truncated result not in the full answer")
        o.Limits.matches;
      (* a tight byte budget trips Resource_exhausted, softened by partial *)
      let tight = Limits.v ~max_decoded_bytes:1 () in
      (match Si.query ~limits:tight s4 heavy with
      | Error (Si_error.Resource_exhausted _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok m ->
          (* tiny postings may fit one block in a single decode *)
          Alcotest.(check (list (pair int int))) "tight exact" full m);
      let tight = Limits.v ~max_decoded_bytes:1 ~partial:true () in
      let o = ok_exn "tight partial" (Si.query_outcome ~limits:tight s4 heavy) in
      List.iter
        (fun r ->
          if not (List.mem r full) then
            Alcotest.fail "partial result not in the full answer")
        o.Limits.matches)
    schemes

(* ---- lazy CRC state ------------------------------------------------------ *)

let test_lazy_verification () =
  with_dir @@ fun dir ->
  let trees = corpus 100 3 in
  let _, p4 = build_both dir ~scheme:Coding.Interval ~mss:3 ~trees in
  let s4 = ok_exn "open" (Si.open_ p4) in
  let stats_of () = Option.get (Builder.mapped_stats (Si.index s4)) in
  let verified () =
    List.filter (fun r -> r.Builder.rverified) (stats_of ()).Builder.regions
    |> List.map (fun r -> r.Builder.rname)
  in
  Alcotest.(check (list string)) "all regions lazy at open" [] (verified ());
  let store = Option.get (Corpus.store (Si.corpus s4)) in
  Alcotest.(check bool) "store body lazy at open" false
    (Treestore.body_verified store);
  let before = (stats_of ()).Builder.resident_estimate in
  ignore (ok_exn "query" (Si.query s4 "S(NP)(VP)"));
  Alcotest.(check (list string)) "find + decode verified everything"
    [ "kindex"; "keydir"; "postings" ] (verified ());
  Alcotest.(check bool) "resolve verified the store" true
    (Treestore.body_verified store);
  Alcotest.(check bool) "resident estimate grew" true
    ((stats_of ()).Builder.resident_estimate > before);
  Alcotest.(check bool) "resident <= mapped" true
    ((stats_of ()).Builder.resident_estimate
    <= (stats_of ()).Builder.mapped_bytes)

(* ---- the corpus store in isolation -------------------------------------- *)

let test_treestore_roundtrip () =
  with_dir @@ fun dir ->
  let docs =
    Array.of_list (List.map Si_treebank.Annotated.of_tree (corpus 60 9))
  in
  let path = Filename.concat dir "t.trees" in
  Treestore.save path ~relabel:Fun.id docs;
  let st = Treestore.open_ ~relabel:Fun.id path in
  Alcotest.(check int) "length" (Array.length docs) (Treestore.length st);
  Array.iteri
    (fun tid d ->
      let open Si_treebank in
      let d' = Treestore.get st tid in
      Alcotest.(check string) "tree"
        (Tree.to_string d.Annotated.tree)
        (Tree.to_string d'.Annotated.tree);
      Alcotest.(check (array int)) "labels" d.Annotated.label d'.Annotated.label;
      Alcotest.(check (array int)) "post" d.Annotated.post d'.Annotated.post;
      Alcotest.(check (array int)) "level" d.Annotated.level d'.Annotated.level;
      Alcotest.(check (array int)) "parent" d.Annotated.parent d'.Annotated.parent)
    docs;
  (* out-of-range tids are corruption, not crashes *)
  List.iter
    (fun tid ->
      match Treestore.get st tid with
      | exception Si_error.Error (Si_error.Corrupt _) -> ()
      | exception e ->
          Alcotest.failf "tid %d: wrong exception %s" tid (Printexc.to_string e)
      | _ -> Alcotest.failf "tid %d out of range but answered" tid)
    [ -1; Array.length docs; max_int ]

(* ---- corruption: flips and truncations ----------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Every byte of both mapped files is covered by some CRC (header, one per
   body region, footer), so a single-byte flip anywhere must be caught: at
   open for header/footer damage, on first touch for body damage, and at
   the latest by a forced full verification.  A query racing ahead of the
   lazy check must still never return a wrong answer. *)
let check_flip ~clean p4 file pos =
  let pristine = read_file file in
  let mutated = Bytes.of_string pristine in
  Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x40));
  write_file file (Bytes.to_string mutated);
  Fun.protect ~finally:(fun () -> write_file file pristine) @@ fun () ->
  let ctx = Printf.sprintf "%s flipped at %d" (Filename.basename file) pos in
  match Si.open_ p4 with
  | Error (Si_error.Corrupt _) -> ()
  | Error e -> Alcotest.failf "%s: wrong open error: %s" ctx (Si_error.to_string e)
  | Ok si ->
      (match Si.query si "S(//NP)(//NP)" with
      | Error (Si_error.Corrupt _) -> ()
      | Error e ->
          Alcotest.failf "%s: wrong query error: %s" ctx (Si_error.to_string e)
      | Ok got ->
          (* the flip was in a region this query never touched *)
          Alcotest.(check (list (pair int int)))
            (ctx ^ ": lazy answer still exact") clean got);
      (* backstop: full verification must always notice *)
      (match Builder.verify_mapped (Si.index si) with
      | Error (Si_error.Corrupt _) -> ()
      | Error e ->
          Alcotest.failf "%s: wrong verify error: %s" ctx (Si_error.to_string e)
      | Ok () -> (
          match Option.iter Treestore.verify (Corpus.store (Si.corpus si)) with
          | () ->
              Alcotest.failf "%s: flip not detected by full verification" ctx
          | exception Si_error.Error (Si_error.Corrupt _) -> ()
          | exception e ->
              Alcotest.failf "%s: wrong exception %s" ctx (Printexc.to_string e)))

let test_corruption_flips () =
  with_dir @@ fun dir ->
  let trees = corpus 80 5 in
  let _, p4 = build_both dir ~scheme:Coding.Interval ~mss:3 ~trees in
  let clean =
    ok_exn "clean" (Si.query (ok_exn "open" (Si.open_ p4)) "S(//NP)(//NP)")
  in
  let rng = Random.State.make [| 2012 |] in
  List.iter
    (fun file ->
      let len = String.length (read_file file) in
      let fixed = [ 0; 5; 7; len / 2; len - 1; len - 5; len - 20 ] in
      let random =
        List.init 12 (fun _ -> Random.State.int rng len)
      in
      List.iter
        (fun pos ->
          if pos >= 0 && pos < len then check_flip ~clean p4 file pos)
        (fixed @ random))
    [ p4 ^ ".idx"; p4 ^ ".trees" ]

let test_corruption_truncations () =
  with_dir @@ fun dir ->
  let trees = corpus 60 6 in
  let _, p4 = build_both dir ~scheme:Coding.Interval ~mss:2 ~trees in
  List.iter
    (fun file ->
      let pristine = read_file file in
      let len = String.length pristine in
      List.iter
        (fun keep ->
          write_file file (String.sub pristine 0 keep);
          Fun.protect ~finally:(fun () -> write_file file pristine)
          @@ fun () ->
          match Si.open_ p4 with
          | Error (Si_error.Corrupt _) -> ()
          | Error e ->
              Alcotest.failf "%s cut to %d: wrong error: %s"
                (Filename.basename file) keep (Si_error.to_string e)
          | Ok _ ->
              Alcotest.failf "%s cut to %d bytes still opened"
                (Filename.basename file) keep)
        [ 0; 1; 7; 40; len / 2; len - 1 ])
    [ p4 ^ ".idx"; p4 ^ ".trees" ]

(* a missing .trees next to an intact SIDX4 .idx is an Io, not a crash *)
let test_missing_store () =
  with_dir @@ fun dir ->
  let trees = corpus 40 8 in
  let _, p4 = build_both dir ~scheme:Coding.Interval ~mss:2 ~trees in
  let store = p4 ^ ".trees" in
  let pristine = read_file store in
  Sys.remove store;
  Fun.protect ~finally:(fun () -> write_file store pristine) @@ fun () ->
  match Si.open_ p4 with
  | Error (Si_error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
  | Ok _ -> Alcotest.fail "opened without its corpus store"

(* ---- the server's stats schema over a mapped handle ---------------------- *)

let test_index_json_backend () =
  with_dir @@ fun dir ->
  let trees = corpus 50 4 in
  let p3, p4 = build_both dir ~scheme:Coding.Interval ~mss:2 ~trees in
  let json p = Si_serve.Jsonx.to_string (Si_serve.Metrics.index_json
                 (ok_exn "open" (Si.open_ p))) in
  let j3 = json p3 and j4 = json p4 in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sidx3 heap" true (contains j3 "\"backend\":\"heap\"");
  Alcotest.(check bool) "sidx3 no mapping" true
    (contains j3 "\"mapped_bytes\":0");
  Alcotest.(check bool) "sidx4 mapped" true
    (contains j4 "\"backend\":\"mapped\"");
  Alcotest.(check bool) "sidx4 mapping nonzero" false
    (contains j4 "\"mapped_bytes\":0")

let suite =
  [
    Alcotest.test_case "sidx4 = sidx3 = oracle (fixed corpora)" `Quick
      test_differential_fixed;
    qcheck prop_differential;
    Alcotest.test_case "limits over the mapped backend" `Quick
      test_limits_differential;
    Alcotest.test_case "region CRCs verify lazily" `Quick test_lazy_verification;
    Alcotest.test_case "corpus store roundtrip" `Quick test_treestore_roundtrip;
    Alcotest.test_case "single-byte flips -> Corrupt, never wrong" `Slow
      test_corruption_flips;
    Alcotest.test_case "truncations -> Corrupt" `Quick
      test_corruption_truncations;
    Alcotest.test_case "missing .trees -> Io" `Quick test_missing_store;
    Alcotest.test_case "STATS index json reports the backend" `Quick
      test_index_json_backend;
  ]
