open Si_treebank

let qcheck = QCheck_alcotest.to_alcotest

(* random label trees over a tiny alphabet *)
let tree_gen =
  let open QCheck.Gen in
  let label = oneofl [ "A"; "B"; "C"; "D" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then map Tree.leaf label
      else
        map2
          (fun l kids -> Tree.make l kids)
          label
          (list_size (int_bound 3) (self (n / 2))))

let arb_tree = QCheck.make ~print:Tree.to_string tree_gen

let test_label_roundtrip () =
  let a = Label.intern "NP" in
  Alcotest.(check string) "name" "NP" (Label.name a);
  Alcotest.(check int) "stable" a (Label.intern "NP");
  Alcotest.(check bool) "find" true (Label.find "NP" = Some a)

let test_label_dense () =
  let x = Label.intern "test_label_dense_x" in
  let y = Label.intern "test_label_dense_y" in
  Alcotest.(check int) "dense" (x + 1) y;
  Alcotest.(check bool) "count" true (Label.count () > y)

let test_penn_parse () =
  let t = Penn.parse_one_exn "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))" in
  Alcotest.(check string) "root" "S" (Tree.label_name t);
  Alcotest.(check int) "size" 9 (Tree.size t);
  Alcotest.(check int) "depth" 4 (Tree.depth t)

let test_penn_roundtrip () =
  let s = "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))" in
  let t = Penn.parse_one_exn s in
  Alcotest.(check string) "print" s (Tree.to_string t);
  Alcotest.(check bool) "reparse" true (Tree.equal t (Penn.parse_one_exn (Tree.to_string t)))

let test_penn_errors () =
  let bad s =
    match Penn.parse s with Ok [] | Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "missing rparen" true (bad "(S (NP");
  Alcotest.(check bool) "stray rparen" true (bad ")");
  Alcotest.(check bool) "no label" true (bad "(()");
  Alcotest.(check bool) "empty is zero trees" true (Penn.parse "" = Ok [])

let test_penn_file () =
  let trees = [ Penn.parse_one_exn "(A (B b) (C c))"; Tree.leaf "lone"; Penn.parse_one_exn "(X (Y y))" ] in
  let path = Filename.temp_file "si_test" ".penn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Penn.write_file path trees;
      let back = Penn.read_file path in
      Alcotest.(check bool) "roundtrip" true (List.equal Tree.equal trees back))

let prop_penn_roundtrip =
  QCheck.Test.make ~name:"penn roundtrip (random trees)" ~count:200 arb_tree (fun t ->
      Tree.equal t (Penn.parse_one_exn (Tree.to_string t)))

let test_annotated_intervals () =
  let t = Penn.parse_one_exn "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))" in
  let d = Annotated.of_tree t in
  Alcotest.(check int) "size" 9 (Annotated.size d);
  (* pre-order: 0=S 1=NP 2=DT 3=the 4=NN 5=dog 6=VP 7=VBZ 8=barks *)
  Alcotest.(check int) "root level" 0 d.Annotated.level.(0);
  Alcotest.(check int) "leaf level" 3 d.Annotated.level.(3);
  Alcotest.(check int) "root post" 8 d.Annotated.post.(0);
  Alcotest.(check bool) "S anc dog" true (Annotated.ancestor d 0 5);
  Alcotest.(check bool) "NP not anc VP" false (Annotated.ancestor d 1 6);
  Alcotest.(check bool) "not self-anc" false (Annotated.ancestor d 0 0);
  Alcotest.(check bool) "S child NP" true (Annotated.child d 0 1);
  Alcotest.(check bool) "S not child DT" false (Annotated.child d 0 2);
  Alcotest.(check (list int)) "descendants NP" [ 2; 3; 4; 5 ] (Annotated.descendants d 1)

let prop_annotated =
  QCheck.Test.make ~name:"annotated invariants (random trees)" ~count:200 arb_tree
    (fun t ->
      let d = Annotated.of_tree t in
      let n = Annotated.size d in
      (* subtree_of root rebuilds the tree *)
      Tree.equal t (Annotated.subtree_of d 0)
      && n = Tree.size t
      (* parent/level/interval consistency at every node *)
      && Array.for_all Fun.id
           (Array.init n (fun v ->
                let p = d.Annotated.parent.(v) in
                if p = -1 then v = 0
                else
                  Annotated.child d p v && Annotated.ancestor d p v
                  && d.Annotated.level.(v) = d.Annotated.level.(p) + 1)))

let suite =
  [
    Alcotest.test_case "label roundtrip" `Quick test_label_roundtrip;
    Alcotest.test_case "label ids dense" `Quick test_label_dense;
    Alcotest.test_case "penn parse" `Quick test_penn_parse;
    Alcotest.test_case "penn roundtrip" `Quick test_penn_roundtrip;
    Alcotest.test_case "penn errors" `Quick test_penn_errors;
    Alcotest.test_case "penn file io" `Quick test_penn_file;
    qcheck prop_penn_roundtrip;
    Alcotest.test_case "annotated intervals" `Quick test_annotated_intervals;
    qcheck prop_annotated;
  ]
