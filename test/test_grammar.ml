open Si_grammar

let test_prng () =
  let rng = Prng.create 1 in
  let a = Prng.bits64 rng and b = Prng.bits64 rng in
  Alcotest.(check bool) "advances" true (a <> b);
  let rng1 = Prng.create 42 and rng2 = Prng.create 42 in
  Alcotest.(check bool) "deterministic" true
    (List.init 100 (fun _ -> Prng.bits64 rng1)
    = List.init 100 (fun _ -> Prng.bits64 rng2));
  let rng = Prng.create 7 in
  Alcotest.(check bool) "int bounds" true
    (List.for_all (fun _ -> let x = Prng.int rng 10 in x >= 0 && x < 10)
       (List.init 1000 Fun.id));
  Alcotest.(check bool) "float bounds" true
    (List.for_all (fun _ -> let x = Prng.float rng in x >= 0.0 && x < 1.0)
       (List.init 1000 Fun.id))

let test_zipf () =
  let z = Pcfg.Zipf.make ~n:50 ~s:1.1 in
  let rng = Prng.create 3 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let k = Pcfg.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "all in range" true (Array.for_all (fun c -> c >= 0) counts);
  Alcotest.(check bool) "rank0 most frequent" true
    (Array.for_all (fun c -> counts.(0) >= c) counts);
  Alcotest.(check bool) "rank0 beats rank10 by a lot" true
    (counts.(0) > 3 * counts.(10))

let test_determinism () =
  let a = Generator.corpus ~seed:99 ~n:50 () in
  let b = Generator.corpus ~seed:99 ~n:50 () in
  let c = Generator.corpus ~seed:100 ~n:50 () in
  Alcotest.(check bool) "same seed same corpus" true
    (List.equal Si_treebank.Tree.equal a b);
  Alcotest.(check bool) "different seed differs" false
    (List.equal Si_treebank.Tree.equal a c)

(* the treebank statistics the paper's results rely on (DESIGN.md §2) *)
let test_branching_stats () =
  let trees = Generator.corpus ~seed:2012 ~n:2000 () in
  let (`Avg avg), (`Max mx), (`Nodes nodes) = Generator.branching_stats trees in
  Alcotest.(check bool) "avg internal branching ~1.5" true (avg > 1.2 && avg < 1.9);
  Alcotest.(check bool) "no high-branching blowup" true (mx <= 10);
  let per_tree = float_of_int nodes /. 2000.0 in
  Alcotest.(check bool) "parse trees of plausible size" true
    (per_tree > 10.0 && per_tree < 60.0)

let test_finite_productions () =
  (* unique subtree growth must be sublinear: a 10x bigger corpus has far
     fewer than 10x the unique keys (Fig 2's premise) *)
  let keys n =
    let docs =
      List.map Si_treebank.Annotated.of_tree (Generator.corpus ~seed:5 ~n ())
    in
    Si_subtree.Extract.unique_keys docs ~mss:2
  in
  let k100 = keys 100 and k1000 = keys 1000 in
  Alcotest.(check bool) "keys grow" true (k1000 > k100);
  Alcotest.(check bool) "sublinear growth" true (k1000 < 6 * k100)

let suite =
  [
    Alcotest.test_case "prng" `Quick test_prng;
    Alcotest.test_case "zipf" `Quick test_zipf;
    Alcotest.test_case "corpus determinism" `Quick test_determinism;
    Alcotest.test_case "branching statistics" `Quick test_branching_stats;
    Alcotest.test_case "sublinear key growth" `Quick test_finite_productions;
  ]
