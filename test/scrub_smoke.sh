#!/usr/bin/env bash
# Self-healing integrity acceptance harness (ISSUE 10, DESIGN.md §15).
#
# Four gates:
#   1. live server over a bitflipped SIDX4 postings region — every query
#      (including the one that discovers the damage) answers OK with the
#      exact count, marked degraded=integrity; HEALTH flips to DEGRADED;
#      REPAIR rebuilds from the corpus store and rides the generation
#      swap with zero dropped in-flight queries, after which answers and
#      HEALTH are clean;
#   2. the SCRUB wire verb localizes the damage and SCRUB repair=1 heals
#      in one request;
#   3. the background scrubber (--scrub-interval) with --auto-repair
#      converges a corrupted server to a clean generation with no client
#      action at all;
#   4. kill at EVERY scrub/repair failpoint (exit 42) — the prefix must
#      stay loadable and oracle-correct (served via the fallback while
#      damaged), and a clean retry must converge to a CRC-clean index.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

say() { echo "scrub_smoke: $*"; }
fail() { echo "scrub_smoke FAIL: $*" >&2; exit 1; }

# ---- fixtures ------------------------------------------------------------
"$TOOL" gen -n 200 --seed 93 -o "$DIR/corpus.penn" 2>/dev/null
PFX="$DIR/ix"
"$TOOL" build --corpus "$DIR/corpus.penn" --prefix "$PFX" \
  --scheme root-split --mss 3 --format sidx4 >/dev/null

Q='S(NP(DT)(NN))(VP)'
CLEAN=$("$TOOL" query --prefix "$PFX" "$Q" | head -1 | awk '{print $1}')
[ -n "$CLEAN" ] || fail "no baseline count"

for ext in .idx .dat .labels .meta .trees; do
  cp "$PFX$ext" "$DIR/pristine$ext"
done
reset_state() {
  for ext in .idx .dat .labels .meta .trees; do
    cp "$DIR/pristine$ext" "$PFX$ext"
  done
  rm -f "$PFX.wal"
}

# flip one byte in the middle of the .idx — inside a lazily-verified body
# region (the header/footer CRCs still pass, so the O(1) open succeeds
# and the damage is discovered live, exactly the §15 window)
corrupt_idx() {
  size=$(stat -c %s "$PFX.idx")
  printf '\xa5' | dd of="$PFX.idx" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
}

start_server() { # start_server [extra serve flags...]
  "$TOOL" serve --prefix "$PFX" --listen 0 --workers 2 "$@" \
    >"$DIR/server.log" 2>&1 &
  SRV_PID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$DIR/server.log" | head -1)
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died on startup: $(cat "$DIR/server.log")"
    sleep 0.05
  done
  [ -n "$PORT" ] || fail "server never reported its port: $(cat "$DIR/server.log")"
}

stop_server() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  SRV_PID=""
}

req() { # one request per connection; prints every response line
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT"
  printf '%s\nQUIT\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

# ---- 1. quarantine fallback on a live server -----------------------------
say "live server over a bitflipped postings region: exact degraded answers"

reset_state
corrupt_idx
start_server

# the DISCOVERING query itself is answered — exact, marked degraded
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CLEAN truncated=0 gen=1" <<<"$out" || fail "first query not exact: $out"
grep -q "degraded=integrity" <<<"$out" || fail "first query not marked degraded: $out"

# so is every later one
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CLEAN .*degraded=integrity" <<<"$out" || fail "second query: $out"

out=$(req "HEALTH")
grep -q "^DEGRADED .*integrity=degraded quarantined=1" <<<"$out" \
  || fail "HEALTH not degraded: $out"

out=$(req "STATS")
grep -qF '"integrity":{"state":"degraded","quarantined":1' <<<"$out" \
  || fail "STATS integrity section: $out"

# zero dropped queries through the repair swap: clients hammer while the
# generation flips under them
QPIDS=()
for i in $(seq 30); do
  req "QUERY $Q count_only=1" >>"$DIR/during.log" 2>&1 &
  QPIDS+=($!)
done
out=$(req "REPAIR")
grep -q "OK repaired=200 gen=2" <<<"$out" || fail "REPAIR ack: $out"
wait "${QPIDS[@]}"
[ "$(grep -c "^OK n=$CLEAN " "$DIR/during.log")" = 30 ] \
  || fail "queries dropped during repair: $(sort "$DIR/during.log" | uniq -c)"

# the repaired generation answers clean — no degraded marker, no fallback
out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CLEAN truncated=0 gen=2" <<<"$out" || fail "post-repair query: $out"
grep -q "degraded=integrity" <<<"$out" && fail "post-repair still degraded: $out"

out=$(req "HEALTH")
grep -q "^OK gen=2 .*integrity=ok quarantined=0" <<<"$out" \
  || fail "HEALTH not clean after repair: $out"

stop_server

# the repaired prefix is durable and CRC-clean on disk
"$TOOL" scrub --prefix "$PFX" | grep -q "clean=1" || fail "repaired prefix not clean"
"$TOOL" query --prefix "$PFX" "$Q" --check-oracle >/dev/null || fail "oracle after repair"

# ---- 2. the SCRUB verb ---------------------------------------------------
say "SCRUB verb: localizes damage, repair=1 heals in one request"

reset_state
corrupt_idx
start_server

# a healthy-looking server (nothing touched the damage yet); the scrub
# walks the regions and quarantines
out=$(req "SCRUB")
grep -q "^OK state=degraded quarantined=1 .*clean=0" <<<"$out" \
  || fail "SCRUB did not find the damage: $out"

out=$(req "SCRUB repair=1")
grep -q "^OK state=repaired quarantined=0 .*repaired=200 gen=2" <<<"$out" \
  || fail "SCRUB repair=1: $out"

out=$(req "SCRUB")
grep -q "^OK state=ok quarantined=0 .*clean=1" <<<"$out" \
  || fail "post-repair SCRUB not clean: $out"

out=$(req "HEALTH")
grep -q "^OK gen=2 .*integrity=ok quarantined=0" <<<"$out" || fail "HEALTH: $out"

stop_server

# ---- 3. background scrubber + auto-repair --------------------------------
say "background scrubber self-heals with no client action"

reset_state
corrupt_idx
start_server --scrub-interval 0.2 --auto-repair 1

healed=""
for _ in $(seq 100); do
  out=$(req "HEALTH")
  if grep -q "^OK gen=2 .*integrity=ok quarantined=0" <<<"$out"; then
    healed=yes
    break
  fi
  sleep 0.1
done
[ -n "$healed" ] || fail "scrubber never auto-repaired: $(req HEALTH)"

out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$CLEAN truncated=0 gen=2" <<<"$out" || fail "post-auto-repair: $out"

out=$(req "STATS")
grep -qF '"integrity":{"state":"ok","quarantined":0' <<<"$out" \
  || fail "STATS after auto-repair: $out"
grep -q '"scrub_passes":[1-9]' <<<"$out" || fail "no scrub passes counted: $out"
grep -q '"repairs":1' <<<"$out" || fail "repair not counted: $out"

stop_server

# ---- 4. kill at every scrub/repair failpoint -----------------------------
say "kill at every scrub/repair failpoint"

mapfile -t POINTS < <(
  "$TOOL" failpoints | awk '/^  (scrub\.|si\.repair\.)/ { print $1 }'
)
if [ "${#POINTS[@]}" -lt 5 ]; then
  fail "expected >= 5 scrub/repair failpoints, got: ${POINTS[*]}"
fi

for point in "${POINTS[@]}"; do
  reset_state
  corrupt_idx
  set +e
  SI_FAILPOINTS="$point=exit:42" \
    "$TOOL" scrub --prefix "$PFX" --repair >/dev/null 2>&1
  code=$?
  set -e
  [ "$code" = 42 ] || fail "$point: never fired (exit $code)"

  # recovery gate: whatever window the kill hit, the prefix stays
  # loadable and answers the oracle — via the fallback while the damage
  # is still there, natively once the publish landed
  out=$("$TOOL" query --prefix "$PFX" "$Q" --check-oracle) \
    || fail "$point: prefix does not serve after crash"
  grep -q 'oracle: OK' <<<"$out" || fail "$point: oracle mismatch: $out"
  [ "$(head -1 <<<"$out" | awk '{print $1}')" = "$CLEAN" ] \
    || fail "$point: wrong count after crash: $out"

  # the clean retry converges to a CRC-clean index
  "$TOOL" scrub --prefix "$PFX" --repair >/dev/null
  "$TOOL" scrub --prefix "$PFX" | grep -q "clean=1" \
    || fail "$point: retry did not converge"
  "$TOOL" query --prefix "$PFX" "$Q" --check-oracle >/dev/null \
    || fail "$point: oracle after retry"
  say "  $point: recovered"
done

say "PASS: quarantine fallback, SCRUB/REPAIR verbs, auto-heal, ${#POINTS[@]} crash points"
