(* WAL-backed incremental inserts (ISSUE 8): the prefix.wal record format
   (CRC framing, torn-tail tolerance, corruption detection), idempotent
   replay into the delta index, checkpoint merge equivalence across every
   crash window, and the differential pin: a corpus of N trees plus K
   inserted through the WAL answers every query identically to a full
   rebuild over N+K — all three codings, heap and mapped containers. *)

open Si_treebank
open Si_core

let qcheck = QCheck_alcotest.to_alcotest

let ok_exn what = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let corpus n seed = Si_grammar.Generator.corpus ~seed ~n ()

let temp_prefix tag =
  let base = Filename.temp_file ("si_wal_" ^ tag) "" in
  Sys.remove base;
  base

let rm_prefix p =
  List.iter
    (fun ext -> try Sys.remove (p ^ ext) with Sys_error _ -> ())
    [ ".idx"; ".dat"; ".labels"; ".meta"; ".trees"; ".wal" ]

let with_prefix tag f =
  let p = temp_prefix tag in
  Fun.protect ~finally:(fun () -> rm_prefix p) (fun () -> f p)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let append_bytes path s =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  output_string oc s;
  close_out oc

let query_strings =
  [
    "S(NP)(VP)";
    "NP(DT)(NN)";
    "S(NP(DT)(NN))(VP)";
    "VP(VBZ)(NP)";
    "S(//NP(NN))";
    "S(//NP)(//VP(VBD))";
  ]

let check_queries what a b =
  List.iter
    (fun q ->
      let ra = ok_exn (what ^ ": " ^ q) (Si.query a q) in
      let rb = ok_exn (what ^ ": " ^ q) (Si.query b q) in
      Alcotest.(check (list (pair int int))) (what ^ ": " ^ q) rb ra)
    query_strings

let check_oracle what si =
  List.iter
    (fun q ->
      let got = ok_exn (what ^ ": " ^ q) (Si.query si q) in
      let want = Si.oracle si (Si_query.Parser.parse_exn q) in
      Alcotest.(check (list (pair int int))) (what ^ ": oracle " ^ q) want got)
    query_strings

(* ---- the log itself ----------------------------------------------------- *)

let test_wal_roundtrip () =
  with_prefix "rt" (fun p ->
      let trees = corpus 5 3 in
      let w = Wal.open_append ~scheme:Coding.Root_split ~mss:3 p in
      List.iteri (fun i t -> Wal.append w ~tid:(10 + i) t) trees;
      Alcotest.(check int) "records" 5 (Wal.records w);
      Alcotest.(check bool) "bytes past header" true (Wal.bytes w > 8);
      Wal.close w;
      Wal.close w;
      (* idempotent *)
      let r = Wal.replay ~scheme:Coding.Root_split ~mss:3 p in
      Alcotest.(check (list int)) "tids in log order"
        [ 10; 11; 12; 13; 14 ]
        (List.map fst r);
      Alcotest.(check (list string)) "trees byte-identical"
        (List.map Tree.to_string trees)
        (List.map (fun (_, t) -> Tree.to_string t) r);
      (* replay is a pure read: a second replay sees the same records and
         the file bytes are untouched *)
      let bytes0 = read_file (Wal.path p) in
      let r2 = Wal.replay ~scheme:Coding.Root_split ~mss:3 p in
      Alcotest.(check bool) "second replay identical" true (r = r2);
      Alcotest.(check string) "file bytes unchanged" bytes0
        (read_file (Wal.path p));
      (* reopen positions after the last intact record *)
      let w = Wal.open_append ~scheme:Coding.Root_split ~mss:3 p in
      Alcotest.(check int) "reopen counts records" 5 (Wal.records w);
      Wal.append w ~tid:15 (List.hd trees);
      Wal.close w;
      Alcotest.(check int) "append after reopen" 6
        (List.length (Wal.replay ~scheme:Coding.Root_split ~mss:3 p));
      (* absent file is an empty log *)
      Alcotest.(check (list (pair int reject))) "absent file" []
        (Wal.replay ~scheme:Coding.Root_split ~mss:3 (p ^ "-none")))

let test_wal_torn_tail () =
  with_prefix "torn" (fun p ->
      let trees = corpus 3 5 in
      let w = Wal.open_append ~scheme:Coding.Interval ~mss:2 p in
      List.iteri (fun i t -> Wal.append w ~tid:i t) trees;
      Wal.close w;
      let intact = (Unix.stat (Wal.path p)).Unix.st_size in
      (* a crash mid-append leaves a partial frame: tolerated, not fatal *)
      append_bytes (Wal.path p) "\x40\x00\x00\x00\xde\xad";
      let r = Wal.replay ~scheme:Coding.Interval ~mss:2 p in
      Alcotest.(check int) "replay stops at the torn frame" 3 (List.length r);
      let w = Wal.open_append ~scheme:Coding.Interval ~mss:2 p in
      Alcotest.(check int) "open_append truncates the torn tail" intact
        (Wal.bytes w);
      Alcotest.(check int) "records preserved" 3 (Wal.records w);
      Wal.append w ~tid:3 (List.hd trees);
      Wal.close w;
      Alcotest.(check int) "appendable after truncation" 4
        (List.length (Wal.replay ~scheme:Coding.Interval ~mss:2 p));
      (* truncate drops everything but stays a valid (empty) log *)
      let w = Wal.open_append ~scheme:Coding.Interval ~mss:2 p in
      Wal.truncate w;
      Alcotest.(check int) "truncate -> header only" 8 (Wal.bytes w);
      Wal.close w;
      Alcotest.(check int) "empty after truncate" 0
        (List.length (Wal.replay ~scheme:Coding.Interval ~mss:2 p));
      (* a file shorter than the header is a crash artifact, not an error *)
      let oc = open_out_bin (Wal.path p) in
      output_string oc "SIW";
      close_out oc;
      Alcotest.(check int) "short file replays empty" 0
        (List.length (Wal.replay ~scheme:Coding.Interval ~mss:2 p));
      let w = Wal.open_append ~scheme:Coding.Interval ~mss:2 p in
      Alcotest.(check int) "short file rewritten as empty log" 8 (Wal.bytes w);
      Wal.close w)

let test_wal_corruption () =
  with_prefix "corr" (fun p ->
      (* CRC-valid frame whose payload is not a parseable record: that is
         corruption, not a crash artifact *)
      let w = Wal.open_append ~scheme:Coding.Filter ~mss:2 p in
      Wal.close w;
      let payload =
        let buf = Buffer.create 16 in
        Si_subtree.Varint.write buf 0;
        Buffer.add_string buf "this is not a penn tree";
        Buffer.contents buf
      in
      let frame =
        let buf = Buffer.create 32 in
        let u32 v =
          for i = 0 to 3 do
            Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
          done
        in
        u32 (String.length payload);
        u32 (Crc32.string payload);
        Buffer.add_string buf payload;
        Buffer.contents buf
      in
      append_bytes (Wal.path p) frame;
      (match Wal.replay ~scheme:Coding.Filter ~mss:2 p with
      | exception Si_error.Error (Si_error.Corrupt _) -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "unparseable CRC-valid frame must be Corrupt");
      (* header scheme/mss must match the index that replays it *)
      (match Wal.replay ~scheme:Coding.Interval ~mss:2 p with
      | exception Si_error.Error (Si_error.Schema_mismatch _) -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "scheme mismatch must be Schema_mismatch");
      (match Wal.replay ~scheme:Coding.Filter ~mss:3 p with
      | exception Si_error.Error (Si_error.Schema_mismatch _) -> ()
      | _ -> Alcotest.fail "mss mismatch must be Schema_mismatch");
      (* a garbled magic is corruption *)
      let oc = open_out_bin (Wal.path p) in
      output_string oc "NOTWAL\x00\x00extra bytes";
      close_out oc;
      match Wal.replay ~scheme:Coding.Filter ~mss:2 p with
      | exception Si_error.Error (Si_error.Corrupt _) -> ()
      | _ -> Alcotest.fail "bad magic must be Corrupt")

(* ---- insert / replay through the facade -------------------------------- *)

let test_insert_visible_and_replayed () =
  with_prefix "ins" (fun p ->
      let base = corpus 40 17 in
      let extra = corpus 6 99 in
      ignore
        (Si.build ~scheme:Coding.Root_split ~mss:3 ~trees:base ~prefix:p ());
      let si = ok_exn "open" (Si.open_ p) in
      Alcotest.(check int) "nothing pending before insert" 0 (Si.pending si);
      Alcotest.(check int) "insert returns the new total" 46
        (ok_exn "insert" (Si.insert si extra));
      Alcotest.(check int) "pending" 6 (Si.pending si);
      Alcotest.(check bool) "wal grew" true (Si.wal_bytes si > 8);
      (* the delta is live on the inserting handle, and correct *)
      check_oracle "inserting handle" si;
      (* inserted sentences are addressable *)
      Alcotest.(check string) "sentence spans the delta"
        (Tree.to_string (List.hd extra))
        (Tree.to_string (Si.sentence si 40));
      Si.close_wal si;
      (* a fresh open replays the WAL into an identical delta *)
      let si2 = ok_exn "reopen" (Si.open_ p) in
      Alcotest.(check int) "replayed pending" 6 (Si.pending si2);
      check_queries "reopen = inserting handle" si2 si;
      check_oracle "reopened handle" si2;
      (* replay twice: same answers, and the WAL bytes are untouched —
         byte-identical state from byte-identical input *)
      let bytes0 = read_file (Wal.path p) in
      let si3 = ok_exn "reopen twice" (Si.open_ p) in
      Alcotest.(check string) "wal bytes unchanged by replay" bytes0
        (read_file (Wal.path p));
      check_queries "second replay = first" si3 si2;
      (* inserts on a memory-only handle are refused, not misfiled *)
      let mem = Si.build ~scheme:Coding.Root_split ~mss:3 ~trees:base () in
      match Si.insert mem extra with
      | exception Invalid_argument _ -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "insert without a prefix must fail")

let test_checkpoint_merges_and_truncates () =
  with_prefix "ckpt" (fun p ->
      let base = corpus 40 21 in
      let extra = corpus 5 77 in
      ignore
        (Si.build ~scheme:Coding.Interval ~mss:3 ~trees:base ~prefix:p ());
      let si = ok_exn "open" (Si.open_ p) in
      ignore (ok_exn "insert" (Si.insert si extra));
      let before = ok_exn "pre-checkpoint open" (Si.open_ p) in
      Alcotest.(check int) "checkpoint folds the delta" 5
        (ok_exn "checkpoint" (Si.checkpoint si));
      Si.close_wal si;
      let after = ok_exn "post-checkpoint open" (Si.open_ p) in
      Alcotest.(check int) "merged into main" 45
        (Si.stats after).Builder.trees;
      Alcotest.(check int) "nothing pending" 0 (Si.pending after);
      Alcotest.(check int) "wal truncated to header" 8
        (Unix.stat (Wal.path p)).Unix.st_size;
      (* the fold changed representation, never answers *)
      check_queries "checkpointed = delta-serving" after before;
      check_oracle "checkpointed" after;
      (* an empty checkpoint is a no-op *)
      Alcotest.(check int) "empty checkpoint" 0
        (ok_exn "empty checkpoint" (Si.checkpoint after));
      Si.close_wal after)

let test_checkpoint_crash_windows () =
  with_prefix "crash" (fun p ->
      let base = corpus 30 31 in
      let extra = corpus 4 55 in
      ignore
        (Si.build ~scheme:Coding.Root_split ~mss:3 ~trees:base ~prefix:p ());
      Fun.protect ~finally:Failpoint.clear (fun () ->
          (* window 1: crash before the merge — old set + replayable WAL *)
          let si = ok_exn "open" (Si.open_ p) in
          ignore (ok_exn "insert" (Si.insert si extra));
          Si.close_wal si;
          Failpoint.arm_exn "si.checkpoint.merge=fail@1";
          let si = ok_exn "reopen" (Si.open_ p) in
          (match Si.checkpoint si with
          | Error (Si_error.Internal _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "armed merge must abort");
          Failpoint.clear ();
          let r = ok_exn "reopen after aborted merge" (Si.open_ p) in
          Alcotest.(check int) "main untouched" 30 (Si.stats r).Builder.trees;
          Alcotest.(check int) "delta replayed" 4 (Si.pending r);
          check_oracle "aborted merge still serves" r;
          (* window 2: publish succeeded, crash before the WAL truncate —
             replay must skip every record the new main already covers *)
          Failpoint.arm_exn "wal.truncate=fail@1";
          (match Si.checkpoint r with
          | Error (Si_error.Internal _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "armed truncate must abort");
          Failpoint.clear ();
          Si.close_wal r;
          Alcotest.(check bool) "wal survived the aborted truncate" true
            ((Unix.stat (Wal.path p)).Unix.st_size > 8);
          let r2 = ok_exn "reopen after aborted truncate" (Si.open_ p) in
          Alcotest.(check int) "new main published" 34
            (Si.stats r2).Builder.trees;
          Alcotest.(check int) "stale records skipped, not re-applied" 0
            (Si.pending r2);
          check_oracle "post-publish pre-truncate" r2;
          (* a tid gap is corruption, not a skippable artifact *)
          let w = Wal.open_append ~scheme:Coding.Root_split ~mss:3 p in
          Wal.truncate w;
          Wal.append w ~tid:36 (List.hd extra);
          Wal.close w;
          match Si.open_ p with
          | Error (Si_error.Corrupt _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "tid gap must refuse to open"))

let test_insert_durable_before_ack () =
  (* the WAL write path fires its failpoints in order: a crash before the
     frame hits the file loses the tree (never acknowledged), a crash
     after the write keeps it — either way the index reopens cleanly *)
  with_prefix "dur" (fun p ->
      let base = corpus 20 41 in
      let extra = corpus 2 43 in
      ignore
        (Si.build ~scheme:Coding.Root_split ~mss:3 ~trees:base ~prefix:p ());
      Fun.protect ~finally:Failpoint.clear (fun () ->
          Failpoint.arm_exn "wal.append.write=fail@1";
          let si = ok_exn "open" (Si.open_ p) in
          (match Si.insert si extra with
          | Error (Si_error.Internal _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "armed append must abort");
          Si.close_wal si;
          Failpoint.clear ();
          let r = ok_exn "reopen" (Si.open_ p) in
          Alcotest.(check int) "unacknowledged insert lost whole" 0
            (Si.pending r);
          check_oracle "clean after aborted append" r;
          (* after the write, before the fsync: the record is in the file
             (the kernel may or may not have persisted it — both outcomes
             are legal, and this file did receive the write) *)
          Failpoint.arm_exn "wal.append.fsync=fail@1";
          let si = ok_exn "open 2" (Si.open_ p) in
          (match Si.insert si [ List.hd extra ] with
          | Error (Si_error.Internal _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
          | Ok _ -> Alcotest.fail "armed fsync must abort");
          Si.close_wal si;
          Failpoint.clear ();
          let r = ok_exn "reopen 2" (Si.open_ p) in
          Alcotest.(check int) "written record replays" 1 (Si.pending r);
          check_oracle "consistent after aborted fsync" r))

(* ---- the differential pin ----------------------------------------------- *)

let containers =
  [
    (Coding.Filter, `Sidx3);
    (Coding.Interval, `Sidx3);
    (Coding.Root_split, `Sidx3);
    (Coding.Filter, `Sidx4);
    (Coding.Interval, `Sidx4);
    (Coding.Root_split, `Sidx4);
  ]

let prop_incremental_equals_rebuild =
  QCheck.Test.make ~name:"insert-then-query = rebuild-then-query" ~count:5
    QCheck.(triple (int_range 10 40) (int_range 1 8) small_nat)
    (fun (n, k, seed) ->
      List.iter
        (fun (scheme, format) ->
          let tag =
            Printf.sprintf "%s-%s"
              (Coding.scheme_to_string scheme)
              (match format with `Sidx3 -> "heap" | `Sidx4 -> "mapped")
          in
          with_prefix "diff" (fun p ->
              let base = corpus n (seed + 1) in
              let extra = corpus k (seed + 101) in
              ignore
                (Si.build ~scheme ~mss:3 ~format ~trees:base ~prefix:p ());
              let si = ok_exn "open" (Si.open_ p) in
              if ok_exn "insert" (Si.insert si extra) <> n + k then
                QCheck.Test.fail_reportf "%s: insert total wrong" tag;
              Si.close_wal si;
              let reopened = ok_exn "reopen" (Si.open_ p) in
              let full =
                Si.build ~scheme ~mss:3 ~trees:(base @ extra) ()
              in
              List.iter
                (fun q ->
                  let want = ok_exn "rebuild" (Si.query full q) in
                  let live = ok_exn "live" (Si.query si q) in
                  let repl = ok_exn "replayed" (Si.query reopened q) in
                  if live <> want then
                    QCheck.Test.fail_reportf
                      "%s: %s: live insert diverges from rebuild (%d vs %d)"
                      tag q (List.length live) (List.length want);
                  if repl <> want then
                    QCheck.Test.fail_reportf
                      "%s: %s: WAL replay diverges from rebuild (%d vs %d)"
                      tag q (List.length repl) (List.length want))
                query_strings))
        containers;
      true)

let suite =
  [
    Alcotest.test_case "wal: append/replay roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail tolerated and truncated" `Quick
      test_wal_torn_tail;
    Alcotest.test_case "wal: corruption and schema mismatch refused" `Quick
      test_wal_corruption;
    Alcotest.test_case "insert: live delta, replayed delta, oracle" `Quick
      test_insert_visible_and_replayed;
    Alcotest.test_case "checkpoint: merge + truncate preserves answers" `Quick
      test_checkpoint_merges_and_truncates;
    Alcotest.test_case "checkpoint: every crash window recovers" `Quick
      test_checkpoint_crash_windows;
    Alcotest.test_case "insert: durability windows around the fsync" `Quick
      test_insert_durable_before_ack;
    qcheck prop_incremental_equals_rebuild;
  ]
