open Si_query
open Si_core

let qcheck = QCheck_alcotest.to_alcotest

(* random queries: random label trees with random axes on the edges *)
let query_gen =
  let open QCheck.Gen in
  let label = oneofl [ "S"; "NP"; "VP"; "PP"; "NN"; "DT" ] in
  let axis = map (fun b -> if b then Ast.Descendant else Ast.Child) bool in
  sized @@ fix (fun self n ->
      if n <= 0 then map (fun l -> Ast.make l []) label
      else
        map2
          (fun l kids -> Ast.make l kids)
          label
          (list_size (int_bound 3) (pair axis (self (n / 2)))))

let arb_query = QCheck.make ~print:Ast.to_string query_gen

let prop_cover name cover root_split =
  QCheck.Test.make ~name ~count:300
    (QCheck.pair arb_query (QCheck.int_range 1 5))
    (fun (q, mss) ->
      let iq = Ast.index q in
      match Cover.validate iq ~mss ~root_split (cover iq ~mss) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s: %s" (Ast.to_string q) e)

let prop_optimal = prop_cover "optimal_cover validity" Cover.optimal_cover false
let prop_minrc = prop_cover "min_rc validity (root-split)" Cover.min_rc true

let prop_chunk_bounds =
  QCheck.Test.make ~name:"chunk count bounds" ~count:300
    (QCheck.pair arb_query (QCheck.int_range 1 5))
    (fun (q, mss) ->
      let iq = Ast.index q in
      let n = Ast.count iq in
      let lower = (n + mss - 1) / mss in
      let c1 = Array.length (Cover.optimal_cover iq ~mss).Cover.chunks in
      let c2 = Array.length (Cover.min_rc iq ~mss).Cover.chunks in
      (* any valid cover partitions n nodes into chunks of <= mss *)
      c1 >= lower && c1 <= n && c2 >= lower && c2 <= n)

let test_mss1 () =
  let iq = Ast.index (Parser.parse_exn "S(NP(DT)(NN))(VP)") in
  let c = Cover.optimal_cover iq ~mss:1 in
  Alcotest.(check int) "one chunk per node" 5 (Array.length c.Cover.chunks);
  Alcotest.(check int) "joins" 4 (Cover.joins c);
  let c = Cover.min_rc iq ~mss:1 in
  Alcotest.(check int) "minrc too" 5 (Array.length c.Cover.chunks)

let test_single_chunk () =
  (* a 5-node child-only query fits in one chunk when mss >= 5 *)
  let iq = Ast.index (Parser.parse_exn "S(NP(DT)(NN))(VP)") in
  List.iter
    (fun cover ->
      let c = cover iq ~mss:5 in
      Alcotest.(check int) "single chunk" 1 (Array.length c.Cover.chunks);
      Alcotest.(check int) "no joins" 0 (Cover.joins c))
    [ Cover.optimal_cover; Cover.min_rc ]

let test_descendant_cut () =
  (* the // edge must be a cut even when everything would fit in one chunk *)
  let iq = Ast.index (Parser.parse_exn "S(NP)(//VP)") in
  List.iter
    (fun cover ->
      let c = cover iq ~mss:5 in
      Alcotest.(check int) "two chunks" 2 (Array.length c.Cover.chunks);
      let cuts = Cover.cut_edges iq c in
      Alcotest.(check bool) "cut is the // edge" true
        (match cuts with [ (0, _, Ast.Descendant) ] -> true | _ -> false))
    [ Cover.optimal_cover; Cover.min_rc ]

let test_minrc_root_property () =
  (* S(NP(DT)(NN))(VP) with mss=3: optimalCover can absorb a partial NP
     subtree into the S chunk, minRC cannot *)
  let iq = Ast.index (Parser.parse_exn "S(NP(DT)(NN))(VP)") in
  let oc = Cover.optimal_cover iq ~mss:3 in
  let rc = Cover.min_rc iq ~mss:3 in
  Alcotest.(check (result unit string)) "oc valid" (Ok ())
    (Cover.validate iq ~mss:3 ~root_split:false oc);
  Alcotest.(check (result unit string)) "rc valid for root-split" (Ok ())
    (Cover.validate iq ~mss:3 ~root_split:true rc);
  (* every minRC cut edge's parent is its chunk's root *)
  List.iter
    (fun (p, _, _) ->
      let ci = rc.Cover.chunk_of.(p) in
      Alcotest.(check int) "cut parent is chunk root" rc.Cover.chunks.(ci).Cover.root p)
    (Cover.cut_edges iq rc)

let test_dfs_order () =
  let iq = Ast.index (Parser.parse_exn "S(NP(DT)(NN))(VP(VBZ)(NP(NN)))") in
  List.iter
    (fun cover ->
      List.iter
        (fun mss ->
          let c = cover iq ~mss in
          Alcotest.(check int) "chunk 0 holds the query root" 0
            c.Cover.chunks.(0).Cover.root;
          (* each cut edge's parent lives in an earlier chunk *)
          List.iteri
            (fun i (p, r, _) ->
              Alcotest.(check bool) "parent chunk earlier" true
                (c.Cover.chunk_of.(p) < c.Cover.chunk_of.(r));
              ignore i)
            (Cover.cut_edges iq c))
        [ 1; 2; 3; 4 ])
    [ Cover.optimal_cover; Cover.min_rc ]

let suite =
  [
    qcheck prop_optimal;
    qcheck prop_minrc;
    qcheck prop_chunk_bounds;
    Alcotest.test_case "mss=1 singleton chunks" `Quick test_mss1;
    Alcotest.test_case "single chunk when it fits" `Quick test_single_chunk;
    Alcotest.test_case "descendant edges forced cut" `Quick test_descendant_cut;
    Alcotest.test_case "minRC root property" `Quick test_minrc_root_property;
    Alcotest.test_case "DFS chunk order" `Quick test_dfs_order;
  ]
