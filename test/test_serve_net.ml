(* Network serving layer tests: wire-protocol parsing, admission policy
   (quota / brownout / shedding), the refcounted zero-downtime swap, and
   end-to-end client sessions against an in-process server — including
   concurrent queries racing a live SWAP (zero drops, every answer from
   exactly one generation) and failpoint-aborted swaps. *)

open Si_core
open Si_serve

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Si_error.to_string e)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_infix ~infix s =
  let n = String.length infix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = infix || go (i + 1)) in
  n = 0 || go 0

(* ---- fixtures: two persisted indexes with distinguishable answers ------ *)

let temp_prefix tag =
  let base = Filename.temp_file ("si_net_" ^ tag) "" in
  Sys.remove base;
  base

let rm_prefix p =
  List.iter
    (fun ext -> try Sys.remove (p ^ ext) with Sys_error _ -> ())
    [ ".idx"; ".dat"; ".labels"; ".meta" ]

let build_prefix ~seed ~n tag =
  let prefix = temp_prefix tag in
  let trees = Si_grammar.Generator.corpus ~seed ~n () in
  ignore (Si.build ~scheme:Coding.Root_split ~mss:3 ~trees ~prefix ());
  prefix

(* a query whose match count differs between the two generations — what
   lets a client tell which index answered *)
let distinguishing_query a b =
  let candidates =
    [
      "S(NP(DT)(NN))(VP)";
      "S(NP)(VP(//NP(NN)))";
      "NP(NN)(NN)";
      "VP(VBZ)(NP(DT)(NN))";
      "S(//NP)(//NP)";
    ]
  in
  let count si q = List.length (ok_exn ("count " ^ q) (Si.query si q)) in
  match
    List.find_opt (fun q -> count a q <> count b q) candidates
  with
  | Some q -> (q, count a q, count b q)
  | None -> Alcotest.fail "no candidate query distinguishes the two corpora"

(* ---- a tiny blocking client ------------------------------------------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c = input_line c.ic

(* send a request; `Ok (status line, body lines)` with the terminator
   consumed, or `Err line *)
let roundtrip c line =
  send c line;
  let first = recv c in
  if String.length first >= 2 && String.sub first 0 2 = "OK" then begin
    let rec body acc =
      match recv c with "." -> List.rev acc | l -> body (l :: acc)
    in
    (* QUERY answers carry a body; single-line verbs do not *)
    let has_body =
      String.length line >= 5 && String.uppercase_ascii (String.sub line 0 5) = "QUERY"
    in
    `Ok (first, if has_body then body [] else [])
  end
  else `Err first

let field line key =
  (* "OK n=3 truncated=0 gen=1 us=12.0" -> Some "3" for key "n" *)
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         let k = key ^ "=" in
         if String.length tok > String.length k
            && String.sub tok 0 (String.length k) = k
         then Some (String.sub tok (String.length k)
                      (String.length tok - String.length k))
         else None)

let int_field line key =
  match field line key with
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> Alcotest.failf "field %s not an int in %S" key line)
  | None -> Alcotest.failf "field %s missing in %S" key line

let with_server ?(workers = 2) ?(admission = Admission.default_config) prefix f =
  let cfg =
    { (Server.default_config ~prefix) with workers; admission }
  in
  let srv = ok_exn "Server.start" (Server.start cfg) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

(* ---- protocol ---------------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.parse "QUERY S(NP)(VP)" with
  | Ok (Protocol.Query ("S(NP)(VP)", o)) ->
      Alcotest.(check bool) "default class interactive" true
        (o.Protocol.klass = `Interactive);
      Alcotest.(check bool) "no deadline" true (o.Protocol.deadline_ms = None);
      Alcotest.(check bool) "not count_only" false o.Protocol.count_only
  | _ -> Alcotest.fail "plain QUERY");
  (match
     Protocol.parse
       "query S(NP) deadline_ms=5.5 max_results=3 partial=1 class=batch \
        client=alice count_only=1"
   with
  | Ok (Protocol.Query ("S(NP)", o)) ->
      Alcotest.(check (option (float 0.001))) "deadline" (Some 5.5)
        o.Protocol.deadline_ms;
      Alcotest.(check (option int)) "max_results" (Some 3) o.Protocol.max_results;
      Alcotest.(check bool) "partial" true (o.Protocol.partial = Some true);
      Alcotest.(check bool) "class batch" true (o.Protocol.klass = `Batch);
      Alcotest.(check (option string)) "client" (Some "alice") o.Protocol.client;
      Alcotest.(check bool) "count_only" true o.Protocol.count_only
  | Ok _ -> Alcotest.fail "option QUERY misparsed"
  | Error e -> Alcotest.failf "option QUERY rejected: %s" e);
  List.iter
    (fun l ->
      match Protocol.parse l with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" l)
    [
      "";
      "QUERY";
      "QUERY S(NP) nonsense";
      "QUERY S(NP) deadline_ms=abc";
      "QUERY S(NP) class=urgent";
      "SWAP";
      "SWAP a b";
      "STATS now";
      "FROBNICATE x";
    ];
  (match Protocol.parse "SWAP /tmp/ix" with
  | Ok (Protocol.Swap "/tmp/ix") -> ()
  | _ -> Alcotest.fail "SWAP");
  List.iter
    (fun (l, want) ->
      match (Protocol.parse l, want) with
      | Ok Protocol.Stats, `Stats
      | Ok Protocol.Health, `Health
      | Ok Protocol.Quit, `Quit
      | Ok Protocol.Shutdown, `Shutdown -> ()
      | _ -> Alcotest.failf "verb %S" l)
    [ ("STATS", `Stats); ("health", `Health); ("QUIT", `Quit);
      ("SHUTDOWN", `Shutdown) ]

let test_limits_of_opts () =
  let default =
    Limits.v ~deadline_ns:1_000_000 ~max_results:100 ~partial:false ()
  in
  let opts =
    match Protocol.parse "QUERY q max_results=5 partial=1" with
    | Ok (Protocol.Query (_, o)) -> o
    | _ -> Alcotest.fail "parse"
  in
  let l = Protocol.limits_of_opts ~default opts in
  Alcotest.(check (option int)) "deadline inherited" (Some 1_000_000)
    l.Limits.deadline_ns;
  Alcotest.(check (option int)) "max_results overridden" (Some 5)
    l.Limits.max_results;
  Alcotest.(check bool) "partial overridden" true l.Limits.partial

let test_jsonx () =
  Alcotest.(check string) "escaping"
    "{\"a\\n\\\"b\":[1,true,null,\"x\"]}"
    (Jsonx.to_string
       (Jsonx.Obj
          [ ("a\n\"b", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Bool true; Jsonx.Null;
                                   Jsonx.Str "x" ]) ]));
  Alcotest.(check string) "float" "[0.5]"
    (Jsonx.to_string (Jsonx.Arr [ Jsonx.Float 0.5 ]));
  Alcotest.(check string) "nan is null" "[null]"
    (Jsonx.to_string (Jsonx.Arr [ Jsonx.Float Float.nan ]))

(* ---- admission --------------------------------------------------------- *)

let plain_opts =
  match Protocol.parse "QUERY q" with
  | Ok (Protocol.Query (_, o)) -> o
  | _ -> assert false

let test_admission_quota () =
  (* a refill rate of ~0 makes the bucket a pure burst counter *)
  let adm =
    Admission.create
      { Admission.default_config with quota_rps = Some 1e-9; quota_burst = 2. }
  in
  let verdict client =
    Admission.admit adm ~client ~inflight:1 plain_opts
  in
  (match verdict "alice" with Admission.Admit _ -> () | _ -> Alcotest.fail "1st");
  (match verdict "alice" with Admission.Admit _ -> () | _ -> Alcotest.fail "2nd");
  (match verdict "alice" with
  | Admission.Reject_quota -> ()
  | _ -> Alcotest.fail "3rd should exhaust the bucket");
  (* quotas are per client: bob still has his burst *)
  (match verdict "bob" with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "bob isolated");
  (* no quota configured: never rejected *)
  let open_adm = Admission.create Admission.default_config in
  for _ = 1 to 100 do
    match Admission.admit open_adm ~client:"x" ~inflight:1 plain_opts with
    | Admission.Admit _ -> ()
    | _ -> Alcotest.fail "quota off"
  done

let test_admission_brownout_shed () =
  let adm =
    Admission.create
      {
        Admission.default_config with
        interactive = Limits.v ~deadline_ns:1_000_000_000 ();
        brownout_inflight = Some 2;
        shed_inflight = Some 4;
        brownout_deadline_ns = 7;
      }
  in
  (match Admission.admit adm ~client:"c" ~inflight:1 plain_opts with
  | Admission.Admit (l, false) ->
      Alcotest.(check (option int)) "normal deadline" (Some 1_000_000_000)
        l.Limits.deadline_ns
  | _ -> Alcotest.fail "under brownout threshold");
  (match Admission.admit adm ~client:"c" ~inflight:3 plain_opts with
  | Admission.Admit (l, true) ->
      Alcotest.(check (option int)) "browned deadline clamped" (Some 7)
        l.Limits.deadline_ns;
      Alcotest.(check bool) "browned forces partial" true l.Limits.partial
  | _ -> Alcotest.fail "between thresholds must brown out");
  match Admission.admit adm ~client:"c" ~inflight:5 plain_opts with
  | Admission.Reject_overloaded -> ()
  | _ -> Alcotest.fail "above shed threshold must reject"

let test_admission_stale_eviction () =
  (* a hostile flood of distinct client ids must bound the bucket table
     WITHOUT amnesty: the abuser who spent its quota — and keeps hammering,
     which refreshes its bucket's timestamp — must still be rate-limited
     after the overflow sweep, while only the stalest buckets are dropped.
     (The old behaviour reset the whole table, handing the abuser a fresh
     burst the moment 8k strangers showed up.) *)
  let adm =
    Admission.create
      { Admission.default_config with quota_rps = Some 1e-9; quota_burst = 2. }
  in
  let verdict client = Admission.admit adm ~client ~inflight:1 plain_opts in
  (match verdict "abuser" with Admission.Admit _ -> () | _ -> Alcotest.fail "1st");
  (match verdict "abuser" with Admission.Admit _ -> () | _ -> Alcotest.fail "2nd");
  (match verdict "abuser" with
  | Admission.Reject_quota -> ()
  | _ -> Alcotest.fail "burst spent");
  (* flood past the 8192-bucket cap, the abuser retrying throughout (every
     denial refreshes its bucket, so it is never among the stalest) *)
  for i = 1 to 8400 do
    (match verdict (Printf.sprintf "flood-%d" i) with
    | Admission.Admit _ -> ()
    | _ -> Alcotest.failf "fresh client %d rejected" i);
    if i mod 500 = 0 then
      match verdict "abuser" with
      | Admission.Reject_quota -> ()
      | _ -> Alcotest.failf "abuser admitted mid-flood at %d" i
  done;
  (match verdict "abuser" with
  | Admission.Reject_quota -> ()
  | _ -> Alcotest.fail "eviction sweep granted the abuser amnesty");
  (* early flood clients were the stalest: evicted, so a retry is a fresh
     bucket (admitted) — proof the sweep actually ran and was selective *)
  match verdict "flood-1" with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "stalest bucket should have been evicted"

(* ---- swap refcounting --------------------------------------------------- *)

let test_swap_double_release () =
  let pa = build_prefix ~seed:2012 ~n:40 "dblrel" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa)
    (fun () ->
      let sw = ok_exn "Swap.create" (Swap.create pa) in
      let g = Swap.acquire sw in
      Swap.release sw g;
      (match Swap.release sw g with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "double release must raise, not underflow");
      (* the guard protects a retiring generation from being pinned: a
         correct acquire/release pair still drains after the faulty one *)
      let g1 = Swap.acquire sw in
      Alcotest.(check int) "swap still works" 2 (ok_exn "swap" (Swap.swap sw pa));
      Alcotest.(check int) "old gen draining" 1 (Swap.draining sw);
      Swap.release sw g1;
      Alcotest.(check int) "drain completes" 0 (Swap.draining sw))

let test_swap_refcount () =
  let pa = build_prefix ~seed:2012 ~n:60 "swapa" in
  let pb = build_prefix ~seed:99 ~n:60 "swapb" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa; rm_prefix pb)
    (fun () ->
      let sw = ok_exn "Swap.create" (Swap.create pa) in
      Alcotest.(check int) "starts at generation 1" 1 (Swap.current_id sw);
      Alcotest.(check string) "prefix" pa (Swap.current_prefix sw);
      let g1 = Swap.acquire sw in
      Alcotest.(check int) "acquired gen 1" 1 (Swap.gen_id g1);
      (* flip while g1 is in flight: the old generation drains *)
      Alcotest.(check int) "swap returns 2" 2 (ok_exn "swap" (Swap.swap sw pb));
      Alcotest.(check int) "current is 2" 2 (Swap.current_id sw);
      Alcotest.(check int) "old gen draining" 1 (Swap.draining sw);
      let g2 = Swap.acquire sw in
      Alcotest.(check int) "new acquire sees 2" 2 (Swap.gen_id g2);
      (* the in-flight reference still answers from its own generation *)
      (match Swap.handle g1 with
      | Si.Single si -> ignore (ok_exn "old gen query" (Si.query si "S(NP)(VP)"))
      | Si.Sharded _ -> Alcotest.fail "expected a single-index generation");
      Swap.release sw g1;
      Alcotest.(check int) "drain complete" 0 (Swap.draining sw);
      Swap.release sw g2;
      (* a swap to a missing prefix fails and changes nothing *)
      (match Swap.swap sw (pa ^ "-missing") with
      | Error (Si_error.Io _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "swap to missing prefix succeeded");
      Alcotest.(check int) "failed swap keeps generation" 2 (Swap.current_id sw))

let test_swap_failpoints () =
  let pa = build_prefix ~seed:2012 ~n:60 "fpa" in
  let pb = build_prefix ~seed:99 ~n:60 "fpb" in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      rm_prefix pa;
      rm_prefix pb)
    (fun () ->
      let sw = ok_exn "Swap.create" (Swap.create pa) in
      Failpoint.arm_exn "serve.swap.open=fail@1";
      (match Swap.swap sw pb with
      | Error (Si_error.Internal _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "armed swap.open must abort");
      Alcotest.(check int) "old generation intact" 1 (Swap.current_id sw);
      (match Swap.handle (Swap.acquire sw) with
      | Si.Single si -> ignore (ok_exn "still serving" (Si.query si "S(NP)(VP)"))
      | Si.Sharded _ -> Alcotest.fail "expected a single-index generation");
      Failpoint.clear ();
      Failpoint.arm_exn "serve.swap.flip=sys@1";
      (match Swap.swap sw pb with
      | Error (Si_error.Io _) -> ()
      | Error e -> Alcotest.failf "wrong flip error: %s" (Si_error.to_string e)
      | Ok _ -> Alcotest.fail "armed swap.flip must abort");
      Alcotest.(check int) "still generation 1" 1 (Swap.current_id sw);
      Failpoint.clear ();
      Alcotest.(check int) "disarmed swap completes" 2
        (ok_exn "swap" (Swap.swap sw pb)))

(* ---- end-to-end: client sessions against an in-process server ---------- *)

let test_server_session () =
  let pa = build_prefix ~seed:2012 ~n:80 "sess" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa)
    (fun () ->
      with_server pa (fun srv ->
          let c = connect (Server.port srv) in
          Fun.protect
            ~finally:(fun () -> disconnect c)
            (fun () ->
              (match roundtrip c "HEALTH" with
              | `Ok (l, _) ->
                  Alcotest.(check int) "health gen" 1 (int_field l "gen")
              | `Err l -> Alcotest.failf "HEALTH: %s" l);
              (* the wire answer equals the library answer, match body
                 included *)
              let si = ok_exn "open" (Si.open_ pa) in
              let want = ok_exn "query" (Si.query si "S(NP)(VP)") in
              (match roundtrip c "QUERY S(NP)(VP)" with
              | `Ok (l, body) ->
                  Alcotest.(check int) "n" (List.length want) (int_field l "n");
                  Alcotest.(check int) "not truncated" 0 (int_field l "truncated");
                  let got =
                    List.map
                      (fun b ->
                        match String.split_on_char ' ' b with
                        | [ "M"; tid; node ] ->
                            (int_of_string tid, int_of_string node)
                        | _ -> Alcotest.failf "bad match line %S" b)
                      body
                  in
                  Alcotest.(check (list (pair int int))) "matches" want got
              | `Err l -> Alcotest.failf "QUERY: %s" l);
              (match roundtrip c "STATS" with
              | `Ok (l, _) ->
                  Alcotest.(check bool) "stats has index object" true
                    (String.length l > 3
                    && String.sub l 3 (String.length l - 3) |> fun s ->
                       String.length s > 0 && s.[0] = '{'
                       && has_infix ~infix:"\"index\"" s
                       && has_infix ~infix:"\"serving\"" s)
              | `Err l -> Alcotest.failf "STATS: %s" l);
              (match roundtrip c "NO_SUCH_VERB" with
              | `Err l ->
                  Alcotest.(check bool) "bad_request" true
                    (has_prefix ~prefix:"ERR bad_request" l)
              | `Ok _ -> Alcotest.fail "unknown verb accepted");
              (* bad query: typed error, connection stays usable *)
              (match roundtrip c "QUERY S((NP)" with
              | `Err l ->
                  Alcotest.(check bool) "bad_query" true
                    (has_prefix ~prefix:"ERR bad_query" l)
              | `Ok _ -> Alcotest.fail "syntax error accepted");
              match roundtrip c "QUIT" with
              | `Ok (l, _) -> Alcotest.(check string) "bye" "OK bye" l
              | `Err l -> Alcotest.failf "QUIT: %s" l)))

let test_server_deadline_and_partial () =
  let pa = build_prefix ~seed:2012 ~n:80 "dl" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa)
    (fun () ->
      with_server pa (fun srv ->
          let c = connect (Server.port srv) in
          Fun.protect
            ~finally:(fun () -> disconnect c)
            (fun () ->
              (match roundtrip c "QUERY S(//NP)(//NP) deadline_ms=0" with
              | `Err l ->
                  Alcotest.(check bool) "timeout" true
                    (has_prefix ~prefix:"ERR timeout" l)
              | `Ok _ -> Alcotest.fail "zero deadline must time out");
              (match roundtrip c "QUERY S(//NP)(//NP) deadline_ms=0 partial=1" with
              | `Ok (l, _) ->
                  Alcotest.(check int) "degraded to truncated" 1
                    (int_field l "truncated")
              | `Err l -> Alcotest.failf "partial did not degrade: %s" l);
              (* max_results truncates without erroring *)
              match roundtrip c "QUERY S(NP)(VP) max_results=2" with
              | `Ok (l, body) ->
                  Alcotest.(check int) "capped" 2 (int_field l "n");
                  Alcotest.(check int) "flagged" 1 (int_field l "truncated");
                  Alcotest.(check int) "body capped" 2 (List.length body)
              | `Err l -> Alcotest.failf "max_results errored: %s" l)))

let test_server_quota_and_shed () =
  let pa = build_prefix ~seed:2012 ~n:80 "quota" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa)
    (fun () ->
      let admission =
        {
          Admission.default_config with
          quota_rps = Some 1e-9;
          quota_burst = 2.;
        }
      in
      with_server ~admission pa (fun srv ->
          let c = connect (Server.port srv) in
          Fun.protect
            ~finally:(fun () -> disconnect c)
            (fun () ->
              let q = "QUERY S(NP)(VP) count_only=1 client=alice" in
              (match roundtrip c q with
              | `Ok _ -> ()
              | `Err l -> Alcotest.failf "1st: %s" l);
              (match roundtrip c q with
              | `Ok _ -> ()
              | `Err l -> Alcotest.failf "2nd: %s" l);
              (match roundtrip c q with
              | `Err l ->
                  Alcotest.(check bool) "quota_exceeded" true
                    (has_prefix ~prefix:"ERR quota_exceeded" l)
              | `Ok _ -> Alcotest.fail "3rd request must be over quota");
              (* another client id is unaffected *)
              match roundtrip c "QUERY S(NP)(VP) count_only=1 client=bob" with
              | `Ok _ -> ()
              | `Err l -> Alcotest.failf "bob rejected: %s" l));
      (* shed_inflight = 0: every query sees itself as the overload *)
      let admission =
        { Admission.default_config with shed_inflight = Some 0 }
      in
      with_server ~admission pa (fun srv ->
          let c = connect (Server.port srv) in
          Fun.protect
            ~finally:(fun () -> disconnect c)
            (fun () ->
              match roundtrip c "QUERY S(NP)(VP) count_only=1" with
              | `Err l ->
                  Alcotest.(check bool) "overloaded" true
                    (has_prefix ~prefix:"ERR overloaded" l)
              | `Ok _ -> Alcotest.fail "shed threshold 0 must reject")))

(* The acceptance centrepiece: clients hammering the server while the
   index is hot-swapped underneath them.  Zero dropped requests, and
   every answer is consistent with exactly one generation. *)
let test_server_swap_under_load () =
  let pa = build_prefix ~seed:2012 ~n:150 "loada" in
  let pb = build_prefix ~seed:99 ~n:150 "loadb" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa; rm_prefix pb)
    (fun () ->
      let sa = ok_exn "open a" (Si.open_ pa) in
      let sb = ok_exn "open b" (Si.open_ pb) in
      let q, ca, cb =
        let qa, c1, _ = distinguishing_query sa sb in
        (qa, c1, List.length (ok_exn "cb" (Si.query sb qa)))
      in
      Alcotest.(check bool) "counts differ" true (ca <> cb);
      with_server pa (fun srv ->
          let port = Server.port srv in
          let per_client = 25 in
          let client () =
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> disconnect c)
              (fun () ->
                List.init per_client (fun _ ->
                    match roundtrip c (Printf.sprintf "QUERY %s count_only=1" q) with
                    | `Ok (l, _) -> (int_field l "n", int_field l "gen")
                    | `Err l -> Alcotest.failf "query dropped under swap: %s" l))
          in
          let workers = Array.init 2 (fun _ -> Domain.spawn client) in
          (* let traffic build, then flip generations mid-stream *)
          Unix.sleepf 0.05;
          Alcotest.(check int) "swap under load" 2
            (ok_exn "swap" (Server.swap srv pb));
          let answers =
            Array.to_list workers |> List.concat_map Domain.join
          in
          Alcotest.(check int) "every request answered"
            (2 * per_client) (List.length answers);
          List.iter
            (fun (n, gen) ->
              match gen with
              | 1 ->
                  Alcotest.(check int) "gen 1 answers from index A" ca n
              | 2 ->
                  Alcotest.(check int) "gen 2 answers from index B" cb n
              | g -> Alcotest.failf "impossible generation %d" g)
            answers;
          (* the flip actually happened for late traffic *)
          let c = connect port in
          Fun.protect
            ~finally:(fun () -> disconnect c)
            (fun () ->
              match roundtrip c (Printf.sprintf "QUERY %s count_only=1" q) with
              | `Ok (l, _) ->
                  Alcotest.(check int) "post-swap gen" 2 (int_field l "gen");
                  Alcotest.(check int) "post-swap count" cb (int_field l "n")
              | `Err l -> Alcotest.failf "post-swap query: %s" l)))

let test_server_graceful_drain () =
  let pa = build_prefix ~seed:2012 ~n:80 "drain" in
  Fun.protect
    ~finally:(fun () -> rm_prefix pa)
    (fun () ->
      let cfg = Server.default_config ~prefix:pa in
      let srv = ok_exn "start" (Server.start cfg) in
      let port = Server.port srv in
      let c = connect port in
      (* an in-flight session sees its request answered, then the server
         closes the connection and exits *)
      (match roundtrip c "QUERY S(NP)(VP) count_only=1" with
      | `Ok _ -> ()
      | `Err l -> Alcotest.failf "pre-drain query: %s" l);
      (match roundtrip c "SHUTDOWN" with
      | `Ok (l, _) -> Alcotest.(check string) "drain ack" "OK draining" l
      | `Err l -> Alcotest.failf "SHUTDOWN: %s" l);
      (* join returns: acceptor and workers exited *)
      Server.join srv;
      (* the drained server closed our connection... *)
      (match recv c with
      | exception End_of_file -> ()
      | l -> Alcotest.failf "expected EOF after drain, got %S" l);
      disconnect c;
      (* ... and the port no longer accepts *)
      match connect port with
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | c2 ->
          disconnect c2;
          Alcotest.fail "listen socket survived shutdown")

let test_batch_domains_clamped () =
  let trees = Si_grammar.Generator.corpus ~seed:7 ~n:30 () in
  let si = Si.build ~scheme:Coding.Filter ~mss:2 ~trees () in
  let b = Si.query_batch ~domains:64 si [| "S(NP)(VP)"; "NP(DT)(NN)" |] in
  Alcotest.(check int) "worker count clamped to cores"
    (min 64 (Domain.recommended_domain_count ()))
    (Array.length b.Si.domain_stats);
  Array.iter (fun a -> ignore (ok_exn "clamped answer" a)) b.Si.answers

let suite =
  [
    Alcotest.test_case "protocol: request parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol: limits override semantics" `Quick
      test_limits_of_opts;
    Alcotest.test_case "jsonx rendering" `Quick test_jsonx;
    Alcotest.test_case "admission: per-client token buckets" `Quick
      test_admission_quota;
    Alcotest.test_case "admission: brownout and shedding" `Quick
      test_admission_brownout_shed;
    Alcotest.test_case "admission: overflow evicts stalest, no amnesty" `Quick
      test_admission_stale_eviction;
    Alcotest.test_case "swap: refcounted generations drain" `Quick
      test_swap_refcount;
    Alcotest.test_case "swap: double release refused" `Quick
      test_swap_double_release;
    Alcotest.test_case "swap: failpoint-aborted swap keeps old index" `Quick
      test_swap_failpoints;
    Alcotest.test_case "server: wire session end-to-end" `Slow
      test_server_session;
    Alcotest.test_case "server: deadlines, partial, max_results" `Slow
      test_server_deadline_and_partial;
    Alcotest.test_case "server: quota rejection and shedding" `Slow
      test_server_quota_and_shed;
    Alcotest.test_case "server: zero-downtime swap under load" `Slow
      test_server_swap_under_load;
    Alcotest.test_case "server: graceful drain on shutdown" `Slow
      test_server_graceful_drain;
    Alcotest.test_case "batch: domain count clamped to cores" `Quick
      test_batch_domains_clamped;
  ]
