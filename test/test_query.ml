open Si_treebank
open Si_query

let test_parser_roundtrip () =
  let cases =
    [
      "S";
      "S(NP)(VP)";
      "S(NP(DT)(NN))(VP)";
      "S(NP)(VP(//NP(NN)))";
      "S(//NP)(//NP)";
      "VP(VBZ)(NP(DT)(NN))";
    ]
  in
  List.iter
    (fun s ->
      let q = Parser.parse_exn s in
      Alcotest.(check string) s s (Ast.to_string q);
      Alcotest.(check bool) "reparse" true
        (Ast.equal q (Parser.parse_exn (Ast.to_string q))))
    cases

let test_parser_whitespace () =
  let a = Parser.parse_exn "  S ( NP ( DT ) ) ( // VP ) " in
  let b = Parser.parse_exn "S(NP(DT))(//VP)" in
  Alcotest.(check bool) "whitespace ignored" true (Ast.equal a b)

let test_parser_errors () =
  let bad s = Result.is_error (Parser.parse s) in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unbalanced" true (bad "S(NP");
  Alcotest.(check bool) "trailing" true (bad "S(NP))");
  Alcotest.(check bool) "single slash" true (bad "S(/NP)");
  Alcotest.(check bool) "empty child" true (bad "S()");
  Alcotest.(check bool) "no label" true (bad "(NP)")

let test_indexed () =
  let q = Parser.parse_exn "S(NP(DT)(NN))(//VP)" in
  let iq = Ast.index q in
  Alcotest.(check int) "count" 5 (Ast.count iq);
  Alcotest.(check int) "root parent" (-1) iq.Ast.parent.(0);
  Alcotest.(check bool) "vp axis" true (iq.Ast.axis.(4) = Ast.Descendant);
  Alcotest.(check bool) "np axis" true (iq.Ast.axis.(1) = Ast.Child);
  Alcotest.(check int) "np size" 3 iq.Ast.size_of.(1);
  Alcotest.(check bool) "node 1 is NP(DT)(NN)" true
    (Ast.equal (Ast.node iq 1) (Parser.parse_exn "NP(DT)(NN)"))

let doc s = Annotated.of_tree (Penn.parse_one_exn s)

let test_matcher_basic () =
  (* pre-order: 0=S 1=NP 2=DT 3=the 4=NN 5=dog 6=VP 7=VBZ 8=barks *)
  let d = doc "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))" in
  let roots s = Matcher.roots d (Parser.parse_exn s) in
  Alcotest.(check (list int)) "exact" [ 0 ] (roots "S(NP(DT)(NN))(VP)");
  Alcotest.(check (list int)) "leaf label" [ 4 ] (roots "NN");
  Alcotest.(check (list int)) "missing" [] (roots "S(PP)");
  Alcotest.(check (list int)) "child not desc" [] (roots "S(DT)");
  Alcotest.(check (list int)) "descendant" [ 0 ] (roots "S(//DT)");
  Alcotest.(check (list int)) "deep descendant" [ 0 ] (roots "S(//barks)");
  Alcotest.(check (list int)) "proper descendant" [] (roots "S(//S)")

let test_matcher_injective () =
  let d = doc "(NP (NN a) (NN b))" in
  let n s = List.length (Matcher.roots d (Parser.parse_exn s)) in
  Alcotest.(check int) "two NN siblings need two NN nodes" 1 (n "NP(NN)(NN)");
  Alcotest.(check int) "three NN siblings impossible" 0 (n "NP(NN)(NN)(NN)");
  let single = doc "(NP (NN a))" in
  Alcotest.(check int) "single NN can't serve both" 0
    (List.length (Matcher.roots single (Parser.parse_exn "NP(NN)(NN)")));
  (* injectivity is per sibling set: the same data node may serve two
     query nodes that are not siblings *)
  let chain = doc "(S (NP (NP (NN x))))" in
  Alcotest.(check int) "nested reuse ok" 1
    (List.length (Matcher.roots chain (Parser.parse_exn "S(//NP(NN))")))

let test_matcher_unordered () =
  let d = doc "(S (VP v) (NP n))" in
  Alcotest.(check int) "order-insensitive" 1
    (List.length (Matcher.roots d (Parser.parse_exn "S(NP)(VP)")))

let test_corpus_roots () =
  let docs =
    Array.of_list
      [ doc "(S (NP n) (VP v))"; doc "(X x)"; doc "(S (NP n) (VP v))" ]
  in
  let q = Parser.parse_exn "S(NP)(VP)" in
  Alcotest.(check (list (pair int int))) "tids and nodes" [ (0, 0); (2, 0) ]
    (Matcher.corpus_roots docs q)

let suite =
  [
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser whitespace" `Quick test_parser_whitespace;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "indexed form" `Quick test_indexed;
    Alcotest.test_case "matcher basics" `Quick test_matcher_basic;
    Alcotest.test_case "matcher injectivity" `Quick test_matcher_injective;
    Alcotest.test_case "matcher unordered" `Quick test_matcher_unordered;
    Alcotest.test_case "corpus roots" `Quick test_corpus_roots;
  ]
