let () =
  Alcotest.run "si"
    [
      ("treebank", Test_treebank.suite);
      ("grammar", Test_grammar.suite);
      ("subtree", Test_subtree.suite);
      ("query", Test_query.suite);
      ("cover", Test_cover.suite);
      ("core", Test_core.suite);
      ("serve", Test_serve.suite);
      ("limits", Test_limits.suite);
      ("mmap", Test_mmap.suite);
      ("serve-net", Test_serve_net.suite);
      ("wal", Test_wal.suite);
      ("sharded", Test_sharded.suite);
      ("scrub", Test_scrub.suite);
    ]
