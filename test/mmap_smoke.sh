#!/usr/bin/env bash
# mmap-smoke (ISSUE 7): scale gate for the SIDX4 mapped backend.
#
#   1. O(1) open — `si_tool openbench` on a 2 000-tree and a 20 000-tree
#      SIDX4 index: the large open must stay under a fixed wall-clock
#      ceiling AND within a small factor of the small open (flat in
#      scale), while the heap SIDX3 open at 20 000 trees must be at
#      least an order of magnitude slower than the mapped open.
#   2. Results parity at scale — query counts over the 20 000-tree
#      corpus must agree between the SIDX3 and SIDX4 containers.
#   3. Live swap SIDX3 -> SIDX4 — a serving process is swapped from the
#      heap container to the mapped one while two client loops hammer
#      it: zero dropped in-flight queries, identical counts across the
#      generation boundary, and post-swap STATS must report the mapped
#      backend.
set -euo pipefail

TOOL="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "mmap_smoke FAIL: $*" >&2; exit 1; }

# generous CI-runner ceiling; locally the 20k mapped open is < 1 ms
OPEN_CEILING_MS=50
# "flat in scale": 10x the trees may cost at most this factor in open time
FLATNESS_FACTOR=8
# the mapped open must beat the heap open by at least this factor at 20k
SPEEDUP_FLOOR=10

# ---- fixtures ------------------------------------------------------------
echo "== building corpora (2k / 20k trees) =="
"$TOOL" gen -n 2000  --seed 2012 -o "$DIR/small.penn" 2>/dev/null
"$TOOL" gen -n 20000 --seed 2012 -o "$DIR/big.penn"   2>/dev/null

"$TOOL" build --corpus "$DIR/small.penn" --prefix "$DIR/small4" \
  --scheme interval --mss 3 --format sidx4 >/dev/null
"$TOOL" build --corpus "$DIR/big.penn" --prefix "$DIR/big4" \
  --scheme interval --mss 3 --format sidx4 >/dev/null
"$TOOL" build --corpus "$DIR/big.penn" --prefix "$DIR/big3" \
  --scheme interval --mss 3 >/dev/null

open_min() { # open_min PREFIX EXPECTED_BACKEND
  local out
  out=$("$TOOL" openbench --prefix "$1" --repeat 7)
  grep -q "backend=$2" <<<"$out" || fail "openbench $1: want backend=$2: $out"
  sed -n 's/.*open_ms_min=\([0-9.]*\).*/\1/p' <<<"$out"
}

# ---- 1. O(1) open --------------------------------------------------------
small4_ms=$(open_min "$DIR/small4" mapped)
big4_ms=$(open_min "$DIR/big4" mapped)
big3_ms=$(open_min "$DIR/big3" heap)
echo "open_ms_min: sidx4@2k=$small4_ms sidx4@20k=$big4_ms sidx3@20k=$big3_ms"

awk -v b="$big4_ms" -v c="$OPEN_CEILING_MS" 'BEGIN{exit !(b < c)}' \
  || fail "mapped open at 20k trees over ceiling: ${big4_ms}ms >= ${OPEN_CEILING_MS}ms"
awk -v s="$small4_ms" -v b="$big4_ms" -v f="$FLATNESS_FACTOR" \
  'BEGIN{exit !(b < f * s)}' \
  || fail "mapped open not flat in scale: 2k=${small4_ms}ms -> 20k=${big4_ms}ms"
awk -v h="$big3_ms" -v m="$big4_ms" -v f="$SPEEDUP_FLOOR" \
  'BEGIN{exit !(h > f * m)}' \
  || fail "mapped open only $(awk -v h="$big3_ms" -v m="$big4_ms" 'BEGIN{printf "%.1f", h/m}')x faster than heap at 20k (need ${SPEEDUP_FLOOR}x)"

# ---- 2. results parity at scale ------------------------------------------
count_of() { # count_of PREFIX QUERY  -> match count
  "$TOOL" query --prefix "$1" "$2" | head -1 | awk '{print $1}'
}
for q in 'S(NP)(VP)' 'S(NP(DT)(NN))(VP)' 'S(//PP(IN)(NP))'; do
  c3=$(count_of "$DIR/big3" "$q")
  c4=$(count_of "$DIR/big4" "$q")
  [ "$c3" = "$c4" ] || fail "count mismatch at 20k for $q: sidx3=$c3 sidx4=$c4"
  [ "$c3" -gt 0 ] || fail "empty result for $q — fixture too sparse to be a gate"
done
echo "results parity at 20k trees OK"

# ---- 3. live swap SIDX3 -> SIDX4, zero dropped queries -------------------
Q='S(NP(DT)(NN))(VP)'
EXPECT=$(count_of "$DIR/big3" "$Q")

"$TOOL" serve --prefix "$DIR/big3" --listen 0 >"$DIR/server.log" 2>&1 &
SRV_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$DIR/server.log" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || fail "server died on startup: $(cat "$DIR/server.log")"
  sleep 0.05
done
[ -n "$PORT" ] || fail "server never reported its port"

req() { # req "REQUEST LINE"
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT"
  printf '%s\nQUIT\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

client_loop() { # client_loop OUTFILE
  local i
  for i in $(seq 40); do
    req "QUERY $Q count_only=1" >>"$1" || true
  done
}
: >"$DIR/c1.out"; : >"$DIR/c2.out"
client_loop "$DIR/c1.out" & C1=$!
client_loop "$DIR/c2.out" & C2=$!
sleep 0.15
out=$(req "SWAP $DIR/big4")
grep -q 'OK gen=2' <<<"$out" || fail "SWAP to sidx4: $out"
wait "$C1" "$C2"

answers=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" | wc -l)
[ "$answers" = 80 ] || fail "dropped requests during sidx3->sidx4 swap: $answers/80 answered"
# same corpus on both sides of the swap: every answer must carry the
# oracle count whichever generation served it
bad=$(grep -h '^OK n=' "$DIR/c1.out" "$DIR/c2.out" \
  | grep -v -e "n=$EXPECT truncated=0 gen=1" -e "n=$EXPECT truncated=0 gen=2" || true)
[ -z "$bad" ] || fail "wrong answer(s) across the swap: $bad"

out=$(req "QUERY $Q count_only=1")
grep -q "OK n=$EXPECT truncated=0 gen=2" <<<"$out" || fail "post-swap answer: $out"
out=$(req "STATS")
grep -qF '"backend":"mapped"' <<<"$out" || fail "post-swap STATS not mapped: $out"
out=$(req "SHUTDOWN")
grep -q '^OK draining' <<<"$out" || fail "SHUTDOWN: $out"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
grep -q 'shutdown complete' "$DIR/server.log" || fail "no graceful drain in log"

echo "mmap_smoke OK: 20k-tree mapped open=${big4_ms}ms (heap ${big3_ms}ms), swap served 80/80"
