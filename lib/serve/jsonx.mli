(** Minimal JSON value and single-line emitter.

    One machine-readable schema is shared by [si_tool stats --json] and
    the server's [STATS] verb ({!Metrics}); this module is the common
    rendering.  Emission only — the repo has no JSON consumer, and CI
    validates the output with Python. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Strings are escaped per RFC 8259;
    floats that lost nothing to rounding print as shortest round-trip
    ([%.17g] fallback), NaN/infinity as [null] (JSON has no spelling for
    them). *)
