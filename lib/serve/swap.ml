open Si_core

type generation = {
  id : int;
  prefix : string;
  g_handle : Si.handle;
  mutable refs : int;
  mutable retiring : bool;
}

type gen = generation

let handle g = g.g_handle
let gen_id g = g.id

type t = {
  lock : Mutex.t;
  swap_lock : Mutex.t;  (* serializes swaps; never held with [lock] waits *)
  mutable current : generation;
  mutable old : generation list;  (* retiring, refs > 0 *)
}

let open_set ?cache_budget prefix =
  (* [Si.open_any] guards Si_error.Error; a raw Sys_error (e.g. an
     injected [sys] failpoint) maps to the Io variant here.  Sharded
     prefixes (a [.shards] manifest) open as [Si.Sharded]. *)
  match Si.open_any ?cache_budget prefix with
  | (Ok _ | Error _) as r -> r
  | exception Sys_error what -> Error (Si_error.Io { path = prefix; what })

let create ?cache_budget prefix =
  Result.map
    (fun h ->
      {
        lock = Mutex.create ();
        swap_lock = Mutex.create ();
        current = { id = 1; prefix; g_handle = h; refs = 0; retiring = false };
        old = [];
      })
    (open_set ?cache_budget prefix)

let acquire t =
  Mutex.protect t.lock (fun () ->
      let g = t.current in
      g.refs <- g.refs + 1;
      g)

let release t g =
  Mutex.protect t.lock (fun () ->
      (* a double release would drive [refs] negative, after which a
         retiring generation never hits 0 again and is pinned in [t.old]
         forever — refuse loudly instead of corrupting the refcount *)
      if g.refs <= 0 then
        invalid_arg
          (Printf.sprintf
             "Swap.release: generation %d refcount underflow (double release)"
             g.id);
      g.refs <- g.refs - 1;
      if g.retiring && g.refs = 0 then
        (* last in-flight reference gone: the generation is retired and
           simply forgotten — the GC frees the index *)
        t.old <- List.filter (fun o -> o != g) t.old)

let flip_locked t ~prefix h =
  Mutex.protect t.lock (fun () ->
      let prev = t.current in
      let next =
        { id = prev.id + 1; prefix; g_handle = h; refs = 0; retiring = false }
      in
      prev.retiring <- true;
      if prev.refs > 0 then t.old <- prev :: t.old;
      t.current <- next;
      Ok next.id)

(* Flip to an already-opened handle (the per-shard swap path: the caller
   built the next handle with [Si.reopen_shard], which re-validated the
   set).  Rides the same [serve.swap.flip] failpoint as a full swap, so
   the abort-mid-swap harness covers both. *)
let flip t ~prefix h =
  Mutex.protect t.swap_lock (fun () ->
      match Si_error.guard (fun () -> Failpoint.hit "serve.swap.flip") with
      | Error _ as e -> e
      | exception Sys_error what -> Error (Si_error.Io { path = prefix; what })
      | Ok () -> flip_locked t ~prefix h)

let swap t ?cache_budget prefix =
  Mutex.protect t.swap_lock (fun () ->
      match
        Si_error.guard (fun () ->
            Failpoint.hit "serve.swap.open";
            match open_set ?cache_budget prefix with
            | Ok h -> h
            | Error e -> raise (Si_error.Error e))
      with
      | Error _ as e -> e
      | exception Sys_error what -> Error (Si_error.Io { path = prefix; what })
      | Ok h -> (
          match Si_error.guard (fun () -> Failpoint.hit "serve.swap.flip") with
          | Error _ as e -> e
          | exception Sys_error what ->
              Error (Si_error.Io { path = prefix; what })
          | Ok () -> flip_locked t ~prefix h))

let current_id t = Mutex.protect t.lock (fun () -> t.current.id)
let current_prefix t = Mutex.protect t.lock (fun () -> t.current.prefix)
let draining t = Mutex.protect t.lock (fun () -> List.length t.old)
