(** Zero-downtime index swap: refcounted generation lifecycle.

    The server holds one {!t}; every request {!acquire}s the current
    generation (a loaded {!Si_core.Si.t} plus its generation number),
    evaluates against it, and {!release}s it.  {!swap} opens a {e new}
    multi-file index set — every byte verified by {!Si_core.Si.open_},
    including the [idx_crc] torn-set detector, so a half-published
    prefix is refused and the old generation keeps serving — then flips
    the current pointer under the lock.  In-flight requests drain
    against the old generation through their refcounts; when the last
    reference goes, the retired generation is dropped and the GC frees
    it.  No request ever observes a half-swapped state: a request's
    whole evaluation, including match rendering, happens against the one
    generation it acquired.

    State machine of a generation (DESIGN.md §11):

    {v Active --swap--> Draining --last release--> Retired (freed) v}

    Failpoints: [serve.swap.open] fires before the new set is opened,
    [serve.swap.flip] after a successful open but before the pointer
    flip — both abort the swap with the old generation intact (the
    integration test arms them to kill a swap mid-flight). *)

type gen
(** One acquired reference to a loaded index generation. *)

val handle : gen -> Si_core.Si.handle
(** The generation's index — [Single] or [Sharded] ({!Si_core.Si.open_any}
    decides from the [.shards] manifest); request handlers dispatch. *)

val gen_id : gen -> int
(** Generations count from 1 (the set the server started on). *)

type t

val create : ?cache_budget:int -> string -> (t, Si_core.Si_error.t) result
(** Open the index at [prefix] as generation 1. *)

val acquire : t -> gen
(** The current generation, reference counted.  Pair with exactly one
    {!release}; {!Fun.protect} around the evaluation is the intended
    shape. *)

val release : t -> gen -> unit
(** Raises [Invalid_argument] on a refcount underflow (releasing a
    generation more times than it was acquired) — a double release would
    otherwise pin a retiring generation in the drain list forever. *)

val swap : t -> ?cache_budget:int -> string -> (int, Si_core.Si_error.t) result
(** [swap t prefix] — open the set at [prefix] (any failure, including a
    fired failpoint, leaves the current generation serving and returns
    the error) and flip; returns the new generation number.  The
    previous generation starts draining.  Serialized: concurrent swaps
    run one at a time. *)

val flip :
  t -> prefix:string -> Si_core.Si.handle -> (int, Si_core.Si_error.t) result
(** Flip to an {e already-opened} handle — the per-shard swap path: the
    caller rebuilt the next handle with [Si.reopen_shard] (one member
    shard fresh, the rest shared), and only the pointer flip remains.
    Rides the same [serve.swap.flip] failpoint and swap serialization
    as {!swap}. *)

val current_id : t -> int
val current_prefix : t -> string
(** Prefix of the serving generation — the SIGHUP reload target. *)

val draining : t -> int
(** Retired-but-still-referenced generations (0 once drained — the
    integration test asserts the drain completes). *)
