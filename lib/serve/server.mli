(** The long-lived network serving layer: a concurrent TCP line-protocol
    server over one swappable index (DESIGN.md §11).

    Shape: the acceptor (its own domain) takes connections off the listen
    socket and pushes them onto a {e bounded} queue; [workers] worker
    domains pop connections and serve their request streams.  A full
    queue sheds at accept time — the connection is answered
    [ERR overloaded] and closed immediately rather than queued
    unboundedly.  Every admitted query evaluates on the streaming read
    path through a per-worker decoded-block cache
    ({!Si_core.Si.query_outcome_cached}), so the hot path takes no locks
    over the shared index handle; per-request {!Si_core.Limits} come
    from the {!Admission} policy.

    Hot swap: {!swap} (the [SWAP] wire verb and SIGHUP both route here)
    opens the new index set, verifies it, and flips generations with
    in-flight queries draining on the old one ({!Swap}); a worker
    notices the new generation on its next query and replaces its cache
    (cache entries are keyed per index and must not survive a swap).

    Incremental updates: the [INSERT] verb WAL-appends a tree into the
    serving generation's delta (visible to the very next query); the
    [CHECKPOINT] verb — or an [checkpoint_records]/[checkpoint_bytes]
    threshold crossing — folds the delta into a new main set at the
    serving prefix, swaps to it through the normal generation flip, and
    closes the retired handle's WAL fd.  Both verbs serialize on one
    server-wide lock, so WAL frames never interleave and no insert can
    race the checkpoint's truncate-and-swap window.

    Shutdown ({!begin_shutdown}, the [SHUTDOWN] verb, SIGTERM): the
    acceptor stops accepting and closes the listen socket; workers
    finish the request they are evaluating, write its response, and
    close their connections; {!join} returns once every domain exited.
    In-flight requests are never cut off mid-response.

    Self-healing integrity (DESIGN.md §15): an optional background
    scrubber domain ([scrub_interval_s]) runs one budgeted
    {!Si_core.Si.scrub} pass per tick over the serving generation's
    lazily-verified regions.  A query (or scrub) that finds index
    corruption quarantines the handle — subsequent queries answer
    exactly from the corpus-store fallback, marked
    [degraded=integrity] on the wire — and [HEALTH] flips its first
    token to [DEGRADED] with [integrity=degraded quarantined=N].  The
    [SCRUB] and [REPAIR] verbs (and the [auto_repair_threshold]
    trigger) rebuild the damaged set from the corpus store + WAL delta
    and ride the repaired index in through the normal generation swap —
    zero dropped in-flight queries.  Shard-leg brownouts do {e not}
    quarantine: [HEALTH] stays [OK] through transient failures.

    Failpoints on the serving paths: [serve.accept] (connection
    accepted, before enqueue), [serve.parse] (request line read, before
    parsing), and the two swap points documented in {!Swap} — a fired
    [fail]/[sys] action is absorbed as an error response on that one
    connection or swap, never a server crash. *)

type config = {
  prefix : string;  (** index set to open as generation 1 *)
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains (IO-bound, so not clamped to cores) *)
  accept_queue : int;  (** bounded accept-queue capacity *)
  cache_budget : int option;  (** per-worker decode cache, bytes *)
  admission : Admission.config;
  idle_tick_s : float;
      (** granularity at which blocked reads recheck the drain flag *)
  checkpoint_records : int option;
      (** auto-checkpoint once this many WAL records are pending *)
  checkpoint_bytes : int option;
      (** auto-checkpoint once the WAL file reaches this many bytes *)
  scrub_interval_s : float option;
      (** background integrity scrub cadence; [None] = no scrubber *)
  scrub_budget_bytes : int option;
      (** per-pass scrub byte budget; [None] = a full cycle per pass *)
  auto_repair_threshold : int option;
      (** auto-repair once a quarantined generation's damage pressure
          (scrub-localized bad keys + fallback-answered queries)
          reaches this count; [Some 1] = repair on the next scrub tick
          after any quarantine; [None] = repair only on request *)
}

val default_config : prefix:string -> config
(** Port 0, 2 workers, queue of 64, default admission (admit all), no
    auto-checkpoint thresholds, no background scrubber, no
    auto-repair. *)

type t

val start : config -> (t, Si_core.Si_error.t) result
(** Open the index, bind and listen, spawn the acceptor and workers.
    Ignores [SIGPIPE] process-wide (a peer closing mid-response must
    surface as [EPIPE] on the write, not kill the server). *)

val port : t -> int
(** The bound port — the actual one when [config.port] was 0. *)

val metrics : t -> Metrics.t

val swap : t -> string -> (int, Si_core.Si_error.t) result
(** Swap to the index set at [prefix]; on error the old generation keeps
    serving.  Same path as the [SWAP] verb. *)

val reload : t -> (int, Si_core.Si_error.t) result
(** {!swap} to the currently-served prefix — the SIGHUP handler. *)

val begin_shutdown : t -> unit
(** Start the graceful drain; returns immediately. *)

val stopping : t -> bool

val join : t -> unit
(** Block until the acceptor and all workers have exited (after
    {!begin_shutdown}, or a [SHUTDOWN] wire request). *)

val stop : t -> unit
(** [begin_shutdown] + [join]. *)
