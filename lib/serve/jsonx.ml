type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else begin
    (* shortest representation that round-trips; %h-style exactness is
       overkill for metrics, but %g alone drops precision *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf
