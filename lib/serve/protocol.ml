type query_opts = {
  deadline_ms : float option;
  max_steps : int option;
  max_decoded_bytes : int option;
  max_results : int option;
  partial : bool option;
  klass : [ `Interactive | `Batch ];
  client : string option;
  count_only : bool;
}

type request =
  | Query of string * query_opts
  | Insert of string
  | Checkpoint of int option  (* [Some k] = shard k only (sharded serving) *)
  | Stats
  | Health
  | Swap of string
  | Swap_shard of int  (* per-shard zero-downtime flip *)
  | Scrub of bool  (* [SCRUB [repair=1]] — one budgeted integrity pass *)
  | Repair of int option  (* [REPAIR [shard=K]] — rebuild from the corpus *)
  | Quit
  | Shutdown

let default_opts =
  {
    deadline_ms = None;
    max_steps = None;
    max_decoded_bytes = None;
    max_results = None;
    partial = None;
    klass = `Interactive;
    client = None;
    count_only = false;
  }

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let opt_int what v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "option %s wants a non-negative integer, got %S" what v)

let opt_bool what v =
  match v with
  | "0" | "false" -> Ok false
  | "1" | "true" -> Ok true
  | _ -> Error (Printf.sprintf "option %s wants 0|1, got %S" what v)

let parse_opt opts tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "malformed option %S (want k=v)" tok)
  | Some i -> (
      let k = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match k with
      | "deadline_ms" -> (
          match float_of_string_opt v with
          | Some f when f >= 0. -> Ok { opts with deadline_ms = Some f }
          | _ -> Error (Printf.sprintf "option deadline_ms wants a number, got %S" v))
      | "max_steps" ->
          Result.map (fun n -> { opts with max_steps = Some n }) (opt_int k v)
      | "max_decoded_bytes" ->
          Result.map (fun n -> { opts with max_decoded_bytes = Some n }) (opt_int k v)
      | "max_results" ->
          Result.map (fun n -> { opts with max_results = Some n }) (opt_int k v)
      | "partial" ->
          Result.map (fun b -> { opts with partial = Some b }) (opt_bool k v)
      | "count_only" ->
          Result.map (fun b -> { opts with count_only = b }) (opt_bool k v)
      | "client" ->
          if v = "" then Error "option client wants a non-empty id"
          else Ok { opts with client = Some v }
      | "class" -> (
          match v with
          | "interactive" -> Ok { opts with klass = `Interactive }
          | "batch" -> Ok { opts with klass = `Batch }
          | _ -> Error (Printf.sprintf "unknown class %S (want interactive|batch)" v))
      | _ -> Error (Printf.sprintf "unknown option %S" k))

(* INSERT carries a Penn tree verbatim — spaces are syntax there, so the
   payload is everything after the verb, never tokenized *)
let insert_payload line =
  match String.index_opt line ' ' with
  | None -> ""
  | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))

(* [shard=K] argument of SWAP / CHECKPOINT: [None] = not that shape
   (a plain prefix), [Some (Error _)] = shaped like it but malformed *)
let shard_arg arg =
  if String.starts_with ~prefix:"shard=" arg then
    let v = String.sub arg 6 (String.length arg - 6) in
    match int_of_string_opt v with
    | Some k when k >= 0 -> Some (Ok k)
    | _ ->
        Some
          (Error
             (Printf.sprintf "shard= wants a non-negative integer, got %S" v))
  else None

let parse line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: rest -> (
      match (String.uppercase_ascii verb, rest) with
      | "INSERT", _ :: _ -> Ok (Insert (insert_payload line))
      | "INSERT", [] -> Error "INSERT wants a Penn tree"
      | "CHECKPOINT", [] -> Ok (Checkpoint None)
      | "CHECKPOINT", [ arg ] -> (
          match shard_arg arg with
          | Some (Ok k) -> Ok (Checkpoint (Some k))
          | Some (Error _ as e) -> e
          | None -> Error "CHECKPOINT takes no argument or shard=K")
      | "CHECKPOINT", _ :: _ ->
          Error "CHECKPOINT takes no argument or shard=K"
      | "QUERY", pattern :: opts ->
          let rec fold acc = function
            | [] -> Ok (Query (pattern, acc))
            | tok :: rest -> (
                match parse_opt acc tok with
                | Ok acc -> fold acc rest
                | Error _ as e -> e)
          in
          fold default_opts opts
      | "QUERY", [] -> Error "QUERY wants a pattern"
      | "STATS", [] -> Ok Stats
      | "HEALTH", [] -> Ok Health
      | "SWAP", [ arg ] -> (
          match shard_arg arg with
          | Some (Ok k) -> Ok (Swap_shard k)
          | Some (Error _ as e) -> e
          | None -> Ok (Swap arg))
      | "SWAP", _ -> Error "SWAP wants one index prefix or shard=K"
      | "SCRUB", [] -> Ok (Scrub false)
      | "SCRUB", [ "repair=1" ] -> Ok (Scrub true)
      | "SCRUB", _ -> Error "SCRUB takes no argument or repair=1"
      | "REPAIR", [] -> Ok (Repair None)
      | "REPAIR", [ arg ] -> (
          match shard_arg arg with
          | Some (Ok k) -> Ok (Repair (Some k))
          | Some (Error _ as e) -> e
          | None -> Error "REPAIR takes no argument or shard=K")
      | "REPAIR", _ :: _ -> Error "REPAIR takes no argument or shard=K"
      | "QUIT", [] -> Ok Quit
      | "SHUTDOWN", [] -> Ok Shutdown
      | ("STATS" | "HEALTH" | "QUIT" | "SHUTDOWN"), _ :: _ ->
          Error (Printf.sprintf "%s takes no arguments" (String.uppercase_ascii verb))
      | v, _ -> Error (Printf.sprintf "unknown verb %S" v))

let limits_of_opts ~default:(d : Si_core.Limits.t) o =
  let pick over inherit_ = match over with Some _ as s -> s | None -> inherit_ in
  Si_core.Limits.
    {
      deadline_ns =
        pick
          (Option.map (fun ms -> int_of_float (ms *. 1e6)) o.deadline_ms)
          d.deadline_ns;
      max_decoded_bytes = pick o.max_decoded_bytes d.max_decoded_bytes;
      max_join_steps = pick o.max_steps d.max_join_steps;
      max_results = pick o.max_results d.max_results;
      partial = Option.value o.partial ~default:d.partial;
    }

(* ---- responses ---------------------------------------------------------- *)

let ok_query ~extra ~n ~truncated ~gen ~us =
  Printf.sprintf "OK n=%d truncated=%d gen=%d us=%.1f%s\n" n
    (if truncated then 1 else 0)
    gen us extra

let match_line buf (tid, node) =
  Buffer.add_char buf 'M';
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int node);
  Buffer.add_char buf '\n'

let terminator = ".\n"

let err_code : Si_core.Si_error.t -> string = function
  | Corrupt _ -> "corrupt"
  | Io _ -> "io"
  | Bad_query _ -> "bad_query"
  | Schema_mismatch _ -> "schema_mismatch"
  | Timeout _ -> "timeout"
  | Resource_exhausted _ -> "resource_exhausted"
  | Internal _ -> "internal"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let err ~code detail = Printf.sprintf "ERR %s %s\n" code (one_line detail)
