open Si_core

type config = {
  prefix : string;
  host : string;
  port : int;
  workers : int;
  accept_queue : int;
  cache_budget : int option;
  admission : Admission.config;
  idle_tick_s : float;
  checkpoint_records : int option;
  checkpoint_bytes : int option;
  scrub_interval_s : float option;
  scrub_budget_bytes : int option;
  auto_repair_threshold : int option;
}

let default_config ~prefix =
  {
    prefix;
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    accept_queue = 64;
    cache_budget = None;
    admission = Admission.default_config;
    idle_tick_s = 0.2;
    checkpoint_records = None;
    checkpoint_bytes = None;
    scrub_interval_s = None;
    scrub_budget_bytes = None;
    auto_repair_threshold = None;
  }

(* per-worker counters, written by the owning worker only; STATS reads
   them racily from another domain — individual fields are plain words,
   so a read is at worst slightly stale, never torn across a field *)
type wstat = {
  mutable w_queries : int;
  mutable w_errors : int;
  mutable w_busy_ns : int;
  mutable w_cache : Cache.stats;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound_port : int;
  sw : Swap.t;
  adm : Admission.t;
  m : Metrics.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  ins_lock : Mutex.t;
      (* serializes INSERT and CHECKPOINT across workers: two fds
         appending to one WAL would interleave frames, and an insert
         racing the checkpoint→swap→close_wal sequence could append to a
         handle whose WAL was just truncated under it *)
  queue : (Unix.file_descr * string) Queue.t;  (* fd, peer address *)
  mutable stop_flag : bool;
  wstats : wstat array;
  mutable domains : unit Domain.t list;
}

let port t = t.bound_port
let metrics t = t.m

let stopping t = Mutex.protect t.qlock (fun () -> t.stop_flag)

let begin_shutdown t =
  Mutex.protect t.qlock (fun () ->
      t.stop_flag <- true;
      Condition.broadcast t.qcond)

let swap t prefix =
  match Swap.swap t.sw ?cache_budget:t.cfg.cache_budget prefix with
  | Ok _ as ok ->
      Metrics.bump t.m `Swap;
      ok
  | Error _ as e ->
      Metrics.bump t.m `Swap_failure;
      e

let reload t = swap t (Swap.current_prefix t.sw)

(* flip to an already-rebuilt handle (the per-shard swap path: only one
   member shard was reopened, the rest are shared with the old
   generation) — accounted under the same swap counters *)
let flip_handle t h =
  match Swap.flip t.sw ~prefix:(Swap.current_prefix t.sw) h with
  | Ok _ as ok ->
      Metrics.bump t.m `Swap;
      ok
  | Error _ as e ->
      Metrics.bump t.m `Swap_failure;
      e

(* ---- integrity ---------------------------------------------------------- *)

let state_str = function
  | `Ok -> "ok"
  | `Degraded -> "degraded"
  | `Repairing -> "repairing"

(* (state, quarantined units) of a pinned generation — a unit is the one
   single handle, or one member shard *)
let integrity_of h =
  match h with
  | Si.Single si ->
      ((Si.integrity si).Si.state, if Si.quarantined si then 1 else 0)
  | Si.Sharded sh ->
      ( (Si.integrity_sharded sh).Si.state,
        List.length (Si.quarantined_shards sh) )

let integrity_now t =
  let g = Swap.acquire t.sw in
  Fun.protect
    ~finally:(fun () -> Swap.release t.sw g)
    (fun () -> integrity_of (Swap.handle g))

(* ---- connection plumbing ------------------------------------------------ *)

(* the peer vanished (reset, broken pipe, runaway line): abandon the
   connection, never the worker *)
exception Conn_lost

let max_line = 1 lsl 16

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | 0 -> raise Conn_lost
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Conn_lost
  done

(* Read one LF-terminated line, polling at [tick] so a drain closes idle
   connections promptly.  [None] on EOF or drain.  A CR before the LF is
   stripped (telnet-friendly). *)
let read_line t fd pending =
  let chunk = Bytes.create 4096 in
  let take i =
    let line = String.sub !pending 0 i in
    pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    Some line
  in
  let rec go () =
    match String.index_opt !pending '\n' with
    | Some i -> take i
    | None ->
        if stopping t then None
        else if String.length !pending > max_line then raise Conn_lost
        else begin
          match Unix.select [ fd ] [] [] t.cfg.idle_tick_s with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> None
              | n ->
                  pending := !pending ^ Bytes.sub_string chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  None)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
  in
  go ()

(* ---- request handling --------------------------------------------------- *)

let handle_query t (ws : wstat) cache_ref fd peer pattern
    (opts : Protocol.query_opts) =
  let client = Option.value opts.Protocol.client ~default:peer in
  let inflight = Metrics.inflight_enter t.m in
  let finish_rejected counter code detail =
    Metrics.inflight_exit t.m;
    Metrics.bump t.m counter;
    write_all fd (Protocol.err ~code detail)
  in
  match Admission.admit t.adm ~client ~inflight opts with
  | Reject_quota ->
      finish_rejected `Quota "quota_exceeded"
        (Printf.sprintf "client %s is over its request quota" client)
  | Reject_overloaded ->
      finish_rejected `Shed "overloaded" "server is shedding load, retry later"
  | Admit (limits, browned) ->
      if browned then Metrics.bump t.m `Browned;
      let g = Swap.acquire t.sw in
      Fun.protect
        ~finally:(fun () ->
          Swap.release t.sw g;
          Metrics.inflight_exit t.m)
        (fun () ->
          let t0 = Monotonic.now_ns () in
          let r, extra =
            match Swap.handle g with
            | Si.Single si ->
                (* decoded blocks are keyed per index: a swap invalidates
                   the worker's cache wholesale (generation id carried
                   alongside) *)
                let cache =
                  match !cache_ref with
                  | Some (gid, c) when gid = Swap.gen_id g -> c
                  | _ ->
                      let c =
                        Cursor.create_cache ?budget:t.cfg.cache_budget ()
                      in
                      cache_ref := Some (Swap.gen_id g, c);
                      c
                in
                (Si.query_outcome_cached ~cache ~limits si pattern, "")
            | Si.Sharded sh -> (
                (* fan out on the affinity pool; each shard leg uses its
                   own handle's cache.  [degrade]: a failed leg browns the
                   answer out (truncated subset) instead of refusing it *)
                match
                  Si.query_outcome_sharded ~limits ~degrade:true sh pattern
                with
                | Error e -> (Error e, "")
                | Ok so ->
                    let failed = List.length so.Si.so_failed in
                    if failed > 0 then Metrics.bump t.m `Degraded;
                    ( Ok so.Si.so_outcome,
                      Printf.sprintf " shards=%d degraded=%d"
                        (Si.shard_count sh) failed ))
          in
          let dt = Monotonic.now_ns () - t0 in
          ws.w_queries <- ws.w_queries + 1;
          ws.w_busy_ns <- ws.w_busy_ns + dt;
          (match !cache_ref with
          | Some (_, c) -> ws.w_cache <- Cache.stats c
          | None -> ());
          match r with
          | Ok o ->
              (* part of the answer came from the quarantine fallback —
                 still exact unless truncated, but the caller should know
                 the index proper did not serve it *)
              let extra =
                if o.Limits.degraded then begin
                  Metrics.bump t.m `Integrity_fallback;
                  extra ^ " degraded=integrity"
                end
                else extra
              in
              Metrics.query_done t.m ~ok:true ~truncated:o.Limits.truncated
                ~latency_ns:(float_of_int dt);
              let matches = o.Limits.matches in
              let buf = Buffer.create 256 in
              Buffer.add_string buf
                (Protocol.ok_query ~extra
                   ~n:(List.length matches)
                   ~truncated:o.Limits.truncated ~gen:(Swap.gen_id g)
                   ~us:(float_of_int dt /. 1e3));
              if not opts.Protocol.count_only then
                List.iter (Protocol.match_line buf) matches;
              Buffer.add_string buf Protocol.terminator;
              write_all fd (Buffer.contents buf)
          | Error e ->
              ws.w_errors <- ws.w_errors + 1;
              Metrics.query_done t.m ~ok:false ~truncated:false
                ~latency_ns:(float_of_int dt);
              write_all fd
                (Protocol.err ~code:(Protocol.err_code e)
                   (Si_error.to_string e)))

(* ---- incremental updates (INSERT / CHECKPOINT) -------------------------- *)

(* caller holds [t.ins_lock].  Fold the delta into a new main set at the
   serving prefix, flip to it, and only then close the retired handle's
   WAL fd — the new generation lazily opens its own on the next insert.
   An empty delta is a no-op answered with the current generation.
   [shard = Some k] (sharded only) folds member shard [k]'s slice of the
   delta and flips via {!flip_handle} — the other members keep serving
   their deltas untouched. *)
let checkpoint_locked t shard =
  let g = Swap.acquire t.sw in
  Fun.protect
    ~finally:(fun () -> Swap.release t.sw g)
    (fun () ->
      let fail e =
        Metrics.bump t.m `Checkpoint_failure;
        Error e
      in
      match (Swap.handle g, shard) with
      | Si.Single _, Some k ->
          Error
            (Si_error.Bad_query
               (Printf.sprintf
                  "CHECKPOINT shard=%d: the serving index is not sharded" k))
      | Si.Single si, None -> (
          if Si.pending si = 0 then Ok (0, Swap.gen_id g)
          else
            match Si.checkpoint si with
            | Error e -> fail e
            | Ok merged -> (
                match swap t (Swap.current_prefix t.sw) with
                | Error e ->
                    (* new set is published and the WAL truncated, but the
                       flip failed: the old generation (main + delta) still
                       answers identically to the new set — keep serving *)
                    fail e
                | Ok gen ->
                    Metrics.bump t.m `Checkpoint;
                    Si.close_wal si;
                    Ok (merged, gen)))
      | Si.Sharded sh, None -> (
          if Si.pending_sharded sh = 0 then Ok (0, Swap.gen_id g)
          else
            match Si.checkpoint_sharded sh with
            | Error e -> fail e
            | exception Sys_error what ->
                fail (Si_error.Io { path = Swap.current_prefix t.sw; what })
            | Ok merged -> (
                match swap t (Swap.current_prefix t.sw) with
                | Error e -> fail e
                | Ok gen ->
                    Metrics.bump t.m `Checkpoint;
                    Si.close_wal_sharded sh;
                    Ok (merged, gen)))
      | Si.Sharded sh, Some k -> (
          if k >= Si.shard_count sh then
            Error
              (Si_error.Bad_query
                 (Printf.sprintf "CHECKPOINT shard=%d: index has %d shards" k
                    (Si.shard_count sh)))
          else
            let old_k = (Si.shard_handles sh).(k) in
            if Si.pending old_k = 0 then Ok (0, Swap.gen_id g)
            else
              match Si.checkpoint_sharded ~shard:k sh with
              | Error e -> fail e
              | exception Sys_error what ->
                  fail (Si_error.Io { path = Swap.current_prefix t.sw; what })
              | Ok merged -> (
                  match
                    Si.reopen_shard ?cache_budget:t.cfg.cache_budget sh k
                  with
                  | Error e -> fail e
                  | exception Sys_error what ->
                      fail
                        (Si_error.Io { path = Swap.current_prefix t.sw; what })
                  | Ok sh' -> (
                      match flip_handle t (Si.Sharded sh') with
                      | Error e -> fail e
                      | Ok gen ->
                          Metrics.bump t.m `Checkpoint;
                          Si.close_wal old_k;
                          Ok (merged, gen)))))

(* ---- integrity repair (SCRUB / REPAIR / background scrub) --------------- *)

(* caller holds [t.ins_lock].  Rebuild from the corpus store + WAL delta,
   publish through the staged-rename protocol, and ride the generation
   swap — the shape of {!checkpoint_locked}, with {!Si.repair} in place
   of the WAL fold.  [shard = Some k] repairs one member shard and flips
   via {!flip_handle}; the other members keep serving untouched. *)
let repair_locked t shard =
  let g = Swap.acquire t.sw in
  Fun.protect
    ~finally:(fun () -> Swap.release t.sw g)
    (fun () ->
      let fail e =
        Metrics.bump t.m `Repair_failure;
        Error e
      in
      match (Swap.handle g, shard) with
      | Si.Single _, Some k ->
          Error
            (Si_error.Bad_query
               (Printf.sprintf
                  "REPAIR shard=%d: the serving index is not sharded" k))
      | Si.Single si, None -> (
          match Si.repair si with
          | Error e -> fail e
          | Ok trees -> (
              match swap t (Swap.current_prefix t.sw) with
              | Error e ->
                  (* repaired set is published but the flip failed: the
                     old quarantined generation keeps answering (exactly,
                     via the fallback) until a later swap succeeds *)
                  fail e
              | Ok gen ->
                  Metrics.bump t.m `Repair;
                  Si.close_wal si;
                  Ok (trees, gen)))
      | Si.Sharded sh, None -> (
          match Si.repair_sharded sh with
          | Error e -> fail e
          | exception Sys_error what ->
              fail (Si_error.Io { path = Swap.current_prefix t.sw; what })
          | Ok trees -> (
              match swap t (Swap.current_prefix t.sw) with
              | Error e -> fail e
              | Ok gen ->
                  Metrics.bump t.m `Repair;
                  Si.close_wal_sharded sh;
                  Ok (trees, gen)))
      | Si.Sharded sh, Some k -> (
          if k >= Si.shard_count sh then
            Error
              (Si_error.Bad_query
                 (Printf.sprintf "REPAIR shard=%d: index has %d shards" k
                    (Si.shard_count sh)))
          else
            let old_k = (Si.shard_handles sh).(k) in
            match Si.repair_sharded ~shard:k sh with
            | Error e -> fail e
            | exception Sys_error what ->
                fail (Si_error.Io { path = Swap.current_prefix t.sw; what })
            | Ok trees -> (
                match
                  Si.reopen_shard ?cache_budget:t.cfg.cache_budget sh k
                with
                | Error e -> fail e
                | exception Sys_error what ->
                    fail
                      (Si_error.Io { path = Swap.current_prefix t.sw; what })
                | Ok sh' -> (
                    match flip_handle t (Si.Sharded sh') with
                    | Error e -> fail e
                    | Ok gen ->
                        Metrics.bump t.m `Repair;
                        Si.close_wal old_k;
                        Ok (trees, gen)))))

let handle_repair t fd shard =
  match Mutex.protect t.ins_lock (fun () -> repair_locked t shard) with
  | Ok (trees, gen) ->
      write_all fd (Printf.sprintf "OK repaired=%d gen=%d\n" trees gen)
  | Error e ->
      write_all fd
        (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e))

(* one budgeted scrub pass over the serving generation; returns the
   bytes verified plus whether every member's cycle completed clean *)
let scrub_once t =
  let budget = Scrub.budget ?max_bytes:t.cfg.scrub_budget_bytes () in
  let reports =
    let g = Swap.acquire t.sw in
    Fun.protect
      ~finally:(fun () -> Swap.release t.sw g)
      (fun () ->
        match Swap.handle g with
        | Si.Single si -> [| Si.scrub ~budget si |]
        | Si.Sharded sh -> Si.scrub_sharded ~budget sh)
  in
  let bytes =
    Array.fold_left (fun a r -> a + r.Scrub.bytes_verified) 0 reports
  in
  Metrics.scrub_done t.m ~bytes;
  ( bytes,
    Array.for_all (fun r -> r.Scrub.complete) reports,
    Array.for_all (fun r -> r.Scrub.clean) reports )

let handle_scrub t fd repair =
  let bytes, complete, clean = scrub_once t in
  let state, quar = integrity_now t in
  if repair && quar > 0 then
    match Mutex.protect t.ins_lock (fun () -> repair_locked t None) with
    | Ok (trees, gen) ->
        write_all fd
          (Printf.sprintf "OK state=repaired quarantined=0 bytes=%d repaired=%d gen=%d\n"
             bytes trees gen)
    | Error e ->
        write_all fd
          (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e))
  else
    write_all fd
      (Printf.sprintf "OK state=%s quarantined=%d bytes=%d complete=%d clean=%d\n"
         (state_str state) quar bytes
         (if complete then 1 else 0)
         (if clean then 1 else 0))

(* the background scrubber's auto-repair trigger: the generation is
   quarantined and the damage pressure (scrub-localized bad keys plus
   queries already paying the fallback cost) reached the threshold *)
let maybe_auto_repair t =
  match t.cfg.auto_repair_threshold with
  | None -> ()
  | Some n when n <= 0 -> ()
  | Some n ->
      let pressure =
        let g = Swap.acquire t.sw in
        Fun.protect
          ~finally:(fun () -> Swap.release t.sw g)
          (fun () ->
            let _, quar = integrity_of (Swap.handle g) in
            if quar = 0 then 0
            else
              let st =
                match Swap.handle g with
                | Si.Single si -> Si.integrity si
                | Si.Sharded sh -> Si.integrity_sharded sh
              in
              max 1 (st.Si.quarantined_keys + st.Si.fallback_answers))
      in
      if pressure >= n then
        (* a failed repair is accounted (`Repair_failure) and retried on
           a later tick — the quarantined generation keeps serving
           exactly via the fallback either way *)
        ignore (Mutex.protect t.ins_lock (fun () -> repair_locked t None))

let over_threshold v = function None -> false | Some n -> n > 0 && v >= n

let maybe_auto_checkpoint t h =
  let pending, wal_bytes =
    match h with
    | Si.Single si -> (Si.pending si, Si.wal_bytes si)
    | Si.Sharded sh -> (Si.pending_sharded sh, Si.wal_bytes_sharded sh)
  in
  if
    over_threshold pending t.cfg.checkpoint_records
    || over_threshold wal_bytes t.cfg.checkpoint_bytes
  then
    (* the client's insert is already acknowledged; a failed background
       fold is accounted (`Checkpoint_failure) and retried on a later
       insert — the WAL keeps every acknowledged tree either way *)
    ignore (checkpoint_locked t None)

let handle_insert t fd text =
  match Si_treebank.Penn.parse_one_exn text with
  | exception Failure what ->
      Metrics.bump t.m `Bad_request;
      write_all fd (Protocol.err ~code:"bad_request" ("bad tree: " ^ what))
  | tree ->
      Mutex.protect t.ins_lock (fun () ->
          let g = Swap.acquire t.sw in
          Fun.protect
            ~finally:(fun () -> Swap.release t.sw g)
            (fun () ->
              match Swap.handle g with
              | Si.Single si -> (
                  match Si.insert si [ tree ] with
                  | Error e ->
                      write_all fd
                        (Protocol.err ~code:(Protocol.err_code e)
                           (Si_error.to_string e))
                  | Ok n ->
                      Metrics.bump t.m `Insert;
                      write_all fd
                        (Printf.sprintf "OK n=%d pending=%d gen=%d\n" n
                           (Si.pending si) (Swap.gen_id g));
                      maybe_auto_checkpoint t (Swap.handle g))
              | Si.Sharded sh -> (
                  (* the router decides ownership from the tree's global
                     id — the next id is the current total (inserts are
                     serialized under [ins_lock]) *)
                  let owner =
                    Shardmap.shard_of_tid
                      ~shards:(Si.shard_count sh)
                      (Si.sharded_total sh)
                  in
                  match Si.insert_sharded sh [ tree ] with
                  | Error e ->
                      write_all fd
                        (Protocol.err ~code:(Protocol.err_code e)
                           (Si_error.to_string e))
                  | exception Sys_error what ->
                      write_all fd (Protocol.err ~code:"io" what)
                  | Ok n ->
                      Metrics.bump t.m `Insert;
                      write_all fd
                        (Printf.sprintf "OK n=%d pending=%d gen=%d shard=%d\n"
                           n (Si.pending_sharded sh) (Swap.gen_id g) owner);
                      maybe_auto_checkpoint t (Swap.handle g))))

let handle_checkpoint t fd shard =
  match Mutex.protect t.ins_lock (fun () -> checkpoint_locked t shard) with
  | Ok (merged, gen) ->
      write_all fd (Printf.sprintf "OK merged=%d gen=%d\n" merged gen)
  | Error e ->
      write_all fd
        (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e))

(* SWAP shard=K: reopen member shard [k] from its on-disk prefix and
   flip.  Under [ins_lock] so a racing INSERT can't append to the old
   member's delta between the reopen (which replays the WAL) and the
   flip — that tree would be acknowledged yet missing from the new
   generation's delta. *)
let handle_swap_shard t fd k =
  let r =
    Mutex.protect t.ins_lock (fun () ->
        let g = Swap.acquire t.sw in
        Fun.protect
          ~finally:(fun () -> Swap.release t.sw g)
          (fun () ->
            match Swap.handle g with
            | Si.Single _ ->
                Error
                  (Si_error.Bad_query
                     (Printf.sprintf
                        "SWAP shard=%d: the serving index is not sharded" k))
            | Si.Sharded sh -> (
                if k >= Si.shard_count sh then
                  Error
                    (Si_error.Bad_query
                       (Printf.sprintf "SWAP shard=%d: index has %d shards" k
                          (Si.shard_count sh)))
                else
                  match
                    Si.reopen_shard ?cache_budget:t.cfg.cache_budget sh k
                  with
                  | Error e ->
                      Metrics.bump t.m `Swap_failure;
                      Error e
                  | exception Sys_error what ->
                      Metrics.bump t.m `Swap_failure;
                      Error
                        (Si_error.Io { path = Swap.current_prefix t.sw; what })
                  | Ok sh' -> flip_handle t (Si.Sharded sh'))))
  in
  match r with
  | Ok gen -> write_all fd (Printf.sprintf "OK gen=%d shard=%d\n" gen k)
  | Error e ->
      write_all fd
        (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e))

let worker_json t =
  Array.to_list
    (Array.mapi
       (fun i ws ->
         let c = ws.w_cache in
         Jsonx.Obj
           [
             ("worker", Jsonx.Int i);
             ("queries", Jsonx.Int ws.w_queries);
             ("errors", Jsonx.Int ws.w_errors);
             ("busy_ms", Jsonx.Float (float_of_int ws.w_busy_ns /. 1e6));
             ( "cache",
               Jsonx.Obj
                 [
                   ("hits", Jsonx.Int c.Cache.hits);
                   ("misses", Jsonx.Int c.Cache.misses);
                   ("evictions", Jsonx.Int c.Cache.evictions);
                   ("resident", Jsonx.Int c.Cache.resident);
                   ("entries", Jsonx.Int c.Cache.entries);
                 ] );
           ])
       t.wstats)

let stats_json t =
  let g = Swap.acquire t.sw in
  Fun.protect
    ~finally:(fun () -> Swap.release t.sw g)
    (fun () ->
      let state, quar = integrity_of (Swap.handle g) in
      let serving =
        Metrics.serving_json t.m ~gen:(Swap.gen_id g)
          ~prefix:(Swap.current_prefix t.sw) ~draining:(stopping t)
          ~integrity_state:(state_str state) ~quarantined:quar
          ~workers:(worker_json t)
      in
      match Swap.handle g with
      | Si.Single si ->
          Jsonx.Obj [ ("index", Metrics.index_json si); ("serving", serving) ]
      | Si.Sharded sh ->
          Jsonx.Obj
            [
              ("index", Metrics.sharded_index_json sh);
              ("shards", Metrics.shards_json sh);
              ("serving", serving);
            ])

let handle_request t ws cache_ref fd peer line =
  Metrics.bump t.m `Request;
  match
    Si_error.guard (fun () -> Failpoint.hit "serve.parse")
  with
  | Error e ->
      write_all fd (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e));
      `Continue
  | exception Sys_error what ->
      write_all fd (Protocol.err ~code:"io" what);
      `Continue
  | Ok () -> (
      match Protocol.parse line with
      | Error reason ->
          Metrics.bump t.m `Bad_request;
          write_all fd (Protocol.err ~code:"bad_request" reason);
          `Continue
      | Ok (Query (pattern, opts)) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_query t ws cache_ref fd peer pattern opts;
          `Continue
      | Ok (Insert text) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_insert t fd text;
          `Continue
      | Ok (Checkpoint shard) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_checkpoint t fd shard;
          `Continue
      | Ok Stats ->
          write_all fd ("OK " ^ Jsonx.to_string (stats_json t) ^ "\n");
          `Continue
      | Ok Health ->
          (* a shard-leg brownout never quarantines, so transient
             degradation keeps the OK token — only persistent integrity
             quarantine flips it to DEGRADED *)
          let state, quar = integrity_now t in
          write_all fd
            (Printf.sprintf
               "%s gen=%d uptime_s=%.1f inflight=%d draining=%d \
                integrity=%s quarantined=%d\n"
               (if state = `Ok then "OK" else "DEGRADED")
               (Swap.current_id t.sw) (Metrics.uptime_s t.m)
               (Metrics.inflight t.m)
               (if stopping t then 1 else 0)
               (state_str state) quar);
          `Continue
      | Ok (Swap prefix) ->
          (match swap t prefix with
          | Ok gen ->
              write_all fd (Printf.sprintf "OK gen=%d prefix=%s\n" gen prefix)
          | Error e ->
              write_all fd
                (Protocol.err ~code:(Protocol.err_code e) (Si_error.to_string e)));
          `Continue
      | Ok (Swap_shard k) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_swap_shard t fd k;
          `Continue
      | Ok (Scrub repair) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_scrub t fd repair;
          `Continue
      | Ok (Repair shard) ->
          if stopping t then
            write_all fd
              (Protocol.err ~code:"shutting_down" "server is draining")
          else handle_repair t fd shard;
          `Continue
      | Ok Quit ->
          write_all fd "OK bye\n";
          `Close
      | Ok Shutdown ->
          write_all fd "OK draining\n";
          begin_shutdown t;
          `Continue)

let handle_conn t ws fd peer =
  let pending = ref "" in
  let cache_ref = ref None in
  let rec loop () =
    match read_line t fd pending with
    | None -> ()
    | Some line -> (
        match handle_request t ws cache_ref fd peer line with
        | `Continue -> loop ()
        | `Close -> ())
  in
  (try loop () with
  | Conn_lost -> ()
  | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Metrics.bump t.m `Conn_closed

(* ---- the domains -------------------------------------------------------- *)

let worker_loop t i =
  let ws = t.wstats.(i) in
  let pop () =
    Mutex.protect t.qlock (fun () ->
        let rec wait () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if t.stop_flag then None
          else begin
            Condition.wait t.qcond t.qlock;
            wait ()
          end
        in
        wait ())
  in
  let rec go () =
    match pop () with
    | None -> ()
    | Some (fd, peer) ->
        handle_conn t ws fd peer;
        go ()
  in
  go ()

(* the background scrubber: one budgeted pass every [scrub_interval_s],
   sleeping in [idle_tick_s] slices so a drain stops it promptly.  A
   crashed pass never kills the domain — scrub is advisory; the query
   path discovers damage on its own either way. *)
let scrubber_loop t interval =
  let rec go () =
    if stopping t then ()
    else begin
      let slept = ref 0. in
      while (not (stopping t)) && !slept < interval do
        let tick = Float.min t.cfg.idle_tick_s (interval -. !slept) in
        Unix.sleepf tick;
        slept := !slept +. tick
      done;
      if not (stopping t) then begin
        (try
           ignore (scrub_once t);
           maybe_auto_repair t
         with _ -> ());
        go ()
      end
    end
  in
  go ()

let acceptor_loop t =
  let rec go () =
    if stopping t then ()
    else begin
      (match Unix.select [ t.lsock ] [] [] t.cfg.idle_tick_s with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.lsock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | fd, addr -> (
              let peer =
                match addr with
                | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
                | Unix.ADDR_UNIX p -> p
              in
              Metrics.bump t.m `Conn_accepted;
              match Si_error.guard (fun () -> Failpoint.hit "serve.accept") with
              | Error _ | (exception Sys_error _) ->
                  (* injected accept fault: this connection is refused,
                     the acceptor lives on *)
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  Metrics.bump t.m `Conn_closed
              | Ok () ->
                  let enqueued =
                    Mutex.protect t.qlock (fun () ->
                        if
                          Queue.length t.queue >= t.cfg.accept_queue
                          || t.stop_flag
                        then false
                        else begin
                          Queue.push (fd, peer) t.queue;
                          Condition.signal t.qcond;
                          true
                        end)
                  in
                  if not enqueued then begin
                    (* bounded queue is full: shed at the door with a
                       cheap, immediate answer instead of queueing *)
                    Metrics.bump t.m `Shed;
                    Unix.set_nonblock fd;
                    (try
                       ignore
                         (Unix.write_substring fd
                            "ERR overloaded accept queue full\n" 0 33)
                     with Unix.Unix_error _ -> ());
                    (try Unix.close fd with Unix.Unix_error _ -> ());
                    Metrics.bump t.m `Conn_closed
                  end))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  (* wake any worker still parked on an empty queue *)
  Mutex.protect t.qlock (fun () -> Condition.broadcast t.qcond)

(* ---- lifecycle ---------------------------------------------------------- *)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.accept_queue < 1 then
    invalid_arg "Server.start: accept_queue must be >= 1";
  match Swap.create ?cache_budget:cfg.cache_budget cfg.prefix with
  | Error _ as e -> e
  | Ok sw -> (
      (* a peer closing mid-response must be an EPIPE on the write, not a
         fatal signal *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt lsock Unix.SO_REUSEADDR true;
        Unix.bind lsock
          (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
        Unix.listen lsock 128;
        Unix.getsockname lsock
      with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close lsock with Unix.Unix_error _ -> ());
          Error
            (Si_error.Io
               {
                 path = Printf.sprintf "%s:%d" cfg.host cfg.port;
                 what = "bind/listen: " ^ Unix.error_message err;
               })
      | addr ->
          let bound_port =
            match addr with Unix.ADDR_INET (_, p) -> p | _ -> cfg.port
          in
          let t =
            {
              cfg;
              lsock;
              bound_port;
              sw;
              adm = Admission.create cfg.admission;
              m = Metrics.create ();
              qlock = Mutex.create ();
              qcond = Condition.create ();
              ins_lock = Mutex.create ();
              queue = Queue.create ();
              stop_flag = false;
              wstats =
                Array.init cfg.workers (fun _ ->
                    {
                      w_queries = 0;
                      w_errors = 0;
                      w_busy_ns = 0;
                      w_cache = Cache.zero_stats 0;
                    });
              domains = [];
            }
          in
          let workers =
            List.init cfg.workers (fun i ->
                Domain.spawn (fun () -> worker_loop t i))
          in
          let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
          let scrubber =
            match cfg.scrub_interval_s with
            | Some iv when iv > 0. ->
                [ Domain.spawn (fun () -> scrubber_loop t iv) ]
            | _ -> []
          in
          t.domains <- acceptor :: (scrubber @ workers);
          Ok t)

let join t = List.iter Domain.join t.domains

let stop t =
  begin_shutdown t;
  join t
