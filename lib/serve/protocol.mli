(** The wire protocol of the network serving layer (DESIGN.md §11).

    Newline-delimited text, one request per line, ASCII verbs.  Query
    patterns contain no whitespace (the Penn-style pattern grammar), so a
    request line splits on spaces unambiguously:

    {v
    QUERY <pattern> [k=v ...]      evaluate; options override the
                                   server's per-class defaults
    INSERT <penn tree>             WAL-append one tree into the live index
    CHECKPOINT [shard=K]           fold the WAL delta into a new main
                                   index and swap to it; shard=K folds
                                   one member shard only (sharded)
    STATS                          one-line JSON (the stats --json schema)
    HEALTH                         one-line key=value liveness summary
    SWAP <prefix>                  hot-swap to the index at <prefix>
    SWAP shard=K                   reopen member shard K and flip
    SCRUB [repair=1]               one budgeted integrity pass over the
                                   lazily-verified regions; with
                                   repair=1, repair + swap if it (or a
                                   query before it) found index damage
    REPAIR [shard=K]               rebuild the index (or member shard K)
                                   from the corpus store and swap to it
    QUIT                           close this connection
    SHUTDOWN                       begin graceful server drain
    v}

    [INSERT] is the one verb whose argument may contain spaces (Penn
    bracketing is space-separated), so its payload is everything after
    the verb, taken verbatim — never tokenized.  It answers
    [OK n=<total trees> pending=<delta trees> gen=<generation>];
    [CHECKPOINT] answers [OK merged=<trees> gen=<new generation>] after
    the post-publish swap.

    [QUERY] options: [deadline_ms=F], [max_steps=N],
    [max_decoded_bytes=N], [max_results=N], [partial=0|1],
    [class=interactive|batch], [client=ID] (admission quota key),
    [count_only=0|1] (suppress the match body).

    Responses: [QUERY] answers with a status line
    [OK n=<matches> truncated=<0|1> gen=<generation> us=<latency>]
    followed by [n] lines [M <tid> <node>] (unless [count_only=1]) and a
    lone [.] terminator.  Every other verb answers with a single line —
    [OK ...] or [ERR <code> <detail>]; error codes are the
    {!Si_error.t} taxonomy plus the admission outcomes ([overloaded],
    [quota_exceeded], [shutting_down], [bad_request]). *)

type query_opts = {
  deadline_ms : float option;
  max_steps : int option;
  max_decoded_bytes : int option;
  max_results : int option;
  partial : bool option;  (** [None]: inherit the class default *)
  klass : [ `Interactive | `Batch ];
  client : string option;  (** quota key; default: the peer address *)
  count_only : bool;
}

type request =
  | Query of string * query_opts  (** pattern, options *)
  | Insert of string  (** raw Penn tree text, untokenized *)
  | Checkpoint of int option
      (** [CHECKPOINT [shard=K]] — [Some k] folds only shard [k]'s slice
          of the delta (sharded serving); [None] folds everything *)
  | Stats
  | Health
  | Swap of string  (** index prefix to open *)
  | Swap_shard of int
      (** [SWAP shard=K] — per-shard zero-downtime flip: reopen member
          shard [k] from disk and flip the generation pointer *)
  | Scrub of bool
      (** [SCRUB [repair=1]] — run one budgeted scrub pass now (the same
          pass the background scrubber runs); answers
          [OK state=<ok|degraded|repairing> ...].  With [repair=1], a
          quarantined index is repaired and swapped in the same request. *)
  | Repair of int option
      (** [REPAIR [shard=K]] — rebuild the index (or one member shard)
          from the corpus store + WAL delta, publish, and ride the
          generation swap; answers [OK repaired=<trees> gen=<g>]. *)
  | Quit
  | Shutdown

val parse : string -> (request, string) result
(** Parse one request line (without its terminating newline).  [Error]
    carries a human-readable reason, answered as [ERR bad_request _]. *)

val limits_of_opts :
  default:Si_core.Limits.t -> query_opts -> Si_core.Limits.t
(** The effective per-request limits: each option overrides its field of
    the class default; unset options inherit. *)

(** {1 Response rendering} — every writer below emits the trailing
    newline itself. *)

val ok_query :
  extra:string -> n:int -> truncated:bool -> gen:int -> us:float -> string
(** The [QUERY] status line.  [extra] is appended verbatim before the
    newline — [""] for a single index, [ shards=N degraded=K] on the
    sharded path, plus [ degraded=integrity] when any part of the answer
    came from the quarantine fallback instead of the index proper (the
    answer is still exact unless [truncated=1]). *)

val match_line : Buffer.t -> int * int -> unit
(** Append one [M <tid> <node>] body line. *)

val terminator : string
(** The body terminator line ["."]. *)

val err_code : Si_core.Si_error.t -> string
(** The wire code of a typed error ([bad_query], [timeout], ...). *)

val err : code:string -> string -> string
(** [ERR <code> <detail>] — [detail] is flattened to one line. *)
