open Si_core

type config = {
  interactive : Limits.t;
  batch : Limits.t;
  quota_rps : float option;
  quota_burst : float;
  brownout_inflight : int option;
  shed_inflight : int option;
  brownout_deadline_ns : int;
}

let default_config =
  {
    interactive = Limits.none;
    batch = Limits.none;
    quota_rps = None;
    quota_burst = 8.;
    brownout_inflight = None;
    shed_inflight = None;
    brownout_deadline_ns = 50_000_000;
  }

type bucket = { mutable tokens : float; mutable last_ns : int }

type t = {
  cfg : config;
  lock : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
}

(* a hostile client-id stream must not grow the bucket table unboundedly;
   past this many distinct clients the stalest half is evicted *)
let max_clients = 8192

let create cfg = { cfg; lock = Mutex.create (); buckets = Hashtbl.create 64 }
let config t = t.cfg

(* Bounded memory without amnesty: drop the buckets longest untouched
   (oldest [last_ns]) down to half capacity.  [take_token] refreshes
   [last_ns] on every request — denied ones included — so the clients
   driving the flood keep their drained buckets and stay rate-limited;
   a reset here would hand the abuser a fresh full burst.  Runs under
   [t.lock] at most once per [max_clients/2] distinct new clients. *)
let evict_stalest buckets =
  let by_age =
    Hashtbl.fold (fun key b acc -> (b.last_ns, key) :: acc) buckets []
  in
  let by_age = List.sort compare by_age in
  let excess = Hashtbl.length buckets - (max_clients / 2) in
  List.iteri
    (fun i (_, key) -> if i < excess then Hashtbl.remove buckets key)
    by_age

let take_token t client =
  match t.cfg.quota_rps with
  | None -> true
  | Some rps ->
      Mutex.protect t.lock (fun () ->
          if Hashtbl.length t.buckets > max_clients then
            evict_stalest t.buckets;
          let now = Monotonic.now_ns () in
          let b =
            match Hashtbl.find_opt t.buckets client with
            | Some b -> b
            | None ->
                let b = { tokens = t.cfg.quota_burst; last_ns = now } in
                Hashtbl.add t.buckets client b;
                b
          in
          let dt = float_of_int (now - b.last_ns) /. 1e9 in
          b.tokens <- Float.min t.cfg.quota_burst (b.tokens +. (dt *. rps));
          b.last_ns <- now;
          if b.tokens >= 1. then begin
            b.tokens <- b.tokens -. 1.;
            true
          end
          else false)

type verdict =
  | Admit of Limits.t * bool
  | Reject_quota
  | Reject_overloaded

let admit t ~client ~inflight (opts : Protocol.query_opts) =
  if not (take_token t client) then Reject_quota
  else
    match t.cfg.shed_inflight with
    | Some shed when inflight > shed -> Reject_overloaded
    | _ ->
        let default =
          match opts.Protocol.klass with
          | `Interactive -> t.cfg.interactive
          | `Batch -> t.cfg.batch
        in
        let limits = Protocol.limits_of_opts ~default opts in
        let browned =
          match t.cfg.brownout_inflight with
          | Some b -> inflight > b
          | None -> false
        in
        if not browned then Admit (limits, false)
        else
          let deadline_ns =
            match limits.Limits.deadline_ns with
            | Some d -> Some (min d t.cfg.brownout_deadline_ns)
            | None -> Some t.cfg.brownout_deadline_ns
          in
          Admit ({ limits with Limits.deadline_ns; partial = true }, true)
