open Si_core

let ring_size = 4096

type t = {
  lock : Mutex.t;
  started_ns : int;
  mutable conns_accepted : int;
  mutable conns_closed : int;
  mutable requests : int;
  mutable bad_requests : int;
  mutable queries_ok : int;
  mutable queries_err : int;
  mutable truncated : int;
  mutable shed : int;
  mutable quota_rejected : int;
  mutable browned : int;
  mutable degraded : int;
  mutable swaps : int;
  mutable swap_failures : int;
  mutable inserts : int;
  mutable checkpoints : int;
  mutable checkpoint_failures : int;
  mutable integrity_fallbacks : int;
  mutable scrub_passes : int;
  mutable scrub_bytes : int;
  mutable repairs : int;
  mutable repair_failures : int;
  mutable inflight : int;
  ring : float array;  (* last [ring_size] query latencies, ns *)
  mutable ring_len : int;
  mutable ring_pos : int;
}

let create () =
  {
    lock = Mutex.create ();
    started_ns = Monotonic.now_ns ();
    conns_accepted = 0;
    conns_closed = 0;
    requests = 0;
    bad_requests = 0;
    queries_ok = 0;
    queries_err = 0;
    truncated = 0;
    shed = 0;
    quota_rejected = 0;
    browned = 0;
    degraded = 0;
    swaps = 0;
    swap_failures = 0;
    inserts = 0;
    checkpoints = 0;
    checkpoint_failures = 0;
    integrity_fallbacks = 0;
    scrub_passes = 0;
    scrub_bytes = 0;
    repairs = 0;
    repair_failures = 0;
    inflight = 0;
    ring = Array.make ring_size 0.;
    ring_len = 0;
    ring_pos = 0;
  }

type counter =
  [ `Conn_accepted
  | `Conn_closed
  | `Request
  | `Bad_request
  | `Shed
  | `Quota
  | `Browned
  | `Degraded
  | `Swap
  | `Swap_failure
  | `Insert
  | `Checkpoint
  | `Checkpoint_failure
  | `Integrity_fallback
  | `Repair
  | `Repair_failure ]

let bump t c =
  Mutex.protect t.lock (fun () ->
      match c with
      | `Conn_accepted -> t.conns_accepted <- t.conns_accepted + 1
      | `Conn_closed -> t.conns_closed <- t.conns_closed + 1
      | `Request -> t.requests <- t.requests + 1
      | `Bad_request -> t.bad_requests <- t.bad_requests + 1
      | `Shed -> t.shed <- t.shed + 1
      | `Quota -> t.quota_rejected <- t.quota_rejected + 1
      | `Browned -> t.browned <- t.browned + 1
      | `Degraded -> t.degraded <- t.degraded + 1
      | `Swap -> t.swaps <- t.swaps + 1
      | `Swap_failure -> t.swap_failures <- t.swap_failures + 1
      | `Insert -> t.inserts <- t.inserts + 1
      | `Checkpoint -> t.checkpoints <- t.checkpoints + 1
      | `Checkpoint_failure ->
          t.checkpoint_failures <- t.checkpoint_failures + 1
      | `Integrity_fallback ->
          t.integrity_fallbacks <- t.integrity_fallbacks + 1
      | `Repair -> t.repairs <- t.repairs + 1
      | `Repair_failure -> t.repair_failures <- t.repair_failures + 1)

let scrub_done t ~bytes =
  Mutex.protect t.lock (fun () ->
      t.scrub_passes <- t.scrub_passes + 1;
      t.scrub_bytes <- t.scrub_bytes + bytes)

let query_done t ~ok ~truncated ~latency_ns =
  Mutex.protect t.lock (fun () ->
      if ok then t.queries_ok <- t.queries_ok + 1
      else t.queries_err <- t.queries_err + 1;
      if truncated then t.truncated <- t.truncated + 1;
      t.ring.(t.ring_pos) <- latency_ns;
      t.ring_pos <- (t.ring_pos + 1) mod ring_size;
      if t.ring_len < ring_size then t.ring_len <- t.ring_len + 1)

let inflight_enter t =
  Mutex.protect t.lock (fun () ->
      t.inflight <- t.inflight + 1;
      t.inflight)

let inflight_exit t =
  Mutex.protect t.lock (fun () -> t.inflight <- t.inflight - 1)

let inflight t = Mutex.protect t.lock (fun () -> t.inflight)

let uptime_s t = Monotonic.elapsed_s t.started_ns

let queries t =
  Mutex.protect t.lock (fun () -> t.queries_ok + t.queries_err)

(* nearest-rank on a sorted snapshot — same estimator si_tool's offline
   serve report uses *)
let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let serving_json t ~gen ~prefix ~draining ~integrity_state ~quarantined
    ~workers =
  let snap =
    Mutex.protect t.lock (fun () ->
        (Array.sub t.ring 0 t.ring_len, { t with lock = t.lock }))
  in
  let lat, c = snap in
  Array.sort compare lat;
  let up = uptime_s t in
  let evaluated = c.queries_ok + c.queries_err in
  Jsonx.Obj
    [
      ("uptime_s", Jsonx.Float up);
      ("qps", Jsonx.Float (if up > 0. then float_of_int evaluated /. up else 0.));
      ("inflight", Jsonx.Int c.inflight);
      ("draining", Jsonx.Bool draining);
      ( "conns",
        Jsonx.Obj
          [
            ("accepted", Jsonx.Int c.conns_accepted);
            ("open", Jsonx.Int (c.conns_accepted - c.conns_closed));
          ] );
      ("requests", Jsonx.Int c.requests);
      ( "queries",
        Jsonx.Obj
          [
            ("ok", Jsonx.Int c.queries_ok);
            ("error", Jsonx.Int c.queries_err);
            ("truncated", Jsonx.Int c.truncated);
            ("browned_out", Jsonx.Int c.browned);
            ("degraded", Jsonx.Int c.degraded);
          ] );
      ( "rejected",
        Jsonx.Obj
          [
            ("overloaded", Jsonx.Int c.shed);
            ("quota", Jsonx.Int c.quota_rejected);
            ("bad_request", Jsonx.Int c.bad_requests);
          ] );
      ( "swap",
        Jsonx.Obj
          [
            ("generation", Jsonx.Int gen);
            ("prefix", Jsonx.Str prefix);
            ("completed", Jsonx.Int c.swaps);
            ("failed", Jsonx.Int c.swap_failures);
          ] );
      ( "wal",
        Jsonx.Obj
          [
            ("inserts", Jsonx.Int c.inserts);
            ("checkpoints", Jsonx.Int c.checkpoints);
            ("checkpoint_failures", Jsonx.Int c.checkpoint_failures);
          ] );
      ( "integrity",
        Jsonx.Obj
          [
            ("state", Jsonx.Str integrity_state);
            ("quarantined", Jsonx.Int quarantined);
            ("fallback_answers", Jsonx.Int c.integrity_fallbacks);
            ("scrub_passes", Jsonx.Int c.scrub_passes);
            ("scrub_bytes", Jsonx.Int c.scrub_bytes);
            ("repairs", Jsonx.Int c.repairs);
            ("repair_failures", Jsonx.Int c.repair_failures);
          ] );
      ( "latency_ns",
        Jsonx.Obj
          [
            ("samples", Jsonx.Int (Array.length lat));
            ("p50", Jsonx.Float (quantile lat 0.50));
            ("p95", Jsonx.Float (quantile lat 0.95));
            ("p99", Jsonx.Float (quantile lat 0.99));
          ] );
      ("workers", Jsonx.Arr workers);
    ]

(* mapped SIDX4 handles report the mapping sizes (.idx + .trees); heap
   handles report 0 — the distinction the stats CI check pins *)
let mapped_bytes_of si =
  (match Builder.mapped_stats (Si.index si) with
  | Some m -> m.Builder.mapped_bytes
  | None -> 0)
  + (match Corpus.store (Si.corpus si) with
    | Some st -> Treestore.mapped_bytes st
    | None -> 0)

let backend_str si =
  match Si.format si with `Sidx4 -> "mapped" | `Sidx3 -> "heap"

let index_json si =
  let s = Si.stats si in
  Jsonx.Obj
    [
      ("scheme", Jsonx.Str (Coding.scheme_to_string (Si.scheme si)));
      ("mss", Jsonx.Int (Si.mss si));
      ("backend", Jsonx.Str (backend_str si));
      ("trees", Jsonx.Int s.Builder.trees);
      ("nodes", Jsonx.Int s.Builder.nodes);
      ("keys", Jsonx.Int s.Builder.keys);
      ("postings", Jsonx.Int s.Builder.postings);
      ("idx_bytes", Jsonx.Int s.Builder.bytes);
      ("mapped_bytes", Jsonx.Int (mapped_bytes_of si));
    ]

let sharded_index_json sh =
  let hs = Si.shard_handles sh in
  let stats = Array.map Si.stats hs in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  (* scheme/mss are manifest-pinned identical across members — report
     shard 0's (open_sharded guarantees shards >= 1) *)
  Jsonx.Obj
    [
      ("scheme", Jsonx.Str (Coding.scheme_to_string (Si.scheme hs.(0))));
      ("mss", Jsonx.Int (Si.mss hs.(0)));
      ("backend", Jsonx.Str "sharded");
      ("trees", Jsonx.Int (sum (fun s -> s.Builder.trees)));
      ("nodes", Jsonx.Int (sum (fun s -> s.Builder.nodes)));
      ("keys", Jsonx.Int (sum (fun s -> s.Builder.keys)));
      ("postings", Jsonx.Int (sum (fun s -> s.Builder.postings)));
      ("idx_bytes", Jsonx.Int (sum (fun s -> s.Builder.bytes)));
      ( "mapped_bytes",
        Jsonx.Int (Array.fold_left (fun acc si -> acc + mapped_bytes_of si) 0 hs)
      );
    ]

let shards_json sh =
  let hs = Si.shard_handles sh in
  Jsonx.Obj
    [
      ("count", Jsonx.Int (Array.length hs));
      ("router", Jsonx.Str Shardmap.router);
      ("total_trees", Jsonx.Int (Si.sharded_total sh));
      ("pending", Jsonx.Int (Si.pending_sharded sh));
      ("wal_bytes", Jsonx.Int (Si.wal_bytes_sharded sh));
      ( "per_shard",
        Jsonx.Arr
          (Array.to_list
             (Array.mapi
                (fun i si ->
                  Jsonx.Obj
                    [
                      ("shard", Jsonx.Int i);
                      ("backend", Jsonx.Str (backend_str si));
                      ("trees", Jsonx.Int (Si.stats si).Builder.trees);
                      ("pending", Jsonx.Int (Si.pending si));
                      ("wal_bytes", Jsonx.Int (Si.wal_bytes si));
                    ])
                hs)) );
    ]
