(** Serving metrics: admission/traffic counters and a latency reservoir.

    One instance per server, shared by the acceptor and every worker
    domain; mutators take the internal mutex (the critical sections are a
    few loads and stores — contention is irrelevant next to a query
    evaluation).  The latency reservoir keeps the last {!ring_size}
    per-query wall latencies; percentiles are computed over a snapshot,
    so they describe recent traffic, not all-time.

    {!serving_json} and {!index_json} define the machine-readable schema
    shared by the server's [STATS] verb and [si_tool stats --json] — one
    schema, two producers, validated by the CI serve-smoke job. *)

type t

val create : unit -> t
(** Counters zeroed, uptime clock started (monotonic). *)

val ring_size : int
(** Capacity of the latency reservoir (4096). *)

type counter =
  [ `Conn_accepted  (** connection taken off the listen socket *)
  | `Conn_closed
  | `Request  (** any request line received (admin verbs included) *)
  | `Bad_request  (** line refused by the protocol parser *)
  | `Shed  (** QUERY rejected: overloaded *)
  | `Quota  (** QUERY rejected: client over its token bucket *)
  | `Browned  (** QUERY admitted but degraded by brownout *)
  | `Degraded
    (** sharded QUERY answered from a partial shard set (one or more
        shard legs failed — brownout, not a 503) *)
  | `Swap  (** completed generation flip *)
  | `Swap_failure  (** SWAP that aborted, old generation kept *)
  | `Insert  (** INSERT accepted: tree WAL-appended and live in the delta *)
  | `Checkpoint  (** delta folded into a new main set and swapped in *)
  | `Checkpoint_failure
    (** checkpoint merge/publish/swap aborted; WAL + delta still serve *)
  | `Integrity_fallback
    (** QUERY answered by the oracle fallback over the corpus store
        because the index is quarantined (exact, slower) *)
  | `Repair  (** completed integrity repair: rebuilt, published, swapped *)
  | `Repair_failure
    (** repair aborted; the quarantined generation keeps serving via
        the fallback *) ]

val bump : t -> counter -> unit

val scrub_done : t -> bytes:int -> unit
(** Account one completed scrub pass (background or [SCRUB] verb) and
    the bytes it verified. *)

val query_done : t -> ok:bool -> truncated:bool -> latency_ns:float -> unit
(** Account one evaluated QUERY (admitted ones only — rejections are
    {!bump}ed, not latency-sampled). *)

val inflight_enter : t -> int
(** Admit one query into evaluation; returns the in-flight count
    {e including} this one — the load-shedding signal. *)

val inflight_exit : t -> unit

val inflight : t -> int
(** The in-flight gauge right now. *)

val uptime_s : t -> float
val queries : t -> int
(** Total evaluated queries (ok + error). *)

val serving_json :
  t ->
  gen:int ->
  prefix:string ->
  draining:bool ->
  integrity_state:string ->
  quarantined:int ->
  workers:Jsonx.t list ->
  Jsonx.t
(** The ["serving"] object: uptime, qps (evaluated queries / uptime),
    in-flight gauge, connection/request/rejection counters, swap
    counters and current generation, WAL counters (inserts,
    checkpoints, checkpoint failures), an ["integrity"] object
    ([state]/[quarantined] as supplied by the server plus the fallback,
    scrub and repair counters), latency percentiles over the reservoir
    snapshot, and the per-worker objects supplied by the server
    (queries, errors, busy time, per-domain cache counters). *)

val index_json : Si_core.Si.t -> Jsonx.t
(** The ["index"] object: scheme, mss, trees, nodes, keys, postings,
    flattened bytes — identical fields from both producers. *)

val sharded_index_json : Si_core.Si.sharded -> Jsonx.t
(** The ["index"] object of a sharded handle: same fields, counters
    summed over the member shards, [backend = "sharded"]. *)

val shards_json : Si_core.Si.sharded -> Jsonx.t
(** The ["shards"] object: shard count, router version, global tree
    total, aggregate pending/WAL debt, and a [per_shard] array (trees,
    pending, WAL bytes, backend per member). *)
