(** Admission control: deadline/budget classes, per-client quotas, and
    load shedding (DESIGN.md §11).

    Policy, in admission order:

    + {b Quota} — each client id (the [client=] request option, defaulting
      to the peer address) draws from its own token bucket
      ([quota_rps] tokens/s, capacity [quota_burst]); an empty bucket
      rejects with [quota_exceeded] before any work is done.  The bucket
      table is bounded: past 8192 distinct clients the stalest buckets
      (oldest last touch, denials count as touches) are evicted down to
      half capacity — active clients, rate-limited abusers included, keep
      their bucket state.
    + {b Shedding} — with the admitted query counted, an in-flight total
      above [shed_inflight] rejects with [overloaded]: under pressure the
      server answers cheaply and immediately instead of queueing
      unboundedly.
    + {b Brownout} — between [brownout_inflight] and the shed threshold,
      the query is admitted but degraded: [partial] is forced on and the
      deadline is clamped to [brownout_deadline_ns], so answers get
      truncated-but-useful instead of slow ({!Si_core.Limits} degradation
      contract — a truncated answer is a subset of the exact one, never
      wrong).
    + {b Classes} — the request's [class=] picks its {!Si_core.Limits}
      defaults: [interactive] (tight deadline) or [batch] (looser);
      per-request options override fields individually.

    Admission never blocks: every path is a few mutex-guarded loads, so
    the accept/parse loop stays responsive under overload. *)

type config = {
  interactive : Si_core.Limits.t;  (** class default limits *)
  batch : Si_core.Limits.t;
  quota_rps : float option;  (** tokens per second per client; [None] = off *)
  quota_burst : float;  (** bucket capacity (also the initial fill) *)
  brownout_inflight : int option;  (** degrade above this many in-flight *)
  shed_inflight : int option;  (** reject above this many in-flight *)
  brownout_deadline_ns : int;  (** deadline forced while browned out *)
}

val default_config : config
(** No quotas, no thresholds (admit everything exactly as asked),
    classes [Limits.none] / [Limits.none], 50 ms brownout deadline. *)

type t

val create : config -> t

type verdict =
  | Admit of Si_core.Limits.t * bool
      (** effective limits, and whether brownout degraded them *)
  | Reject_quota
  | Reject_overloaded

val admit :
  t -> client:string -> inflight:int -> Protocol.query_opts -> verdict
(** [inflight] is the in-flight count {e including} the candidate (the
    value {!Metrics.inflight_enter} returned). *)

val config : t -> config
