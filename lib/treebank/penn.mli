(** Penn-treebank bracketed I/O.

    Grammar: [tree ::= atom | '(' atom tree* ')'] where an atom is any run
    of characters excluding parentheses and whitespace.  [(NP (DT the))]
    parses to an [NP] node with a [DT] child whose child is the leaf [the].
    The writer is {!Tree.pp}; [parse (Tree.to_string t) = [t]]. *)

val parse : string -> (Tree.t list, string) result
(** Parse every tree in the input (trees are separated by whitespace). *)

val parse_exn : string -> Tree.t list
(** Like {!parse}; raises [Failure] with the error message. *)

val parse_one_exn : string -> Tree.t
(** Parse exactly one tree; raises [Failure] otherwise. *)

val read_file : string -> Tree.t list
(** Parse a corpus file (any whitespace between trees, e.g. one per line). *)

val write_file : string -> Tree.t list -> unit
(** Write one tree per line. *)
