(** Flattened, interval-annotated trees.

    An annotated tree is an arena of int arrays indexed by node id, where
    the node id *is* the pre-order rank of the node (so [pre u = u]).  Each
    node carries its post-order rank and level (root = 0); ancestry is the
    classical interval test: [u] is a strict ancestor of [v] iff
    [u < v && post u > post v].  This is the (pre, post, level) labelling
    the paper's codings store in postings. *)

type t = private {
  tree : Tree.t;  (** the source tree *)
  label : int array;  (** label id per node *)
  parent : int array;  (** parent id, [-1] for the root *)
  post : int array;  (** post-order rank *)
  level : int array;  (** depth, root = 0 *)
  children : int list array;  (** children ids in surface order *)
}

val of_tree : Tree.t -> t
val size : t -> int

val pre : t -> int -> int
(** [pre doc u = u]; provided for symmetry with [post]/[level]. *)

val ancestor : t -> int -> int -> bool
(** [ancestor doc u v] — strict: [u] is a proper ancestor of [v]. *)

val child : t -> int -> int -> bool
(** [child doc u v] — [v] is a child of [u]. *)

val descendants : t -> int -> int list
(** Strict descendants of [u], in pre-order. *)

val subtree_of : t -> int -> Tree.t
(** Rebuild the [Tree.t] rooted at node [u]. *)
