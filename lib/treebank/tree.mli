(** Immutable constituency trees.

    The construction- and query-side tree model: a node is an interned label
    plus an ordered list of children.  Indexed corpora use the flattened
    {!Annotated.t} arena instead. *)

type t = { label : Label.t; children : t list }

val make : string -> t list -> t
(** [make name children] interns [name] and builds a node. *)

val leaf : string -> t
(** [leaf name] is [make name []]. *)

val label_name : t -> string
val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** Length of the longest root-to-leaf path, in nodes (a leaf has depth 1). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node. *)

val pp : Format.formatter -> t -> unit
(** Penn bracketed form, e.g. [(S (NP (DT the)) (VP (VBZ runs)))]. *)

val to_string : t -> string
