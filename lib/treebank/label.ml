type t = int

let lock = Mutex.create ()
let by_name : (string, int) Hashtbl.t = Hashtbl.create 1024
let by_id : string array ref = ref (Array.make 64 "")
let used = ref 0

let push s =
  let cap = Array.length !by_id in
  if !used = cap then begin
    let bigger = Array.make (2 * cap) "" in
    Array.blit !by_id 0 bigger 0 cap;
    by_id := bigger
  end;
  !by_id.(!used) <- s;
  incr used

let intern s =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt by_name s with
    | Some id -> id
    | None ->
        let id = !used in
        Hashtbl.add by_name s id;
        push s;
        id
  in
  Mutex.unlock lock;
  id

let find s =
  Mutex.lock lock;
  let r = Hashtbl.find_opt by_name s in
  Mutex.unlock lock;
  r

let name id =
  Mutex.lock lock;
  if id < 0 || id >= !used then begin
    Mutex.unlock lock;
    invalid_arg (Printf.sprintf "Label.name: unknown id %d" id)
  end
  else begin
    let s = !by_id.(id) in
    Mutex.unlock lock;
    s
  end

let count () =
  Mutex.lock lock;
  let n = !used in
  Mutex.unlock lock;
  n

let all () =
  Mutex.lock lock;
  let a = Array.sub !by_id 0 !used in
  Mutex.unlock lock;
  a
