type token = Lparen | Rparen | Atom of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' ->
        toks := Lparen :: !toks;
        incr i
    | ')' ->
        toks := Rparen :: !toks;
        incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | _ ->
        let start = !i in
        while
          !i < n
          && match s.[!i] with '(' | ')' | ' ' | '\t' | '\n' | '\r' -> false | _ -> true
        do
          incr i
        done;
        toks := Atom (String.sub s start (!i - start)) :: !toks);
  done;
  List.rev !toks

exception Parse_error of string

let rec parse_tree = function
  | Atom a :: rest -> (Tree.make a [], rest)
  | Lparen :: Atom a :: rest ->
      let children, rest = parse_children rest [] in
      (Tree.make a children, rest)
  | Lparen :: _ -> raise (Parse_error "expected label after '('")
  | Rparen :: _ -> raise (Parse_error "unexpected ')'")
  | [] -> raise (Parse_error "unexpected end of input")

and parse_children toks acc =
  match toks with
  | Rparen :: rest -> (List.rev acc, rest)
  | [] -> raise (Parse_error "missing ')'")
  | _ ->
      let t, rest = parse_tree toks in
      parse_children rest (t :: acc)

let parse s =
  match
    let rec loop toks acc =
      match toks with
      | [] -> List.rev acc
      | _ ->
          let t, rest = parse_tree toks in
          loop rest (t :: acc)
    in
    loop (tokenize s) []
  with
  | trees -> Ok trees
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok ts -> ts | Error msg -> failwith ("Penn.parse: " ^ msg)

let parse_one_exn s =
  match parse_exn s with
  | [ t ] -> t
  | ts -> failwith (Printf.sprintf "Penn.parse_one: got %d trees" (List.length ts))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_exn (really_input_string ic len))

let write_file path trees =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun t -> output_string oc (Tree.to_string t); output_char oc '\n') trees)
