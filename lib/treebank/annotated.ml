type t = {
  tree : Tree.t;
  label : int array;
  parent : int array;
  post : int array;
  level : int array;
  children : int list array;
}

let size t = Array.length t.label

let of_tree tree =
  let n = Tree.size tree in
  let label = Array.make n 0 in
  let parent = Array.make n (-1) in
  let post = Array.make n 0 in
  let level = Array.make n 0 in
  let children = Array.make n [] in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  let rec walk (node : Tree.t) ~parent_id ~depth =
    let id = !next_pre in
    incr next_pre;
    label.(id) <- node.Tree.label;
    parent.(id) <- parent_id;
    level.(id) <- depth;
    let kids =
      List.map (fun c -> walk c ~parent_id:id ~depth:(depth + 1)) node.Tree.children
    in
    children.(id) <- kids;
    post.(id) <- !next_post;
    incr next_post;
    id
  in
  let (_ : int) = walk tree ~parent_id:(-1) ~depth:0 in
  { tree; label; parent; post; level; children }

let pre _t u = u
let ancestor t u v = u < v && t.post.(u) > t.post.(v)
let child t u v = t.parent.(v) = u

let descendants t u =
  (* nodes u+1 .. while still inside u's interval; pre-order ids are dense *)
  let n = size t in
  let rec collect v acc =
    if v < n && t.post.(v) < t.post.(u) then collect (v + 1) (v :: acc) else List.rev acc
  in
  collect (u + 1) []

let rec subtree_of t u =
  {
    Tree.label = t.label.(u);
    children = List.map (subtree_of t) t.children.(u);
  }
