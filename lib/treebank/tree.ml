type t = { label : Label.t; children : t list }

let make name children = { label = Label.intern name; children }
let leaf name = make name []
let label_name t = Label.name t.label

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec equal a b =
  a.label = b.label && List.equal equal a.children b.children

let rec compare a b =
  match Int.compare a.label b.label with
  | 0 -> List.compare compare a.children b.children
  | c -> c

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

(* Single-line output: corpus files rely on one tree per line. *)
let rec pp ppf t =
  match t.children with
  | [] -> Format.pp_print_string ppf (Label.name t.label)
  | cs ->
      Format.fprintf ppf "(%s" (Label.name t.label);
      List.iter (fun c -> Format.fprintf ppf " %a" pp c) cs;
      Format.fprintf ppf ")"

let to_string t = Format.asprintf "%a" pp t
