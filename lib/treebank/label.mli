(** Interned node labels.

    Labels (grammatical categories, POS tags and lexical tokens alike) are
    interned into a process-global, thread-safe table; a label is just its
    integer id.  Interning is append-only: ids are dense, start at 0 and
    never change within a process.  Index files persist the id -> name
    mapping ({!all}) so that a later process can resolve its own ids against
    a stored index (see [Si_core.Si]). *)

type t = int

val intern : string -> t
(** [intern name] returns the id of [name], allocating a fresh id on first
    sight. Thread-safe. *)

val find : string -> t option
(** [find name] is the id of [name] if it has been interned, without
    allocating. *)

val name : t -> string
(** [name id] is the string interned as [id]. Raises [Invalid_argument] on
    an unknown id. *)

val count : unit -> int
(** Number of labels interned so far. *)

val all : unit -> string array
(** All interned labels, indexed by id (a snapshot). *)
