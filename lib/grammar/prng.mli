(** Deterministic splitmix64 PRNG.

    Every corpus / query-set generator threads one of these, so a seed fully
    determines the generated data across platforms and OCaml versions (the
    stdlib [Random] gives no such guarantee across releases). *)

type t

val create : int -> t
(** [create seed]. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
