(** Seeded corpus generation. *)

val sentence : Prng.t -> Si_treebank.Tree.t
(** One parse tree from {!Pcfg.default}. *)

val corpus : ?seed:int -> n:int -> unit -> Si_treebank.Tree.t list
(** [corpus ~seed ~n ()] — [n] parse trees, fully determined by [seed]
    (default seed 2012, the paper's year). *)

val branching_stats :
  Si_treebank.Tree.t list -> [ `Avg of float ] * [ `Max of int ] * [ `Nodes of int ]
(** Average and maximum branching factor over internal (non-leaf) nodes, and
    the total node count — the corpus statistics the paper relies on. *)
