(** A Penn-treebank-style PCFG with a Zipfian lexicon.

    Substitute for the AQUAINT corpus + Stanford-parser pipeline the paper
    indexes (DESIGN.md §2): what the paper's results depend on are the
    corpus' structural statistics — average internal branching around 1.5,
    very few nodes with large branching factors, and a finite production set
    so the number of unique subtrees grows sub-linearly with corpus size.
    Those statistics are asserted by [test/test_grammar.ml]. *)

module Zipf : sig
  type t

  val make : n:int -> s:float -> t
  (** Zipfian distribution over ranks [0..n-1] with exponent [s]. *)

  val sample : t -> Prng.t -> int
end

type t

val default : t
(** The English-like grammar used by every generator and benchmark. *)

val start : t -> string
(** Start symbol ([S]). *)

val expand : t -> Prng.t -> Si_treebank.Tree.t
(** Sample one parse tree from the start symbol.  Beyond an internal depth
    bound the sampler forces minimum-height productions, so expansion always
    terminates. *)

val nonterminals : t -> string list
val preterminals : t -> string list
