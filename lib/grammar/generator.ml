open Si_treebank

let sentence rng = Pcfg.expand Pcfg.default rng

let corpus ?(seed = 2012) ~n () =
  let rng = Prng.create seed in
  List.init n (fun _ -> sentence rng)

let branching_stats trees =
  let internal = ref 0 and edges = ref 0 and maxb = ref 0 and nodes = ref 0 in
  List.iter
    (fun t ->
      Tree.fold
        (fun () (node : Tree.t) ->
          incr nodes;
          let b = List.length node.Tree.children in
          if b > 0 then begin
            incr internal;
            edges := !edges + b;
            if b > !maxb then maxb := b
          end)
        () t)
    trees;
  let avg = if !internal = 0 then 0.0 else float_of_int !edges /. float_of_int !internal in
  (`Avg avg, `Max !maxb, `Nodes !nodes)
