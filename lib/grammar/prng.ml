type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection-free modulo is fine for our small bounds; keep 62 bits so
     the value stays non-negative as a native int *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let pick t a = a.(int t (Array.length a))
