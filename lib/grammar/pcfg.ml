open Si_treebank

module Zipf = struct
  type t = { cum : float array }

  let make ~n ~s =
    if n <= 0 then invalid_arg "Zipf.make";
    let cum = Array.make n 0.0 in
    let total = ref 0.0 in
    for k = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
      cum.(k) <- !total
    done;
    Array.iteri (fun i c -> cum.(i) <- c /. !total) cum;
    { cum }

  let sample t rng =
    let u = Prng.float rng in
    (* first index with cum >= u *)
    let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end

type rule = { weight : float; rhs : string list }

type t = {
  start : string;
  rules : (string, rule array) Hashtbl.t;  (* nonterminal -> productions *)
  lexicon : (string, string array * Zipf.t) Hashtbl.t;  (* preterminal -> vocab *)
  min_height : (string, int) Hashtbl.t;
  max_depth : int;
}

let start t = t.start
let nonterminals t = Hashtbl.fold (fun k _ acc -> k :: acc) t.rules [] |> List.sort compare
let preterminals t = Hashtbl.fold (fun k _ acc -> k :: acc) t.lexicon [] |> List.sort compare

(* ---- the default English-like grammar ---------------------------------- *)

let productions =
  [
    ("S", [ (0.62, [ "NP"; "VP" ]); (0.15, [ "NP"; "VP"; "PP" ]);
            (0.13, [ "NP"; "VP"; "ADVP" ]); (0.06, [ "SBAR"; "NP"; "VP" ]);
            (0.04, [ "S"; "CC"; "S" ]) ]);
    ("NP", [ (0.28, [ "DT"; "NN" ]); (0.16, [ "NN" ]); (0.14, [ "DT"; "JJ"; "NN" ]);
             (0.10, [ "NP"; "PP" ]); (0.10, [ "NNP" ]); (0.08, [ "PRP" ]);
             (0.07, [ "DT"; "NNS" ]); (0.07, [ "NNS" ]) ]);
    ("VP", [ (0.27, [ "VBZ"; "NP" ]); (0.19, [ "VBD"; "NP" ]); (0.10, [ "VBZ" ]);
             (0.08, [ "VBD" ]); (0.08, [ "MD"; "VB"; "NP" ]); (0.08, [ "VBZ"; "PP" ]);
             (0.08, [ "VBD"; "SBAR" ]); (0.12, [ "VBZ"; "NP"; "PP" ]) ]);
    ("PP", [ (1.0, [ "IN"; "NP" ]) ]);
    ("SBAR", [ (0.6, [ "IN"; "S" ]); (0.4, [ "WHNP"; "S" ]) ]);
    ("WHNP", [ (0.5, [ "WP" ]); (0.5, [ "WDT"; "NN" ]) ]);
    ("ADVP", [ (1.0, [ "RB" ]) ]);
  ]

let vocab_sizes =
  [
    ("DT", 12); ("NN", 600); ("NNS", 300); ("NNP", 250); ("JJ", 300);
    ("VBZ", 150); ("VBD", 150); ("VB", 120); ("MD", 8); ("IN", 40);
    ("RB", 120); ("PRP", 10); ("WP", 4); ("WDT", 3); ("CC", 6);
  ]

let make_lexicon () =
  let lexicon = Hashtbl.create 16 in
  List.iter
    (fun (pos, n) ->
      let words =
        Array.init n (fun i -> Printf.sprintf "%s%03d" (String.lowercase_ascii pos) i)
      in
      Hashtbl.add lexicon pos (words, Zipf.make ~n ~s:1.1))
    vocab_sizes;
  lexicon

let compute_min_heights rules lexicon =
  let mh = Hashtbl.create 16 in
  Hashtbl.iter (fun pos _ -> Hashtbl.replace mh pos 2) lexicon;
  (* preterminal -> word: height 2 *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun nt (prods : rule array) ->
        let best =
          Array.fold_left
            (fun acc r ->
              let h =
                List.fold_left
                  (fun m sym ->
                    match Hashtbl.find_opt mh sym with
                    | Some h -> max m h
                    | None -> max_int)
                  0 r.rhs
              in
              if h = max_int then acc else min acc (h + 1))
            max_int prods
        in
        if best < max_int then
          match Hashtbl.find_opt mh nt with
          | Some old when old <= best -> ()
          | _ ->
              Hashtbl.replace mh nt best;
              changed := true)
      rules
  done;
  mh

let default =
  let rules = Hashtbl.create 16 in
  List.iter
    (fun (nt, prods) ->
      Hashtbl.replace rules nt
        (Array.of_list (List.map (fun (weight, rhs) -> { weight; rhs }) prods)))
    productions;
  let lexicon = make_lexicon () in
  { start = "S"; rules; lexicon; min_height = compute_min_heights rules lexicon;
    max_depth = 14 }

(* ---- sampling ---------------------------------------------------------- *)

let sample_rule rng (prods : rule array) =
  let total = Array.fold_left (fun acc r -> acc +. r.weight) 0.0 prods in
  let u = Prng.float rng *. total in
  let acc = ref 0.0 in
  let chosen = ref prods.(Array.length prods - 1) in
  (try
     Array.iter
       (fun r ->
         acc := !acc +. r.weight;
         if u < !acc then begin
           chosen := r;
           raise Exit
         end)
       prods
   with Exit -> ());
  !chosen

let min_rule t (prods : rule array) =
  let height r =
    List.fold_left
      (fun m sym -> max m (try Hashtbl.find t.min_height sym with Not_found -> max_int))
      0 r.rhs
  in
  Array.fold_left
    (fun best r -> match best with
      | Some b when height b <= height r -> best
      | _ -> Some r)
    None prods
  |> Option.get

let expand t rng =
  let rec go sym depth =
    match Hashtbl.find_opt t.rules sym with
    | Some prods ->
        let r = if depth >= t.max_depth then min_rule t prods else sample_rule rng prods in
        Tree.make sym (List.map (fun s -> go s (depth + 1)) r.rhs)
    | None -> (
        match Hashtbl.find_opt t.lexicon sym with
        | Some (words, zipf) ->
            Tree.make sym [ Tree.leaf words.(Zipf.sample zipf rng) ]
        | None -> invalid_arg ("Pcfg.expand: unknown symbol " ^ sym))
  in
  go t.start 0
