open Si_treebank

(* Zero-copy corpus store: the sibling [.trees] file of an SIDX4 prefix.
   Trees are laid out in contiguous DFS order — per tree a node count, the
   preorder label ids, and a balanced-parentheses bitmap (2 bits per node:
   1 on entering a node, 0 on leaving).  (pre, post, level) and the
   children lists are fully determined by the bitmap, so one scan of 2n
   bits reconstructs exactly what {!Annotated.of_tree} builds from a Penn
   parse — without ever touching the [.dat] bracketing.

   Layout:

     header    "SITR1\n" 0 0                                     (8 bytes)
     offsets   ntrees x u64le — tree record offset, relative to the trees
               region start (tid -> record is one array read: O(1) slicing)
     trees     per tree: varint n | n x varint stored-label-id | BP bitmap,
               ceil(2n/8) bytes, LSB-first within each byte
     footer    u64le ntrees | u64le offsets_len | u64le trees_len
               u32le crc32(header) | u32le crc32(offsets) | u32le crc32(trees)
               u32le crc32(footer before this field) | "ST4F"   (44 bytes)

   Open cost is O(1): map, verify the footer CRC (44 bytes) and the header
   CRC (8 bytes), validate that the recorded regions tile the file.  The
   offsets and trees CRCs are verified lazily, on the first [get], and
   trees materialize on demand into a memo array.  Label ids are the
   *stored* id space of the sibling [.labels] file; the caller provides
   [relabel] to translate them into live interned ids (and to reject ids
   the label table does not cover). *)

let magic = "SITR1\n\000\000"
let header_len = 8
let footer_magic = "ST4F"
let footer_len = 44

type t = {
  map : Mmap.bigstring;
  src : Coding.src;
  path : string;
  ntrees : int;
  offsets_off : int;
  offsets_len : int;
  trees_off : int;
  trees_len : int;
  crc_offsets : int;
  crc_trees : int;
  mutable body_verified : bool;
      (* offsets + trees CRCs checked; benign to race — verification is
         idempotent and the flag is only ever flipped to [true] *)
  relabel : int -> int;
  memo : Annotated.t option array;
      (* per-tid materialization memo; concurrent domains may decode the
         same tree twice and one write wins — both values are equal *)
}

(* ---- write side --------------------------------------------------------- *)

let write_tree buf ~relabel (d : Annotated.t) =
  let n = Annotated.size d in
  Si_subtree.Varint.write buf n;
  Array.iter (fun l -> Si_subtree.Varint.write buf (relabel l)) d.Annotated.label;
  let nbits = 2 * n in
  let bytes = Bytes.make ((nbits + 7) / 8) '\000' in
  let bit = ref 0 in
  let put b =
    if b then begin
      let i = !bit in
      Bytes.unsafe_set bytes (i lsr 3)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get bytes (i lsr 3)) lor (1 lsl (i land 7))))
    end;
    incr bit
  in
  let rec walk v =
    put true;
    List.iter walk d.Annotated.children.(v);
    put false
  in
  walk 0;
  assert (!bit = nbits);
  Buffer.add_bytes buf bytes

let save path ~relabel (docs : Annotated.t array) =
  let offsets = Buffer.create (8 * Array.length docs) in
  let trees = Buffer.create 65536 in
  Array.iter
    (fun d ->
      Buffer.add_int64_le offsets (Int64.of_int (Buffer.length trees));
      write_tree trees ~relabel d)
    docs;
  let offsets = Buffer.contents offsets in
  let trees = Buffer.contents trees in
  let footer = Buffer.create footer_len in
  Buffer.add_int64_le footer (Int64.of_int (Array.length docs));
  Buffer.add_int64_le footer (Int64.of_int (String.length offsets));
  Buffer.add_int64_le footer (Int64.of_int (String.length trees));
  Buffer.add_int32_le footer (Int32.of_int (Crc32.string magic));
  Buffer.add_int32_le footer (Int32.of_int (Crc32.string offsets));
  Buffer.add_int32_le footer (Int32.of_int (Crc32.string trees));
  Buffer.add_int32_le footer
    (Int32.of_int (Crc32.string (Buffer.contents footer)));
  Buffer.add_string footer footer_magic;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc offsets;
      output_string oc trees;
      Buffer.output_buffer oc footer;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc))

(* ---- read side ---------------------------------------------------------- *)

let open_ ~relabel path =
  let map = Mmap.map_ro path in
  let len = Bigarray.Array1.dim map in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len + footer_len then
    corrupt len (Printf.sprintf "truncated: %d bytes cannot hold a corpus store" len);
  if not (String.equal (Mmap.bytes_at map (len - 4) 4) footer_magic) then
    corrupt (len - 4) "missing corpus-store footer magic";
  if Crc32.bigsub map (len - footer_len) (footer_len - 8) <> Mmap.u32 map (len - 8)
  then corrupt (len - footer_len) "corpus-store footer checksum mismatch";
  let ntrees = Mmap.u64 ~path map (len - 44) in
  let offsets_len = Mmap.u64 ~path map (len - 36) in
  let trees_len = Mmap.u64 ~path map (len - 28) in
  if
    offsets_len <> 8 * ntrees
    || header_len + offsets_len + trees_len + footer_len <> len
  then
    corrupt (len - 44)
      (Printf.sprintf
         "recorded regions (%d trees, %d + %d bytes) disagree with the %d-byte file"
         ntrees offsets_len trees_len len);
  if not (String.equal (Mmap.bytes_at map 0 header_len) magic) then
    corrupt 0 "bad corpus-store magic (want SITR1)";
  if Crc32.bigsub map 0 header_len <> Mmap.u32 map (len - 20) then
    corrupt 0 "corpus-store header checksum mismatch";
  {
    map;
    src = Coding.map_src map;
    path;
    ntrees;
    offsets_off = header_len;
    offsets_len;
    trees_off = header_len + offsets_len;
    trees_len;
    crc_offsets = Mmap.u32 map (len - 16);
    crc_trees = Mmap.u32 map (len - 12);
    body_verified = false;
    relabel;
    memo = Array.make ntrees None;
  }

let length t = t.ntrees
let mapped_bytes t = Bigarray.Array1.dim t.map
let body_verified t = t.body_verified

let verify t =
  if not t.body_verified then begin
    if Crc32.bigsub t.map t.offsets_off t.offsets_len <> t.crc_offsets then
      Si_error.raise_corrupt ~path:t.path ~offset:t.offsets_off
        "corpus-store offsets checksum mismatch";
    if Crc32.bigsub t.map t.trees_off t.trees_len <> t.crc_trees then
      Si_error.raise_corrupt ~path:t.path ~offset:t.trees_off
        "corpus-store trees checksum mismatch";
    t.body_verified <- true
  end

let crc_state t =
  [
    ("offsets", t.offsets_len, t.body_verified);
    ("trees", t.trees_len, t.body_verified);
  ]

(* ---- incremental scrub support (DESIGN.md §15) --------------------------- *)

let scrub_regions t =
  [
    ("ts_offsets", t.offsets_off, t.offsets_len, t.crc_offsets);
    ("ts_trees", t.trees_off, t.trees_len, t.crc_trees);
  ]

let scrub_feed t crc ~off ~len = Crc32.feed_bigsub crc t.map off len
let scrub_commit t = t.body_verified <- true

(* Rebuild one tree from its DFS record.  The CRC has vouched for the bytes
   by the time we are here, but decoding stays fully defensive anyway: the
   store may have been *written* by a corrupt process, and the fuzzer feeds
   this path hostile bytes with refitted checksums. *)
let decode t tid =
  let corrupt offset what = Si_error.raise_corrupt ~path:t.path ~offset what in
  let toff = Mmap.u64 ~path:t.path t.map (t.offsets_off + (8 * tid)) in
  if toff >= t.trees_len then corrupt (t.offsets_off + (8 * tid)) "tree record offset outside the trees region";
  let base = t.trees_off + toff in
  let limit = t.trees_off + t.trees_len in
  let n, o = Coding.checked_varint ~limit t.src base in
  if n < 1 then corrupt base "tree with no nodes";
  (* labels cost >= 1 byte each and the bitmap 2n bits: bound before allocating *)
  if n > limit - o then corrupt o "node count exceeds the tree record";
  let label = Array.make n 0 in
  let o = ref o in
  for v = 0 to n - 1 do
    let sid, o' = Coding.checked_varint ~limit t.src !o in
    label.(v) <- t.relabel sid;
    o := o'
  done;
  let bp_off = !o in
  let bp_bytes = ((2 * n) + 7) / 8 in
  if bp_bytes > limit - bp_off then corrupt bp_off "BP bitmap overruns the trees region";
  let children_rev = Array.make n [] in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let next_pre = ref 0 in
  for i = 0 to (2 * n) - 1 do
    let byte = Char.code (Coding.src_get t.src (bp_off + (i lsr 3))) in
    if (byte lsr (i land 7)) land 1 = 1 then begin
      if !next_pre >= n then corrupt bp_off "BP bitmap opens more nodes than recorded";
      let v = !next_pre in
      incr next_pre;
      if !sp > 0 then begin
        let p = stack.(!sp - 1) in
        children_rev.(p) <- v :: children_rev.(p)
      end
      else if v > 0 then corrupt bp_off "BP bitmap encodes a forest, not a tree";
      stack.(!sp) <- v;
      incr sp
    end
    else begin
      if !sp = 0 then corrupt bp_off "unbalanced BP bitmap (close without open)";
      decr sp
    end
  done;
  if !sp <> 0 || !next_pre <> n then corrupt bp_off "unbalanced BP bitmap";
  (* node ids are pre-order ranks, so rebuilding the [Tree.t] and running
     it through [Annotated.of_tree] reproduces exactly the annotation a
     Penn parse of the original bracketing would — one constructor, one
     set of (pre, post, level) invariants *)
  let rec subtree v =
    {
      Tree.label = label.(v);
      children = List.rev_map subtree children_rev.(v);
    }
  in
  Annotated.of_tree (subtree 0)

(* The scrub's per-tree probe: a bare defensive decode, skipping memo and
   the whole-region CRC gate, so damage inside a CRC-failing trees region
   localizes to tids instead of poisoning the whole store. *)
let scrub_decode t tid =
  if tid < 0 || tid >= t.ntrees then
    Error
      (Si_error.Corrupt
         {
           path = t.path;
           offset = 0;
           what =
             Printf.sprintf "tree id %d outside the corpus store of %d trees"
               tid t.ntrees;
         })
  else
    match decode t tid with
    | (_ : Annotated.t) -> Ok ()
    | exception Si_error.Error e -> Error e
    | exception Coding.Malformed { offset; what } ->
        Error (Si_error.Corrupt { path = t.path; offset; what })

let get t tid =
  if tid < 0 || tid >= t.ntrees then
    Si_error.raise_corrupt ~path:t.path ~offset:0
      (Printf.sprintf "tree id %d outside the corpus store of %d trees" tid
         t.ntrees);
  match t.memo.(tid) with
  | Some d -> d
  | None ->
      verify t;
      let d =
        try decode t tid
        with Coding.Malformed { offset; what } ->
          Si_error.raise_corrupt ~path:t.path ~offset what
      in
      t.memo.(tid) <- Some d;
      d
