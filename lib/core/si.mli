(** The Subtree Index facade: build / save / open / query.

    On-disk layout under a [prefix] (see [_bench/README.md] for the naming
    convention the bench harness uses):

    - [prefix.idx] — flattened keys + postings ({!Builder.save});
    - [prefix.dat] — the indexed corpus, Penn format, one tree per line
      (tree id = line number); read back for filter-coding validation, the
      root-split corner fallback and sentence output;
    - [prefix.labels] — interned label names, one per id, in id order;
    - [prefix.meta] — [key=value] text: scheme, mss, trees, nodes, keys,
      postings.

    A stored index is self-contained: a fresh process re-interns labels and
    resolves its ids through the stored table, so queries return the same
    match sets as in the building process. *)

type t

val build :
  ?domains:int ->
  ?cache_budget:int ->
  scheme:Coding.scheme ->
  mss:int ->
  trees:Si_treebank.Tree.t list ->
  ?prefix:string ->
  unit ->
  t
(** Build in memory; when [prefix] is given, also persist the four files
    (the [.idx] atomically — see {!Builder.save}).  [domains] (default 1)
    shards construction across that many OCaml domains; the result and
    persisted bytes are identical regardless.  [cache_budget] bounds the
    handle's decoded-block cache in bytes (default 64 MiB; [0] disables
    retention — queries still stream, nothing is kept).  Raises
    [Si_error.Error] (an [Io] variant) if persisting fails. *)

val index : t -> Builder.t
(** The underlying key table — for tools and benchmarks. *)

val open_ : ?cache_budget:int -> string -> (t, Si_error.t) result
(** Load an index persisted by {!build}.  Every byte is verified before it
    is trusted: the [.idx] checksums and structure ([Corrupt]), the [.dat]
    parse ([Corrupt]), unreadable files ([Io]), and the [.meta]
    cross-check — scheme, mss and tree count must agree with the loaded
    [.idx] and [.dat] ([Schema_mismatch]). *)

val query : t -> string -> ((int * int) list, Si_error.t) result
(** Parse and evaluate; [(tid, node)] match pairs, sorted.  Evaluates on
    the streaming path through the handle's decoded-block cache
    (result-identical to {!Eval.run} without a cache).  Errors:
    [Bad_query] on a syntax error, [Corrupt]/[Schema_mismatch] if posting
    decode fails during evaluation. *)

val query_ast : t -> Si_query.Ast.t -> ((int * int) list, Si_error.t) result

type batch = {
  answers : ((int * int) list, Si_error.t) result array;
      (** per query, input order *)
  latencies_ns : float array;  (** per-query wall latency *)
  elapsed_s : float;  (** whole-batch wall time (QPS = n / elapsed) *)
  cache : Cache.stats;  (** summed over the per-domain caches *)
}

val query_batch : ?domains:int -> ?cache_budget:int -> t -> string array -> batch
(** [query_batch t queries] evaluates the stream, fanned round-robin
    across [domains] (default 1) OCaml 5 domains over this one shared
    handle.  The hot path takes no locks: the packed index and corpus are
    read-only, each domain evaluates through its own decoded-block cache
    ([cache_budget] bytes each), and result slots are disjoint.  Raises
    [Invalid_argument] if [domains < 1]. *)

val cache_stats : t -> Cache.stats
(** Counters of the handle's own cache (the one {!query} uses). *)

val oracle : t -> Si_query.Ast.t -> (int * int) list
(** The brute-force matcher over the stored corpus — the reference answer. *)

val scheme : t -> Coding.scheme
val mss : t -> int
val stats : t -> Builder.stats
val corpus : t -> Si_treebank.Annotated.t array
val sentence : t -> int -> Si_treebank.Tree.t
(** The indexed tree with id [tid]. *)
