(** The Subtree Index facade: build / save / open / query.

    On-disk layout under a [prefix] (see [_bench/README.md] for the naming
    convention the bench harness uses):

    - [prefix.idx] — flattened keys + postings ({!Builder.save});
    - [prefix.dat] — the indexed corpus, Penn format, one tree per line
      (tree id = line number); read back for filter-coding validation, the
      root-split corner fallback and sentence output;
    - [prefix.labels] — interned label names, one per id, in id order;
    - [prefix.meta] — [key=value] text: scheme, mss, trees, nodes, keys,
      postings, and [idx_crc] — the CRC-32 of the [.idx] bytes the
      siblings were written against (the crash-consistency cross-check).

    A stored index is self-contained: a fresh process re-interns labels and
    resolves its ids through the stored table, so queries return the same
    match sets as in the building process.

    A prefix may additionally carry [prefix.wal] — the write-ahead log of
    trees inserted since the last checkpoint (DESIGN.md §13).  {!open_}
    replays it into an in-memory {e delta index} that every query unions
    with the main postings; {!insert} appends to it durably; {!checkpoint}
    folds the delta into a freshly published main index and truncates it.

    Persistence is crash-safe: all four files are staged
    ([prefix.idx.new], [*.tmp]) before any final name changes, so a build
    killed before the publish renames leaves a pre-existing index at the
    same prefix byte-identical and fully loadable; a kill inside the
    rename sequence can leave a mixed old/new set, which {!open_} detects
    through [idx_crc] and refuses ([Schema_mismatch]) rather than
    answering from mismatched files. *)

type t

type format = [ `Sidx3 | `Sidx4 ]
(** On-disk [.idx] container to persist: [`Sidx3] (default) the eager
    checksummed format, [`Sidx4] the mmap-resident format whose open is
    O(1) and whose interval postings resolve against the [prefix.trees]
    corpus store (written alongside). *)

val build :
  ?domains:int ->
  ?cache_budget:int ->
  ?format:format ->
  scheme:Coding.scheme ->
  mss:int ->
  trees:Si_treebank.Tree.t list ->
  ?prefix:string ->
  unit ->
  t
(** Build in memory; when [prefix] is given, also persist the file set
    (crash-safely — see the module preamble).  [domains] (default 1)
    shards construction across that many OCaml domains; the result and
    persisted bytes are identical regardless.  [cache_budget] bounds the
    handle's decoded-block cache in bytes (default 64 MiB; [0] disables
    retention — queries still stream, nothing is kept).  [format] picks
    the [.idx] container (default [`Sidx3]; [`Sidx4] additionally writes
    [prefix.trees]).  Raises [Si_error.Error] (an [Io] variant) if
    persisting fails. *)

val index : t -> Builder.t
(** The underlying key table — for tools and benchmarks. *)

val open_ : ?cache_budget:int -> string -> (t, Si_error.t) result
(** Load an index persisted by {!build}.  Every byte is verified before it
    is trusted: the [.idx] checksums and structure ([Corrupt]), the [.dat]
    parse ([Corrupt]), unreadable files ([Io]), and the [.meta]
    cross-check — scheme, mss, tree count and the [.idx] file CRC must
    agree with the loaded [.idx] and [.dat] ([Schema_mismatch]).

    An SIDX4 prefix opens in O(1) instead: the [.idx] and the [.trees]
    corpus store are mapped, only their footer/header CRCs are checked up
    front (body region CRCs verify lazily, on first touch), the [.dat] is
    never read, and trees materialize on demand.  Query results are
    byte-identical to the same index in SIDX3 form.

    Either backend then replays [prefix.wal] (if present) into the delta
    index: a record whose tid the main index already covers is skipped
    (a checkpoint that crashed before truncating), a torn tail is
    ignored, and the remaining records must continue the tree numbering
    without a gap ([Corrupt] otherwise).  [Schema_mismatch] if the WAL
    header's scheme/mss disagree with the index. *)

val insert : t -> Si_treebank.Tree.t list -> (int, Si_error.t) result
(** Append trees durably ([Ok n] = the total tree count now visible,
    main + delta): each tree is CRC-framed and fsync'd into [prefix.wal]
    {e before} the rebuilt delta snapshot is published to readers
    (queries racing an insert see the old or the new snapshot, never a
    torn one).  Serialized with {!checkpoint} on the handle's insert
    lock; queries never block.  Labels the index has never seen extend
    its id space in insertion order.  Raises [Invalid_argument] on a
    handle with no on-disk prefix.  Errors: [Io] on a write/fsync
    failure, [Schema_mismatch] / [Corrupt] on a damaged existing WAL. *)

val checkpoint : t -> (int, Si_error.t) result
(** Fold the delta into the main index and publish: merge
    ({!Builder.merge_append}), save the new file set through the staged-
    rename crash protocol, truncate the WAL.  [Ok k] = delta trees folded
    in; [Ok 0] = empty delta, nothing written — except that a leftover
    WAL whose records the main index already covers (a crash between a
    previous checkpoint's publish and its truncate) is truncated, so an
    explicit checkpoint always converges to an empty log.  Preserves the handle's
    on-disk {!format}.  Every kill window leaves a loadable prefix: the
    old set + replayable WAL before the publish renames, a refused mixed
    set ([Schema_mismatch], [idx_crc]) inside them, the new set + ignored
    (tid-covered) or truncated WAL after.  The in-memory handle keeps
    serving old-main + delta — the same match set as the new index;
    reopen ({!open_}) to shed the delta memory. *)

val pending : t -> int
(** Trees in the delta (inserted since the last checkpoint). *)

val wal_bytes : t -> int
(** Size of the WAL this handle has open, header included; [0] when no
    insert has opened it yet. *)

val close_wal : t -> unit
(** Close the WAL append handle, if open.  Idempotent; the next {!insert}
    reopens.  A server that swapped generations closes the retired
    handle's WAL so the descriptor does not leak. *)

val query : ?limits:Limits.t -> t -> string -> ((int * int) list, Si_error.t) result
(** Parse and evaluate; [(tid, node)] match pairs, sorted.  Evaluates on
    the streaming path through the handle's decoded-block cache
    (result-identical to {!Eval.run} without a cache).  Errors:
    [Bad_query] on a syntax error, [Corrupt]/[Schema_mismatch] if posting
    decode fails during evaluation; with [limits], [Timeout] /
    [Resource_exhausted] on a deadline or budget trip (softened to a
    truncated result under [limits.partial] — use {!query_outcome} to see
    the flag). *)

val query_outcome :
  ?limits:Limits.t -> t -> string -> (Limits.outcome, Si_error.t) result
(** {!query} with the resource-governance outcome exposed: [truncated]
    tells whether the match list is exact or a degraded prefix (see
    {!Eval.run_outcome} for the contract). *)

val query_outcome_cached :
  cache:Cursor.cache ->
  ?limits:Limits.t ->
  t ->
  string ->
  (Limits.outcome, Si_error.t) result
(** {!query_outcome} evaluating through the caller's decoded-block cache
    instead of the handle's own.  This is the concurrent-serving entry
    point: the handle's packed index and corpus are read-only on this
    path, so any number of domains may evaluate over one shared handle as
    long as each brings its own cache ({!Cache.t} is not thread-safe).
    The long-lived network server gives every worker domain one cache per
    index generation — a cache must never outlive the handle it decoded
    from, since keys are (index key, block) pairs that could collide
    across generations. *)

val query_ast :
  ?limits:Limits.t -> t -> Si_query.Ast.t -> ((int * int) list, Si_error.t) result

type domain_stat = {
  queries_run : int;  (** slots this worker actually evaluated *)
  errors : int;  (** of those, how many returned [Error _] *)
  busy_ns : int;  (** summed per-query wall time (monotonic) *)
  died : string option;
      (** [Some reason] if the worker failed to spawn or died mid-range —
          its unwritten slots hold the sentinel
          [Error (Internal "query slot never ran ...")] *)
}

type batch = {
  answers : (Limits.outcome, Si_error.t) result array;
      (** per query, input order *)
  latencies_ns : float array;  (** per-query wall latency (monotonic) *)
  elapsed_s : float;  (** whole-batch wall time (QPS = n / elapsed) *)
  cache : Cache.stats;  (** summed over the per-domain caches *)
  domain_stats : domain_stat array;  (** per worker, domain 0 first *)
}

val query_batch :
  ?domains:int -> ?cache_budget:int -> ?limits:Limits.t -> t -> string array -> batch
(** [query_batch t queries] evaluates the stream, fanned round-robin
    across [domains] (default 1) OCaml 5 domains over this one shared
    handle.  The hot path takes no locks: the packed index and corpus are
    read-only, each domain evaluates through its own decoded-block cache
    ([cache_budget] bytes each), and result slots are disjoint.  [limits]
    governs every query individually (each gets a fresh gauge).

    [domains] is clamped to [Domain.recommended_domain_count ()] with a
    one-line warning on stderr: spawning more CPU-bound workers than
    cores is strictly slower (EXPERIMENTS.md measures it), so asking for
    more is treated as a misconfiguration, not honoured.  The clamped
    width is observable as [Array.length batch.domain_stats].

    Fault-isolated: an exception escaping one evaluation becomes
    [Error (Internal _)] in that slot only; a worker domain that dies or
    fails to spawn leaves its remaining slots as the sentinel and is
    reported in {!domain_stat.died} — the call itself never rethrows a
    per-query failure.  Raises [Invalid_argument] if [domains < 1]. *)

val cache_stats : t -> Cache.stats
(** Counters of the handle's own cache (the one {!query} uses). *)

val oracle : t -> Si_query.Ast.t -> (int * int) list
(** The brute-force matcher over the stored corpus {e plus the delta} —
    the reference answer, covering inserted trees too. *)

val scheme : t -> Coding.scheme
val mss : t -> int
val stats : t -> Builder.stats
val corpus : t -> Corpus.t

val format : t -> format
(** The on-disk container this handle was opened from (fresh builds
    report [`Sidx3] — they are fully materialized in memory). *)

val sentence : t -> int -> Si_treebank.Tree.t
(** The indexed tree with id [tid] — main corpus or delta. *)

(** {1 Self-healing integrity (DESIGN.md §15)}

    The SIDX4 open defers region CRC verification to first use, moving
    corruption discovery to query time.  Three mechanisms close the
    loop:

    {b Quarantine.}  A query that decodes corrupt bytes belonging to the
    index's {e own} file quarantines the handle instead of erroring:
    this and every subsequent query answers from the corpus store (the
    source of truth) through the brute-force matcher — exact, slower —
    with [outcome.degraded = true]; under budget pressure the fallback
    degrades to a truncated subset exactly like the index path (the §10
    contract, extended).  Corpus-store ([.trees]) damage is {e not}
    quarantinable — the fallback needs those bytes too — and propagates
    as [Corrupt].

    {b Scrub.}  {!scrub} proactively verifies the lazily-checked regions
    under a budget, resuming across calls, localizing postings damage to
    keys and trees damage to tids, and quarantining on index damage —
    so corruption is found between queries, not by one.

    {b Repair.}  {!repair} rebuilds the index purely from corpus + delta
    (never the damaged postings) and publishes through the §9
    staged-rename protocol; the prefix then reopens clean.  Servers ride
    the reopen through the generation swap — zero dropped queries. *)

val quarantined : t -> bool
(** Lock-free: is the handle answering from the corpus fallback? *)

val scrub : ?budget:Scrub.budget -> t -> Scrub.report
(** One budgeted scrub pass ({!Scrub.pass}) over the handle's index and
    corpus store, folding the verdict into the quarantine and the
    {!integrity} counters.  Never raises on corrupt bytes. *)

val repair : t -> (int, Si_error.t) result
(** Rebuild and republish the prefix from the corpus store + delta.
    [Ok n] = trees in the repaired index.  The in-memory handle still
    maps the {e old} bytes afterwards (and keeps its quarantine): reopen
    the prefix to serve the repaired index.  Raises [Invalid_argument]
    on a handle with no on-disk prefix.  Failpoints:
    [si.repair.rebuild], [si.repair.publish], [si.repair.wal-truncate];
    every kill window leaves a loadable prefix (the recovery harness
    asserts this). *)

type integrity_state = [ `Ok | `Degraded | `Repairing ]

type integrity_stats = {
  state : integrity_state;
  quarantined_keys : int;  (** scrub-localized undecodable postings *)
  quarantined_trees : int;  (** scrub-localized undecodable tree records *)
  fallback_answers : int;  (** queries answered by the corpus fallback *)
  scrub_passes : int;
  scrub_bytes : int;  (** bytes verified across all scrub passes *)
  repairs : int;
  repair_failures : int;
}

val integrity : t -> integrity_stats

(** {1 Sharded handles (DESIGN.md §14)}

    One logical index split across [shards] per-shard prefixes
    ([prefix.shard0] … [prefix.shardN-1]) plus a [prefix.shards]
    manifest ({!Shardmap}).  Each member shard is a complete stand-alone
    index (any container format, its own WAL) with {e shard-local} tree
    ids; the deterministic router owns globality: global tid [g] lives
    on shard [Shardmap.shard_of_tid g], and a shard's local order is the
    global order restricted to it.  Queries fan out over the shards on
    affinity-pinned pool workers (shard [i] always runs on worker
    [i mod pool size], so its decode cache stays single-domain), remap
    local tids to global, and k-way-merge the sorted disjoint streams
    into one globally tid-ordered result. *)

type sharded

type handle = Single of t | Sharded of sharded
(** What {!open_any} yields: tools that serve "a prefix" dispatch on
    this. *)

val build_sharded :
  ?domains:int ->
  ?cache_budget:int ->
  ?format:format ->
  shards:int ->
  scheme:Coding.scheme ->
  mss:int ->
  trees:Si_treebank.Tree.t list ->
  string ->
  (sharded, Si_error.t) result
(** Partition [trees] by the router, build every shard as its own
    crash-safe file set (fanned across the affinity pool — on a
    multi-core builder the per-shard builds overlap), then write the
    manifest as the commit point: a crash before it leaves only
    unreferenced [.shardK] files, never a half-published sharded
    prefix. *)

val open_sharded : ?cache_budget:int -> string -> (sharded, Si_error.t) result
(** Open every member shard ({!open_}, so each shard's own [.meta] CRC
    cross-check and WAL replay apply) and validate the set: every shard
    must match the manifest's scheme/mss, and each shard's visible tree
    count must equal its router assignment for the summed total —
    a shard swapped in from another corpus is refused as
    [Schema_mismatch], never queried. *)

val open_any : ?cache_budget:int -> string -> (handle, Si_error.t) result
(** {!open_sharded} when [prefix.shards] exists, {!open_} otherwise. *)

type sharded_outcome = {
  so_outcome : Limits.outcome;
      (** merged matches, globally tid-ordered; [truncated] if any leg
          truncated, the merge hit [max_results], or a leg was dropped *)
  so_failed : (int * Si_error.t) list;
      (** shards whose leg failed (shard order); non-empty only under
          [degrade] *)
}

val query_outcome_sharded :
  ?limits:Limits.t ->
  ?degrade:bool ->
  sharded ->
  string ->
  (sharded_outcome, Si_error.t) result
(** Fan out / merge under a single shared {!Limits} gauge: byte and
    step budgets pool atomically across the legs, the deadline spans
    the whole fan-out, and [max_results] caps both each leg and the
    merged stream — truncation anywhere still returns a verified subset
    of the exact answer (the §10 contract, now across shards).

    [degrade = false] (default): one failed leg fails the query with
    that shard's error.  [degrade = true] (the serving path): failed
    legs are dropped and the healthy remainder answers with
    [truncated = true] plus the failures in [so_failed] — a brownout,
    not a refusal; only when {e every} leg fails does the query fail. *)

val query_sharded :
  ?limits:Limits.t ->
  ?degrade:bool ->
  sharded ->
  string ->
  ((int * int) list, Si_error.t) result
(** {!query_outcome_sharded} keeping just the merged matches. *)

val insert_sharded : sharded -> Si_treebank.Tree.t list -> (int, Si_error.t) result
(** Route each tree to the owner of its global tid and append through
    the owning shard's WAL (shard-local numbering — each prefix stays
    self-contained).  [Ok n] = total trees now visible across shards.
    The local→global map extends before the shard's delta publishes, so
    a racing fan-out query can always remap what it sees. *)

val checkpoint_sharded : ?shard:int -> sharded -> (int, Si_error.t) result
(** Fold WAL deltas into the main per-shard indexes: [?shard] picks one
    (its debt drains independently — the point of per-shard WALs),
    default all.  [Ok k] = delta trees folded. *)

val reopen_shard : ?cache_budget:int -> sharded -> int -> (sharded, Si_error.t) result
(** A functional flip of one member shard to a freshly opened handle
    (the per-shard zero-downtime swap): the returned record shares the
    router, write lock and tid maps with the old one, and the count
    assignment is re-checked before any query can touch the new
    shard. *)

val shard_count : sharded -> int
val shard_handles : sharded -> t array
(** The member shards, for stats aggregation; shard [i]'s handle. *)

val sharded_prefix : sharded -> string
val shard_map : sharded -> Shardmap.t
val sharded_total : sharded -> int
(** Trees visible across all shards, main + deltas. *)

val pending_sharded : sharded -> int
(** Summed {!pending} over the member shards. *)

val wal_bytes_sharded : sharded -> int
val close_wal_sharded : sharded -> unit

val oracle_sharded : sharded -> Si_query.Ast.t -> (int * int) list
(** Brute force over every shard's corpus + delta, remapped to global
    tids — the sharded reference answer. *)

val scrub_sharded : ?budget:Scrub.budget -> sharded -> Scrub.report array
(** One budgeted {!scrub} pass per member shard (each gets the full
    budget), in shard order. *)

val repair_sharded : ?shard:int -> sharded -> (int, Si_error.t) result
(** {!repair} one member shard (or all, default), serialized with the
    sharded write lock.  A repaired member is served after
    {!reopen_shard} flips it in. *)

val quarantined_shards : sharded -> int list
(** Indexes of member shards currently answering from the fallback —
    what [HEALTH] reports as integrity degradation. *)

val integrity_sharded : sharded -> integrity_stats
(** Fold of the members' {!integrity}: worst state, summed counters. *)

val sentence_sharded : sharded -> int -> Si_treebank.Tree.t
(** The tree with {e global} id [g] — routed to its shard, binary-
    searched to its local position. *)
