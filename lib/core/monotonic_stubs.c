/* CLOCK_MONOTONIC in nanoseconds, returned as a tagged OCaml int.
   63 bits of nanoseconds cover ~292 years of uptime, so the immediate
   representation is safe on every 64-bit target; returning an immediate
   keeps the hot deadline checks allocation-free. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value si_monotonic_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}
