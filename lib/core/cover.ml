open Si_query
open Si_subtree

type chunk = { root : int; nodes : int list; fragment : int Canonical.node }
type t = { chunks : chunk array; chunk_of : int array }

let joins t = Array.length t.chunks - 1

(* child-axis children of [v] (the fragment graph: // edges removed) *)
let ckids (ix : Ast.indexed) v =
  List.filter (fun k -> ix.Ast.axis.(k) = Ast.Child) ix.Ast.children.(v)

(* descendant-axis children of [v] (each starts its own component) *)
let dkids (ix : Ast.indexed) v =
  List.filter (fun k -> ix.Ast.axis.(k) = Ast.Descendant) ix.Ast.children.(v)

(* subtree size within the component (counting child edges only) *)
let comp_sizes (ix : Ast.indexed) =
  let n = Ast.count ix in
  let csize = Array.make n 1 in
  for v = n - 1 downto 0 do
    List.iter (fun k -> csize.(v) <- csize.(v) + csize.(k)) (ckids ix v)
  done;
  csize

(* does the component subtree of [v] contain a node with a // out-edge? *)
let blocked (ix : Ast.indexed) =
  let n = Ast.count ix in
  let b = Array.make n false in
  for v = n - 1 downto 0 do
    b.(v) <-
      dkids ix v <> []
      || List.exists (fun k -> b.(k)) (ckids ix v)
  done;
  b

let fragment_of (ix : Ast.indexed) members root =
  let mem = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace mem v ()) members;
  let rec build v =
    {
      Canonical.label = ix.Ast.labels.(v);
      payload = v;
      kids =
        List.filter_map
          (fun k -> if Hashtbl.mem mem k then Some (build k) else None)
          (ckids ix v);
    }
  in
  build root

let make_cover (ix : Ast.indexed) chunks_rev =
  let n = Ast.count ix in
  let chunks =
    Array.of_list
      (List.rev_map
         (fun (root, members) ->
           let nodes = List.sort compare members in
           { root; nodes; fragment = fragment_of ix nodes root })
         chunks_rev)
  in
  let chunk_of = Array.make n (-1) in
  Array.iteri (fun i c -> List.iter (fun v -> chunk_of.(v) <- i) c.nodes) chunks;
  { chunks; chunk_of }

(* ---- optimalCover ------------------------------------------------------ *)

let optimal_cover (ix : Ast.indexed) ~mss =
  if mss < 1 then invalid_arg "Cover.optimal_cover: mss must be >= 1";
  let csize = comp_sizes ix in
  let chunks = ref [] in
  (* queue of pending chunk roots, DFS via a stack kept in discovery order *)
  let rec chunk_from r =
    let members = ref [ r ] in
    let cap = ref (mss - 1) in
    let frontier = ref (ckids ix r) in
    let leftovers = ref [] in
    while !cap > 0 && !frontier <> [] do
      let sorted =
        List.sort (fun a b -> compare csize.(b) csize.(a)) !frontier
      in
      match List.find_opt (fun f -> csize.(f) <= !cap) sorted with
      | Some f ->
          (* first fit (decreasing): absorb the whole component subtree *)
          let rec absorb v =
            members := v :: !members;
            List.iter absorb (ckids ix v)
          in
          absorb f;
          cap := !cap - csize.(f);
          frontier := List.filter (fun x -> x <> f) !frontier
      | None ->
          (* nothing fits whole: absorb the largest candidate alone and
             expose its children *)
          let f = List.hd sorted in
          members := f :: !members;
          decr cap;
          frontier := ckids ix f @ List.filter (fun x -> x <> f) !frontier
    done;
    leftovers := !frontier;
    chunks := (r, !members) :: !chunks;
    (* descendant components below every member, then leftover cut children;
       recurse in DFS order *)
    let members_l = !members in
    List.iter chunk_from !leftovers;
    List.iter (fun v -> List.iter chunk_from (dkids ix v)) members_l
  in
  chunk_from 0;
  make_cover ix !chunks

(* ---- minRC ------------------------------------------------------------- *)

let min_rc (ix : Ast.indexed) ~mss =
  if mss < 1 then invalid_arg "Cover.min_rc: mss must be >= 1";
  let csize = comp_sizes ix in
  let blk = blocked ix in
  let chunks = ref [] in
  let rec chunk_from r =
    let members = ref [ r ] in
    let cap = ref (mss - 1) in
    let candidates = List.sort (fun a b -> compare csize.(b) csize.(a)) (ckids ix r) in
    let cuts = ref [] in
    List.iter
      (fun c ->
        (* absorbable only whole and only if no member would carry a //
           out-edge while not being the chunk root *)
        if csize.(c) <= !cap && not blk.(c) then begin
          let rec absorb v =
            members := v :: !members;
            List.iter absorb (ckids ix v)
          in
          absorb c;
          cap := !cap - csize.(c)
        end
        else cuts := c :: !cuts)
      candidates;
    chunks := (r, !members) :: !chunks;
    let members_l = !members in
    List.iter chunk_from (List.rev !cuts);
    List.iter (fun v -> List.iter chunk_from (dkids ix v)) members_l
  in
  chunk_from 0;
  make_cover ix !chunks

(* ---- inspection -------------------------------------------------------- *)

let cut_edges (ix : Ast.indexed) t =
  Array.to_list t.chunks
  |> List.filteri (fun i _ -> i > 0)
  |> List.map (fun c ->
         let p = ix.Ast.parent.(c.root) in
         (p, c.root, ix.Ast.axis.(c.root)))

let validate (ix : Ast.indexed) ~mss ~root_split t =
  let n = Ast.count ix in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let seen = Array.make n 0 in
  Array.iter (fun c -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) c.nodes) t.chunks;
  if Array.exists (fun c -> c <> 1) seen then err "not an exact partition"
  else if
    Array.exists (fun c -> List.length c.nodes > mss || c.nodes = []) t.chunks
  then err "chunk size out of bounds"
  else
    let bad =
      Array.find_opt
        (fun c ->
          (* every non-root member's parent must be in the chunk, reached by
             a child edge *)
          List.exists
            (fun v ->
              v <> c.root
              && (ix.Ast.axis.(v) <> Ast.Child
                 || not (List.mem ix.Ast.parent.(v) c.nodes)))
            c.nodes)
        t.chunks
    in
    match bad with
    | Some c -> err "chunk %d not child-connected (or spans a // edge)" c.root
    | None ->
        let order_ok =
          (* DFS property: each chunk's parent endpoint lies in an earlier chunk *)
          t.chunks.(0).root = 0
          && Array.for_all
               (fun c ->
                 c.root = 0
                 || t.chunk_of.(ix.Ast.parent.(c.root))
                    < t.chunk_of.(c.root))
               t.chunks
        in
        if not order_ok then err "chunks not in DFS order"
        else if
          root_split
          && List.exists
               (fun (p, _, _) -> t.chunks.(t.chunk_of.(p)).root <> p)
               (cut_edges ix t)
        then err "cut edge parent is not its chunk's root"
        else Ok ()
