(** MPMGJN-style sort-merge structural joins (paper §4.3).

    A relation carries, per row, a tree id and one [(pre, post, level)]
    interval per exposed query node (its columns).  Both inputs are sorted
    by tid; the join merges the two streams on tid and, within a tid block,
    emits the cross pairs satisfying the structural predicate.  The
    block-nested inner loop is the slice's simplification of MPMGJN's
    skip-ahead — same output, and the interface the later stack-based
    backends (StackTree / TwigStack, DESIGN.md §6) will implement. *)

type row = { tid : int; ivs : Coding.interval array }
type rel = { cols : int array; rows : row array }

val empty : rel
val is_empty : rel -> bool

val col_index : rel -> int -> int
(** Position of query node [q] in [rel.cols]; raises [Not_found]. *)

val merge_join : ?ctx:Limits.ctx -> rel -> rel -> pred:(row -> row -> bool) -> rel
(** [merge_join a b ~pred] — columns are concatenated ([a.cols] then
    [b.cols]), rows stay sorted by tid.  [ctx] bills one {!Limits.step}
    per merge advance and per predicate evaluation, so the tid-run cross
    products a pathological query explodes on are governed at the
    granularity they grow. *)

val merge_join_stream :
  ?ctx:Limits.ctx ->
  rel ->
  cols:int array ->
  next_tid:(int -> int option) ->
  probe:(int -> row list) ->
  pred:(row -> row -> bool) ->
  rel
(** Like {!merge_join} with the second relation behind a monotone cursor:
    [next_tid t] is the smallest stream tid [>= t] ([None] = stream
    exhausted; typically a {!Cursor.seek}, which answers from the skip
    table without decoding), [probe t] the stream's rows with exactly tid
    [t] (consumed; must only be called with ascending [t]).  Output rows
    and order are identical to the materialized join. *)

val filter : ?ctx:Limits.ctx -> rel -> (row -> bool) -> rel

val structural : Si_query.Ast.axis -> Coding.interval -> Coding.interval -> bool
(** [structural axis parent child] — the edge predicate: child =
    containment with [level] difference 1; descendant = strict
    containment. *)
