open Si_subtree

type scheme = Filter | Interval | Root_split

let scheme_to_string = function
  | Filter -> "filter"
  | Interval -> "interval"
  | Root_split -> "root-split"

let scheme_of_string = function
  | "filter" -> Ok Filter
  | "interval" -> Ok Interval
  | "root-split" | "rs" -> Ok Root_split
  | s -> Error (Printf.sprintf "unknown scheme %S (want filter|interval|root-split)" s)

type interval = { pre : int; post : int; level : int }

let pp_interval ppf i = Format.fprintf ppf "(%d,%d,%d)" i.pre i.post i.level

type posting =
  | Filter_p of int array
  | Interval_p of (int * interval array) array
  | Root_p of (int * interval) array

let entries = function
  | Filter_p a -> Array.length a
  | Interval_p a -> Array.length a
  | Root_p a -> Array.length a

let tid_at p i =
  match p with
  | Filter_p a -> a.(i)
  | Root_p a -> fst a.(i)
  | Interval_p a -> fst a.(i)

(* decoded heap footprint estimate, for the cache's byte budget: per-entry
   words (tuples, interval records, per-instance arrays) plus array slots *)
let heap_bytes = function
  | Filter_p a -> 24 + (8 * Array.length a)
  | Root_p a -> 24 + (72 * Array.length a)
  | Interval_p a ->
      Array.fold_left (fun acc (_, ivs) -> acc + 40 + (40 * Array.length ivs)) 24 a

(* ---- byte sources ------------------------------------------------------- *)

(* Every decode path reads through [src]: either an in-heap string (SIDX1-3
   load slurps the file) or a memory-mapped byte view (SIDX4 consumes the
   file in place).  The per-byte loops are specialised per constructor so
   the string hot path keeps its exact pre-mmap code shape. *)

type bigstring = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type src = Str of string | Map of bigstring

let str s = Str s
let map_src m = Map m

let src_length = function
  | Str s -> String.length s
  | Map m -> Bigarray.Array1.dim m

let src_get src i =
  match src with
  | Str s -> String.unsafe_get s i
  | Map m -> Bigarray.Array1.unsafe_get m i

let src_sub src off len =
  if off < 0 || len < 0 || off > src_length src - len then
    invalid_arg "Coding.src_sub";
  match src with
  | Str s -> String.sub s off len
  | Map m -> String.init len (fun i -> Bigarray.Array1.unsafe_get m (off + i))

(* ---- defensive primitives ---------------------------------------------- *)

exception Malformed of { offset : int; what : string }

let malformed offset what = raise (Malformed { offset; what })

(* Like [Varint.read] but bounded by an explicit [limit] (the end of the
   posting's byte slice, not of the whole backing buffer — a decode must
   never stray into the neighbouring posting) and failing with an offset. *)
let checked_varint_str ~limit s off =
  let limit = min limit (String.length s) in
  let rec go o shift acc =
    if o >= limit then malformed o "truncated varint";
    if shift > 56 then malformed o "overlong varint";
    let b = Char.code (String.unsafe_get s o) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then malformed o "varint overflow";
    if b land 0x80 = 0 then (acc, o + 1) else go (o + 1) (shift + 7) acc
  in
  if off < 0 then malformed off "negative offset";
  go off 0 0

let checked_varint_map ~limit (m : bigstring) off =
  let limit = min limit (Bigarray.Array1.dim m) in
  let rec go o shift acc =
    if o >= limit then malformed o "truncated varint";
    if shift > 56 then malformed o "overlong varint";
    let b = Char.code (Bigarray.Array1.unsafe_get m o) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then malformed o "varint overflow";
    if b land 0x80 = 0 then (acc, o + 1) else go (o + 1) (shift + 7) acc
  in
  if off < 0 then malformed off "negative offset";
  go off 0 0

let checked_varint ~limit src off =
  match src with
  | Str s -> checked_varint_str ~limit s off
  | Map m -> checked_varint_map ~limit m off

(* ---- pack-time validation ---------------------------------------------- *)

let pack_error what = invalid_arg ("Coding.pack: " ^ what)

let check_interval what iv =
  if iv.pre < 0 || iv.level < 0 then
    pack_error (Printf.sprintf "%s: negative pre/level %d/%d" what iv.pre iv.level);
  (* size - 1 = post + level - pre; >= 0 by the pre/post/level identity *)
  if iv.post + iv.level - iv.pre < 0 then
    pack_error
      (Printf.sprintf "%s: interval (%d,%d,%d) violates post = pre + size-1 - level"
         what iv.pre iv.post iv.level)

(* The delta codings below silently encode garbage if entries ever arrive
   unsorted, so every packer validates the whole posting first and fails
   loudly instead of producing bytes that decode to a different posting. *)
let validate = function
  | Filter_p tids ->
      let prev = ref (-1) in
      Array.iter
        (fun tid ->
          if tid <= !prev then
            pack_error
              (Printf.sprintf "filter tids not strictly increasing (%d after %d)" tid
                 !prev);
          if tid < 0 then pack_error "negative tid";
          prev := tid)
        tids
  | Root_p a ->
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          if tid < max !prev_tid 0 then
            pack_error
              (Printf.sprintf "root entries not sorted by tid (%d after %d)" tid
                 !prev_tid);
          check_interval "root entry" iv;
          if !prev_tid = tid && iv.pre < !prev_pre then
            pack_error
              (Printf.sprintf
                 "root entries not sorted by pre within tid %d (%d after %d)" tid
                 iv.pre !prev_pre);
          prev_tid := tid;
          prev_pre := iv.pre)
        a
  | Interval_p a ->
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          if Array.length ivs = 0 then pack_error "interval entry with no nodes";
          if tid < max !prev_tid 0 then
            pack_error
              (Printf.sprintf "interval entries not sorted by tid (%d after %d)" tid
                 !prev_tid);
          let root = ivs.(0) in
          check_interval "instance root" root;
          if !prev_tid = tid && root.pre < !prev_pre then
            pack_error
              (Printf.sprintf
                 "interval entries not sorted by root pre within tid %d (%d after %d)"
                 tid root.pre !prev_pre);
          Array.iteri
            (fun k iv ->
              if k > 0 then begin
                check_interval "instance node" iv;
                (* descendant of the root: both offsets >= 0 *)
                if iv.pre < root.pre || iv.level < root.level then
                  pack_error
                    (Printf.sprintf
                       "instance node (%d,%d,%d) not a descendant of its root (%d,%d,%d)"
                       iv.pre iv.post iv.level root.pre root.post root.level)
              end)
            ivs;
          prev_tid := tid;
          prev_pre := root.pre)
        a

(* ---- SIDX1 flattening --------------------------------------------------- *)

let write_interval buf i =
  Varint.write buf i.pre;
  Varint.write buf i.post;
  Varint.write buf i.level

let read_interval ~limit s off =
  let pre, off = checked_varint ~limit s off in
  let post, off = checked_varint ~limit s off in
  let level, off = checked_varint ~limit s off in
  ({ pre; post; level }, off)

let write buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Varint.write buf (tid - !prev);
          prev := tid)
        tids
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          Array.iter (write_interval buf) ivs)
        a
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          write_interval buf iv)
        a

(* ---- entry-slice codec (shared by SIDX2 and the SIDX3 blocks) ----------- *)

(* The packing exploits two corpus invariants the v1 codec ignores:
   - post = pre + size - 1 - level for every node, so each interval stores
     the (small) subtree size instead of the (corpus-wide) postorder rank;
   - every non-root node of an instance is a strict descendant of the
     instance root, so its pre/level pack as offsets from the root's.
   Entry tids stay delta-coded; within a tid run the root pre is also
   delta-coded against the previous entry (roots arrive in pre-order).

   A slice [lo, lo+n) always encodes its first entry with an absolute tid
   (and absolute root pre), so every slice is independently decodable —
   this is what makes fixed-size blocks with a skip table possible. *)

let pack_size buf iv = Varint.write buf (iv.post + iv.level - iv.pre)

(* encode entries [lo, lo+n); assumes [validate] has run *)
let pack_slice buf p lo n =
  match p with
  | Filter_p tids ->
      let prev = ref (-1) in
      for i = lo to lo + n - 1 do
        let tid = tids.(i) in
        Varint.write buf (tid - max !prev 0);
        prev := tid
      done
  | Root_p a ->
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      for i = lo to lo + n - 1 do
        let tid, iv = a.(i) in
        Varint.write buf (tid - max !prev_tid 0);
        let base = if !prev_tid = tid then !prev_pre else 0 in
        Varint.write buf (iv.pre - base);
        pack_size buf iv;
        Varint.write buf iv.level;
        prev_tid := tid;
        prev_pre := iv.pre
      done
  | Interval_p a ->
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      for i = lo to lo + n - 1 do
        let tid, ivs = a.(i) in
        let root = ivs.(0) in
        Varint.write buf (tid - max !prev_tid 0);
        let base = if !prev_tid = tid then !prev_pre else 0 in
        Varint.write buf (root.pre - base);
        pack_size buf root;
        Varint.write buf root.level;
        Array.iteri
          (fun k iv ->
            if k > 0 then begin
              Varint.write buf (iv.pre - root.pre);
              pack_size buf iv;
              Varint.write buf (iv.level - root.level)
            end)
          ivs;
        prev_tid := tid;
        prev_pre := root.pre
      done

(* Decoding trusts nothing: every varint is bounds-checked against [limit],
   the entry count is validated against the remaining bytes *before* any
   allocation (each entry costs at least [per_entry] bytes), and the delta
   accumulators are explicit loops — [Array.init] applies its function in
   unspecified order, which would scramble sequential delta decoding. *)
let check_count ~count ~per_entry ~remaining off =
  if count < 0 || per_entry <= 0 || count > remaining / per_entry then
    malformed off
      (Printf.sprintf "entry count %d exceeds %d remaining bytes" count remaining)

let dummy_interval = { pre = 0; post = 0; level = 0 }

(* decode [count] slice-encoded entries; inverse of [pack_slice] *)
let unpack_slice scheme ~key_size ~count ~limit s off =
  check_count ~count
    ~per_entry:
      (match scheme with
      | Filter -> 1
      | Root_split -> 4
      | Interval ->
          if key_size < 1 then malformed off "key size must be >= 1";
          4 + (3 * (key_size - 1)))
    ~remaining:(limit - off) off;
  match scheme with
  | Filter ->
      let tids = Array.make count 0 in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        if i > 0 && d = 0 then malformed !off "duplicate tid in filter posting";
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        tids.(i) <- tid;
        prev := tid;
        off := o
      done;
      (Filter_p tids, !off)
  | Root_split ->
      let a = Array.make count (0, dummy_interval) in
      let off = ref off in
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      for i = 0 to count - 1 do
        let at = !off in
        let dtid, o = checked_varint ~limit s at in
        let tid = if i = 0 then dtid else !prev_tid + dtid in
        let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
        let dpre, o = checked_varint ~limit s o in
        let pre = base + dpre in
        let s1, o = checked_varint ~limit s o in
        let level, o = checked_varint ~limit s o in
        let post = pre + s1 - level in
        if tid < 0 || pre < 0 || post < 0 then
          malformed at "root entry out of range";
        a.(i) <- (tid, { pre; post; level });
        prev_tid := tid;
        prev_pre := pre;
        off := o
      done;
      (Root_p a, !off)
  | Interval ->
      let a = Array.make count (0, [||]) in
      let off = ref off in
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      for i = 0 to count - 1 do
        let at = !off in
        let dtid, o = checked_varint ~limit s at in
        let tid = if i = 0 then dtid else !prev_tid + dtid in
        let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
        let dpre, o = checked_varint ~limit s o in
        let root_pre = base + dpre in
        let s1, o = checked_varint ~limit s o in
        let root_level, o = checked_varint ~limit s o in
        let root_post = root_pre + s1 - root_level in
        if tid < 0 || root_pre < 0 || root_post < 0 then
          malformed at "instance root out of range";
        let root = { pre = root_pre; post = root_post; level = root_level } in
        let ivs = Array.make key_size root in
        off := o;
        for k = 1 to key_size - 1 do
          let dpre, o = checked_varint ~limit s !off in
          let pre = root_pre + dpre in
          let s1, o = checked_varint ~limit s o in
          let dlevel, o = checked_varint ~limit s o in
          let level = root_level + dlevel in
          let post = pre + s1 - level in
          if post < 0 then malformed !off "instance node out of range";
          ivs.(k) <- { pre; post; level };
          off := o
        done;
        a.(i) <- (tid, ivs);
        prev_tid := tid;
        prev_pre := root_pre
      done;
      (Interval_p a, !off)

(* ---- SIDX2 packed codec ------------------------------------------------ *)

let pack buf p =
  validate p;
  Varint.write buf (entries p);
  pack_slice buf p 0 (entries p)

let clamp_limit limit s =
  match limit with None -> src_length s | Some l -> min l (src_length s)

let unpack scheme ~key_size ?limit s off =
  let limit = clamp_limit limit s in
  let count, off = checked_varint ~limit s off in
  unpack_slice scheme ~key_size ~count ~limit s off

let packed_entries ?limit s off =
  let limit = clamp_limit limit s in
  fst (checked_varint ~limit s off)

(* ---- SIDX3 block container --------------------------------------------- *)

(* A v3 posting is a container around slice-encoded entries:

     varint  (count << 1) | blocked

   blocked = 0: the slice encoding of all [count] entries follows directly
   (identical bytes to the SIDX2 body) — the posting is one implicit block.

   blocked = 1 (only when count > block size B):

     varint  B                 entries per block (last block: the remainder)
     skip table, ceil(count/B) records:
       varint  dtid            first tid of the block, delta vs the previous
                               block's first tid (block 0: absolute)
       varint  blen            byte length of the block body
     block bodies, concatenated; each an independently decodable slice

   The skip table lets a reader jump to the block covering a target tid and
   decode only that block; B is stored, so the build-time constant can
   change without a format break.  Readers validate: B >= 1, a blocked
   posting really exceeds one block, skip records fit the remaining bytes,
   block lengths tile the body region exactly, and (at block decode) the
   body's first tid equals the skip table's and the body fills its recorded
   length. *)

let default_block_entries = 128

type block = { first_tid : int; boff : int; blen : int; bentries : int }

let pack_v3 ?(block_entries = default_block_entries) buf p =
  if block_entries < 1 then invalid_arg "Coding.pack_v3: block_entries must be >= 1";
  validate p;
  let count = entries p in
  if count <= block_entries then begin
    Varint.write buf (count lsl 1);
    pack_slice buf p 0 count
  end
  else begin
    Varint.write buf ((count lsl 1) lor 1);
    Varint.write buf block_entries;
    let nblocks = (count + block_entries - 1) / block_entries in
    let bodies =
      Array.init nblocks (fun b ->
          let lo = b * block_entries in
          let scratch = Buffer.create 512 in
          pack_slice scratch p lo (min block_entries (count - lo));
          Buffer.contents scratch)
    in
    let prev = ref 0 in
    Array.iteri
      (fun b body ->
        let ft = tid_at p (b * block_entries) in
        Varint.write buf (ft - !prev);
        prev := ft;
        Varint.write buf (String.length body))
      bodies;
    Array.iter (Buffer.add_string buf) bodies
  end

let dummy_block = { first_tid = -1; boff = 0; blen = 0; bentries = 0 }

let v3_layout scheme ?limit s off =
  let limit = clamp_limit limit s in
  let hdr, off = checked_varint ~limit s off in
  let count = hdr lsr 1 in
  if hdr land 1 = 0 then
    (count, [| { first_tid = -1; boff = off; blen = limit - off; bentries = count } |])
  else begin
    let at = off in
    let be, off = checked_varint ~limit s off in
    if be < 1 then malformed at "block size must be >= 1";
    if count <= be then malformed at "blocked posting does not exceed one block";
    let nblocks = (count + be - 1) / be in
    (* each skip record costs at least 2 bytes: bound before allocating *)
    if nblocks > (limit - off) / 2 then
      malformed off "skip table exceeds the remaining bytes";
    let blocks = Array.make nblocks dummy_block in
    let off = ref off in
    let prev_tid = ref 0 in
    let body_len = ref 0 in
    for b = 0 to nblocks - 1 do
      let at = !off in
      let dtid, o = checked_varint ~limit s at in
      let blen, o = checked_varint ~limit s o in
      if blen < 1 then malformed at "zero-length block";
      if b > 0 && dtid = 0 && scheme = Filter then
        malformed at "filter block first tids not strictly increasing";
      let first_tid = !prev_tid + dtid in
      if first_tid < 0 then malformed at "block first tid overflow";
      let bentries = if b = nblocks - 1 then count - ((nblocks - 1) * be) else be in
      blocks.(b) <- { first_tid; boff = 0; blen; bentries };
      prev_tid := first_tid;
      body_len := !body_len + blen;
      if !body_len < 0 || !body_len > limit - !off then
        malformed at "block lengths exceed the posting bytes";
      off := o
    done;
    if !body_len <> limit - !off then
      malformed !off "block lengths do not tile the posting bytes";
    let pos = ref !off in
    Array.iteri
      (fun b blk ->
        blocks.(b) <- { blk with boff = !pos };
        pos := !pos + blk.blen)
      blocks;
    (count, blocks)
  end

let unpack_block scheme ~key_size s (b : block) =
  let finish = b.boff + b.blen in
  let p, off = unpack_slice scheme ~key_size ~count:b.bentries ~limit:finish s b.boff in
  if off <> finish then malformed off "block shorter than its recorded length";
  if b.first_tid >= 0 && b.bentries > 0 && tid_at p 0 <> b.first_tid then
    malformed b.boff "block first tid disagrees with the skip table";
  p

let concat_parts scheme ~count blocks (parts : posting array) =
  (* cross-block tid monotonicity: the within-block invariants hold per
     slice, so the boundaries are the only place corrupt bytes could break
     the sortedness the evaluators rely on *)
  let last p = tid_at p (entries p - 1) in
  Array.iteri
    (fun b part ->
      if b > 0 then begin
        let prev = last parts.(b - 1) in
        let ok =
          match scheme with
          | Filter -> tid_at part 0 > prev
          | Interval | Root_split -> tid_at part 0 >= prev
        in
        if not ok then
          malformed blocks.(b).boff "block tids overlap the previous block"
      end)
    parts;
  match scheme with
  | Filter ->
      let arrs =
        Array.map (function Filter_p a -> a | _ -> assert false) parts
      in
      let out = Array.concat (Array.to_list arrs) in
      assert (Array.length out = count);
      Filter_p out
  | Root_split ->
      let arrs = Array.map (function Root_p a -> a | _ -> assert false) parts in
      let out = Array.concat (Array.to_list arrs) in
      assert (Array.length out = count);
      Root_p out
  | Interval ->
      let arrs =
        Array.map (function Interval_p a -> a | _ -> assert false) parts
      in
      let out = Array.concat (Array.to_list arrs) in
      assert (Array.length out = count);
      Interval_p out

let unpack_v3 scheme ~key_size ?limit s off =
  let limit = clamp_limit limit s in
  let count, blocks = v3_layout scheme ~limit s off in
  let parts = Array.map (unpack_block scheme ~key_size s) blocks in
  let finish =
    let b = blocks.(Array.length blocks - 1) in
    b.boff + b.blen
  in
  if Array.length parts = 1 then (parts.(0), finish)
  else (concat_parts scheme ~count blocks parts, finish)

let packed_entries_v3 ?limit s off =
  let limit = clamp_limit limit s in
  fst (checked_varint ~limit s off) lsr 1

(* ---- SIDX4 interval slices: structure shared with the corpus store ----- *)

(* The v2/v3 interval slice spends three varints per node (pre, size, level)
   even though the corpus already knows every node's (pre, post, level).  In
   an SIDX4 file the tree structure lives once, succinctly, in the mapped
   corpus store, so an interval posting only needs to *name* nodes: tid plus
   preorder ranks.  Decoding takes a [resolve] closure (tid -> pre ->
   interval, backed by the store) that reconstructs the exact intervals the
   v3 coding would have carried — byte-identical query results, ~3x fewer
   posting bytes per node.

   Container framing (header, skip table, blocks) is exactly the v3 layout,
   so [v3_layout] parses v4 postings unchanged; only the slice bytes differ:

     entry:  varint dtid                    as in v2/v3
             varint dpre                    root pre, delta within a tid run
             (key_size - 1) x varint dpre   node pre - root pre

   Filter and root-split postings gain nothing from resolution (they carry
   no redundant structure), so SIDX4 stores them as plain v3 bytes. *)

let pack_v4_slice buf p lo n =
  match p with
  | Filter_p _ | Root_p _ -> invalid_arg "Coding.pack_v4: interval postings only"
  | Interval_p a ->
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      for i = lo to lo + n - 1 do
        let tid, ivs = a.(i) in
        let root = ivs.(0) in
        Varint.write buf (tid - max !prev_tid 0);
        let base = if !prev_tid = tid then !prev_pre else 0 in
        Varint.write buf (root.pre - base);
        Array.iteri
          (fun k iv -> if k > 0 then Varint.write buf (iv.pre - root.pre))
          ivs;
        prev_tid := tid;
        prev_pre := root.pre
      done

let pack_v4 ?(block_entries = default_block_entries) buf p =
  if block_entries < 1 then invalid_arg "Coding.pack_v4: block_entries must be >= 1";
  validate p;
  let count = entries p in
  if count <= block_entries then begin
    Varint.write buf (count lsl 1);
    pack_v4_slice buf p 0 count
  end
  else begin
    Varint.write buf ((count lsl 1) lor 1);
    Varint.write buf block_entries;
    let nblocks = (count + block_entries - 1) / block_entries in
    let bodies =
      Array.init nblocks (fun b ->
          let lo = b * block_entries in
          let scratch = Buffer.create 512 in
          pack_v4_slice scratch p lo (min block_entries (count - lo));
          Buffer.contents scratch)
    in
    let prev = ref 0 in
    Array.iteri
      (fun b body ->
        let ft = tid_at p (b * block_entries) in
        Varint.write buf (ft - !prev);
        prev := ft;
        Varint.write buf (String.length body))
      bodies;
    Array.iter (Buffer.add_string buf) bodies
  end

(* decode [count] v4-slice entries; [resolve tid pre] supplies the interval
   from the corpus store (and is the bounds authority for both arguments —
   a corrupt tid or pre must surface as its error, never as a crash) *)
let unpack_v4_slice ~key_size ~resolve ~count ~limit s off =
  if key_size < 1 then malformed off "key size must be >= 1";
  check_count ~count ~per_entry:(1 + key_size) ~remaining:(limit - off) off;
  let a = Array.make count (0, [||]) in
  let off = ref off in
  let prev_tid = ref 0 in
  let prev_pre = ref 0 in
  for i = 0 to count - 1 do
    let at = !off in
    let dtid, o = checked_varint ~limit s at in
    let tid = if i = 0 then dtid else !prev_tid + dtid in
    let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
    let dpre, o = checked_varint ~limit s o in
    let root_pre = base + dpre in
    if tid < 0 || root_pre < 0 then malformed at "instance root out of range";
    let root : interval = resolve tid root_pre in
    let ivs = Array.make key_size root in
    off := o;
    for k = 1 to key_size - 1 do
      let dpre, o = checked_varint ~limit s !off in
      let pre = root_pre + dpre in
      if pre < 0 then malformed !off "instance node out of range";
      ivs.(k) <- resolve tid pre;
      off := o
    done;
    a.(i) <- (tid, ivs);
    prev_tid := tid;
    prev_pre := root_pre
  done;
  (Interval_p a, !off)

let unpack_block_v4 ~key_size ~resolve s (b : block) =
  let finish = b.boff + b.blen in
  let p, off = unpack_v4_slice ~key_size ~resolve ~count:b.bentries ~limit:finish s b.boff in
  if off <> finish then malformed off "block shorter than its recorded length";
  if b.first_tid >= 0 && b.bentries > 0 && tid_at p 0 <> b.first_tid then
    malformed b.boff "block first tid disagrees with the skip table";
  p

let unpack_v4 ~key_size ~resolve ?limit s off =
  let limit = clamp_limit limit s in
  let count, blocks = v3_layout Interval ~limit s off in
  let parts = Array.map (unpack_block_v4 ~key_size ~resolve s) blocks in
  let finish =
    let b = blocks.(Array.length blocks - 1) in
    b.boff + b.blen
  in
  if Array.length parts = 1 then (parts.(0), finish)
  else (concat_parts Interval ~count blocks parts, finish)

(* ---- SIDX1 legacy codec ------------------------------------------------ *)

let read scheme ~key_size ?limit s off =
  let limit = clamp_limit limit s in
  let count, off = checked_varint ~limit s off in
  check_count ~count
    ~per_entry:
      (match scheme with
      | Filter -> 1
      | Root_split -> 4
      | Interval ->
          if key_size < 1 then malformed off "key size must be >= 1";
          1 + (3 * key_size))
    ~remaining:(limit - off) off;
  match scheme with
  | Filter ->
      let tids = Array.make count 0 in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        tids.(i) <- tid;
        prev := tid;
        off := o
      done;
      (Filter_p tids, !off)
  | Interval ->
      let a = Array.make count (0, [||]) in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        prev := tid;
        off := o;
        let ivs = Array.make key_size dummy_interval in
        for k = 0 to key_size - 1 do
          let iv, o = read_interval ~limit s !off in
          ivs.(k) <- iv;
          off := o
        done;
        a.(i) <- (tid, ivs)
      done;
      (Interval_p a, !off)
  | Root_split ->
      let a = Array.make count (0, dummy_interval) in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        prev := tid;
        let iv, o = read_interval ~limit s o in
        a.(i) <- (tid, iv);
        off := o
      done;
      (Root_p a, !off)
