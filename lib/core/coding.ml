open Si_subtree

type scheme = Filter | Interval | Root_split

let scheme_to_string = function
  | Filter -> "filter"
  | Interval -> "interval"
  | Root_split -> "root-split"

let scheme_of_string = function
  | "filter" -> Ok Filter
  | "interval" -> Ok Interval
  | "root-split" | "rs" -> Ok Root_split
  | s -> Error (Printf.sprintf "unknown scheme %S (want filter|interval|root-split)" s)

type interval = { pre : int; post : int; level : int }

let pp_interval ppf i = Format.fprintf ppf "(%d,%d,%d)" i.pre i.post i.level

type posting =
  | Filter_p of int array
  | Interval_p of (int * interval array) array
  | Root_p of (int * interval) array

let entries = function
  | Filter_p a -> Array.length a
  | Interval_p a -> Array.length a
  | Root_p a -> Array.length a

let write_interval buf i =
  Varint.write buf i.pre;
  Varint.write buf i.post;
  Varint.write buf i.level

let read_interval s off =
  let pre, off = Varint.read s off in
  let post, off = Varint.read s off in
  let level, off = Varint.read s off in
  ({ pre; post; level }, off)

let write buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Varint.write buf (tid - !prev);
          prev := tid)
        tids
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          Array.iter (write_interval buf) ivs)
        a
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          write_interval buf iv)
        a

(* ---- SIDX2 packed codec ----------------------------------------------- *)

(* The v2 packing exploits two corpus invariants the v1 codec ignores:
   - post = pre + size - 1 - level for every node, so each interval stores
     the (small) subtree size instead of the (corpus-wide) postorder rank;
   - every non-root node of an instance is a strict descendant of the
     instance root, so its pre/level pack as offsets from the root's.
   Entry tids stay delta-coded; within a tid run the root pre is also
   delta-coded against the previous entry (roots arrive in pre-order). *)

let pack_size buf iv =
  (* size - 1 = post + level - pre; >= 0 by the pre/post/level identity *)
  Varint.write buf (iv.post + iv.level - iv.pre)

let pack buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Varint.write buf (tid - !prev);
          prev := tid)
        tids
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          let dtid = tid - max !prev_tid 0 in
          Varint.write buf (if !prev_tid < 0 then tid else dtid);
          (* same tid: roots are sorted by pre, delta >= 0; new tid: absolute *)
          let base = if !prev_tid = tid then !prev_pre else 0 in
          Varint.write buf (iv.pre - base);
          pack_size buf iv;
          Varint.write buf iv.level;
          prev_tid := tid;
          prev_pre := iv.pre)
        a
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          let dtid = tid - max !prev_tid 0 in
          Varint.write buf (if !prev_tid < 0 then tid else dtid);
          let root = ivs.(0) in
          let base = if !prev_tid = tid then !prev_pre else 0 in
          Varint.write buf (root.pre - base);
          pack_size buf root;
          Varint.write buf root.level;
          Array.iteri
            (fun k iv ->
              if k > 0 then begin
                (* strict descendant of the root: both offsets >= 1 *)
                Varint.write buf (iv.pre - root.pre);
                pack_size buf iv;
                Varint.write buf (iv.level - root.level)
              end)
            ivs;
          prev_tid := tid;
          prev_pre := root.pre)
        a

let unpack scheme ~key_size s off =
  let count, off = Varint.read s off in
  match scheme with
  | Filter ->
      let prev = ref 0 in
      let off = ref off in
      let tids =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            off := o;
            prev := !prev + d;
            !prev)
      in
      (Filter_p tids, !off)
  | Root_split ->
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun i ->
            let dtid, o = Varint.read s !off in
            let tid = if i = 0 then dtid else !prev_tid + dtid in
            let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
            let dpre, o = Varint.read s o in
            let pre = base + dpre in
            let s1, o = Varint.read s o in
            let level, o = Varint.read s o in
            off := o;
            prev_tid := tid;
            prev_pre := pre;
            (tid, { pre; post = pre + s1 - level; level }))
      in
      (Root_p a, !off)
  | Interval ->
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun i ->
            let dtid, o = Varint.read s !off in
            let tid = if i = 0 then dtid else !prev_tid + dtid in
            let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
            let dpre, o = Varint.read s o in
            let root_pre = base + dpre in
            let s1, o = Varint.read s o in
            let root_level, o = Varint.read s o in
            let root =
              { pre = root_pre; post = root_pre + s1 - root_level; level = root_level }
            in
            off := o;
            let ivs =
              Array.init key_size (fun k ->
                  if k = 0 then root
                  else begin
                    let dpre, o = Varint.read s !off in
                    let pre = root_pre + dpre in
                    let s1, o = Varint.read s o in
                    let dlevel, o = Varint.read s o in
                    let level = root_level + dlevel in
                    off := o;
                    { pre; post = pre + s1 - level; level }
                  end)
            in
            prev_tid := tid;
            prev_pre := root_pre;
            (tid, ivs))
      in
      (Interval_p a, !off)

let packed_entries s off = fst (Varint.read s off)

(* ---- SIDX1 legacy codec ------------------------------------------------ *)

let read scheme ~key_size s off =
  let count, off = Varint.read s off in
  match scheme with
  | Filter ->
      let prev = ref 0 in
      let off = ref off in
      let tids =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            off := o;
            prev := !prev + d;
            !prev)
      in
      (Filter_p tids, !off)
  | Interval ->
      let prev = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            prev := !prev + d;
            off := o;
            let ivs =
              Array.init key_size (fun _ ->
                  let iv, o = read_interval s !off in
                  off := o;
                  iv)
            in
            (!prev, ivs))
      in
      (Interval_p a, !off)
  | Root_split ->
      let prev = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            prev := !prev + d;
            off := o;
            let iv, o = read_interval s !off in
            off := o;
            (!prev, iv))
      in
      (Root_p a, !off)
