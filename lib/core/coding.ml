open Si_subtree

type scheme = Filter | Interval | Root_split

let scheme_to_string = function
  | Filter -> "filter"
  | Interval -> "interval"
  | Root_split -> "root-split"

let scheme_of_string = function
  | "filter" -> Ok Filter
  | "interval" -> Ok Interval
  | "root-split" | "rs" -> Ok Root_split
  | s -> Error (Printf.sprintf "unknown scheme %S (want filter|interval|root-split)" s)

type interval = { pre : int; post : int; level : int }

let pp_interval ppf i = Format.fprintf ppf "(%d,%d,%d)" i.pre i.post i.level

type posting =
  | Filter_p of int array
  | Interval_p of (int * interval array) array
  | Root_p of (int * interval) array

let entries = function
  | Filter_p a -> Array.length a
  | Interval_p a -> Array.length a
  | Root_p a -> Array.length a

(* ---- defensive primitives ---------------------------------------------- *)

exception Malformed of { offset : int; what : string }

let malformed offset what = raise (Malformed { offset; what })

(* Like [Varint.read] but bounded by an explicit [limit] (the end of the
   posting's byte slice, not of the whole backing buffer — a decode must
   never stray into the neighbouring posting) and failing with an offset. *)
let checked_varint ~limit s off =
  let limit = min limit (String.length s) in
  let rec go o shift acc =
    if o >= limit then malformed o "truncated varint";
    if shift > 56 then malformed o "overlong varint";
    let b = Char.code (String.unsafe_get s o) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then malformed o "varint overflow";
    if b land 0x80 = 0 then (acc, o + 1) else go (o + 1) (shift + 7) acc
  in
  if off < 0 then malformed off "negative offset";
  go off 0 0

(* ---- pack-time validation ---------------------------------------------- *)

let pack_error what = invalid_arg ("Coding.pack: " ^ what)

let check_interval what iv =
  if iv.pre < 0 || iv.level < 0 then
    pack_error (Printf.sprintf "%s: negative pre/level %d/%d" what iv.pre iv.level);
  (* size - 1 = post + level - pre; >= 0 by the pre/post/level identity *)
  if iv.post + iv.level - iv.pre < 0 then
    pack_error
      (Printf.sprintf "%s: interval (%d,%d,%d) violates post = pre + size-1 - level"
         what iv.pre iv.post iv.level)

(* ---- SIDX1 flattening --------------------------------------------------- *)

let write_interval buf i =
  Varint.write buf i.pre;
  Varint.write buf i.post;
  Varint.write buf i.level

let read_interval ~limit s off =
  let pre, off = checked_varint ~limit s off in
  let post, off = checked_varint ~limit s off in
  let level, off = checked_varint ~limit s off in
  ({ pre; post; level }, off)

let write buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Varint.write buf (tid - !prev);
          prev := tid)
        tids
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          Array.iter (write_interval buf) ivs)
        a
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          write_interval buf iv)
        a

(* ---- SIDX2 packed codec ----------------------------------------------- *)

(* The v2 packing exploits two corpus invariants the v1 codec ignores:
   - post = pre + size - 1 - level for every node, so each interval stores
     the (small) subtree size instead of the (corpus-wide) postorder rank;
   - every non-root node of an instance is a strict descendant of the
     instance root, so its pre/level pack as offsets from the root's.
   Entry tids stay delta-coded; within a tid run the root pre is also
   delta-coded against the previous entry (roots arrive in pre-order).

   Those deltas silently encode garbage if entries ever arrive unsorted, so
   [pack] validates every invariant it relies on and fails loudly instead
   of producing bytes that decode to a different posting. *)

let pack_size buf iv = Varint.write buf (iv.post + iv.level - iv.pre)

let pack buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref (-1) in
      Array.iter
        (fun tid ->
          if tid <= !prev then
            pack_error
              (Printf.sprintf "filter tids not strictly increasing (%d after %d)" tid
                 !prev);
          Varint.write buf (tid - max !prev 0);
          prev := tid)
        tids
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          if tid < max !prev_tid 0 then
            pack_error
              (Printf.sprintf "root entries not sorted by tid (%d after %d)" tid
                 !prev_tid);
          check_interval "root entry" iv;
          (* same tid: roots are sorted by pre, delta >= 0; new tid: absolute *)
          if !prev_tid = tid && iv.pre < !prev_pre then
            pack_error
              (Printf.sprintf
                 "root entries not sorted by pre within tid %d (%d after %d)" tid
                 iv.pre !prev_pre);
          let dtid = tid - max !prev_tid 0 in
          Varint.write buf (if !prev_tid < 0 then tid else dtid);
          let base = if !prev_tid = tid then !prev_pre else 0 in
          Varint.write buf (iv.pre - base);
          pack_size buf iv;
          Varint.write buf iv.level;
          prev_tid := tid;
          prev_pre := iv.pre)
        a
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev_tid = ref (-1) in
      let prev_pre = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          if Array.length ivs = 0 then pack_error "interval entry with no nodes";
          if tid < max !prev_tid 0 then
            pack_error
              (Printf.sprintf "interval entries not sorted by tid (%d after %d)" tid
                 !prev_tid);
          let root = ivs.(0) in
          check_interval "instance root" root;
          if !prev_tid = tid && root.pre < !prev_pre then
            pack_error
              (Printf.sprintf
                 "interval entries not sorted by root pre within tid %d (%d after %d)"
                 tid root.pre !prev_pre);
          let dtid = tid - max !prev_tid 0 in
          Varint.write buf (if !prev_tid < 0 then tid else dtid);
          let base = if !prev_tid = tid then !prev_pre else 0 in
          Varint.write buf (root.pre - base);
          pack_size buf root;
          Varint.write buf root.level;
          Array.iteri
            (fun k iv ->
              if k > 0 then begin
                check_interval "instance node" iv;
                (* descendant of the root: both offsets >= 0 *)
                if iv.pre < root.pre || iv.level < root.level then
                  pack_error
                    (Printf.sprintf
                       "instance node (%d,%d,%d) not a descendant of its root (%d,%d,%d)"
                       iv.pre iv.post iv.level root.pre root.post root.level);
                Varint.write buf (iv.pre - root.pre);
                pack_size buf iv;
                Varint.write buf (iv.level - root.level)
              end)
            ivs;
          prev_tid := tid;
          prev_pre := root.pre)
        a

(* Decoding trusts nothing: every varint is bounds-checked against [limit],
   the entry count is validated against the remaining bytes *before* any
   allocation (each entry costs at least [per_entry] bytes), and the delta
   accumulators are explicit loops — [Array.init] applies its function in
   unspecified order, which would scramble sequential delta decoding. *)
let check_count ~count ~per_entry ~remaining off =
  if count < 0 || per_entry <= 0 || count > remaining / per_entry then
    malformed off
      (Printf.sprintf "entry count %d exceeds %d remaining bytes" count remaining)

let dummy_interval = { pre = 0; post = 0; level = 0 }

let unpack scheme ~key_size ?limit s off =
  let limit =
    match limit with None -> String.length s | Some l -> min l (String.length s)
  in
  let count, off = checked_varint ~limit s off in
  check_count ~count
    ~per_entry:
      (match scheme with
      | Filter -> 1
      | Root_split -> 4
      | Interval ->
          if key_size < 1 then malformed off "key size must be >= 1";
          4 + (3 * (key_size - 1)))
    ~remaining:(limit - off) off;
  match scheme with
  | Filter ->
      let tids = Array.make count 0 in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        if i > 0 && d = 0 then malformed !off "duplicate tid in filter posting";
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        tids.(i) <- tid;
        prev := tid;
        off := o
      done;
      (Filter_p tids, !off)
  | Root_split ->
      let a = Array.make count (0, dummy_interval) in
      let off = ref off in
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      for i = 0 to count - 1 do
        let at = !off in
        let dtid, o = checked_varint ~limit s at in
        let tid = if i = 0 then dtid else !prev_tid + dtid in
        let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
        let dpre, o = checked_varint ~limit s o in
        let pre = base + dpre in
        let s1, o = checked_varint ~limit s o in
        let level, o = checked_varint ~limit s o in
        let post = pre + s1 - level in
        if tid < 0 || pre < 0 || post < 0 then
          malformed at "root entry out of range";
        a.(i) <- (tid, { pre; post; level });
        prev_tid := tid;
        prev_pre := pre;
        off := o
      done;
      (Root_p a, !off)
  | Interval ->
      let a = Array.make count (0, [||]) in
      let off = ref off in
      let prev_tid = ref 0 in
      let prev_pre = ref 0 in
      for i = 0 to count - 1 do
        let at = !off in
        let dtid, o = checked_varint ~limit s at in
        let tid = if i = 0 then dtid else !prev_tid + dtid in
        let base = if i > 0 && dtid = 0 then !prev_pre else 0 in
        let dpre, o = checked_varint ~limit s o in
        let root_pre = base + dpre in
        let s1, o = checked_varint ~limit s o in
        let root_level, o = checked_varint ~limit s o in
        let root_post = root_pre + s1 - root_level in
        if tid < 0 || root_pre < 0 || root_post < 0 then
          malformed at "instance root out of range";
        let root = { pre = root_pre; post = root_post; level = root_level } in
        let ivs = Array.make key_size root in
        off := o;
        for k = 1 to key_size - 1 do
          let dpre, o = checked_varint ~limit s !off in
          let pre = root_pre + dpre in
          let s1, o = checked_varint ~limit s o in
          let dlevel, o = checked_varint ~limit s o in
          let level = root_level + dlevel in
          let post = pre + s1 - level in
          if post < 0 then malformed !off "instance node out of range";
          ivs.(k) <- { pre; post; level };
          off := o
        done;
        a.(i) <- (tid, ivs);
        prev_tid := tid;
        prev_pre := root_pre
      done;
      (Interval_p a, !off)

let packed_entries ?limit s off =
  let limit =
    match limit with None -> String.length s | Some l -> min l (String.length s)
  in
  fst (checked_varint ~limit s off)

(* ---- SIDX1 legacy codec ------------------------------------------------ *)

let read scheme ~key_size ?limit s off =
  let limit =
    match limit with None -> String.length s | Some l -> min l (String.length s)
  in
  let count, off = checked_varint ~limit s off in
  check_count ~count
    ~per_entry:
      (match scheme with
      | Filter -> 1
      | Root_split -> 4
      | Interval ->
          if key_size < 1 then malformed off "key size must be >= 1";
          1 + (3 * key_size))
    ~remaining:(limit - off) off;
  match scheme with
  | Filter ->
      let tids = Array.make count 0 in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        tids.(i) <- tid;
        prev := tid;
        off := o
      done;
      (Filter_p tids, !off)
  | Interval ->
      let a = Array.make count (0, [||]) in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        prev := tid;
        off := o;
        let ivs = Array.make key_size dummy_interval in
        for k = 0 to key_size - 1 do
          let iv, o = read_interval ~limit s !off in
          ivs.(k) <- iv;
          off := o
        done;
        a.(i) <- (tid, ivs)
      done;
      (Interval_p a, !off)
  | Root_split ->
      let a = Array.make count (0, dummy_interval) in
      let off = ref off in
      let prev = ref 0 in
      for i = 0 to count - 1 do
        let d, o = checked_varint ~limit s !off in
        let tid = !prev + d in
        if tid < 0 then malformed !off "tid overflow";
        prev := tid;
        let iv, o = read_interval ~limit s o in
        a.(i) <- (tid, iv);
        off := o
      done;
      (Root_p a, !off)
