open Si_subtree

type scheme = Filter | Interval | Root_split

let scheme_to_string = function
  | Filter -> "filter"
  | Interval -> "interval"
  | Root_split -> "root-split"

let scheme_of_string = function
  | "filter" -> Ok Filter
  | "interval" -> Ok Interval
  | "root-split" | "rs" -> Ok Root_split
  | s -> Error (Printf.sprintf "unknown scheme %S (want filter|interval|root-split)" s)

type interval = { pre : int; post : int; level : int }

let pp_interval ppf i = Format.fprintf ppf "(%d,%d,%d)" i.pre i.post i.level

type posting =
  | Filter_p of int array
  | Interval_p of (int * interval array) array
  | Root_p of (int * interval) array

let entries = function
  | Filter_p a -> Array.length a
  | Interval_p a -> Array.length a
  | Root_p a -> Array.length a

let write_interval buf i =
  Varint.write buf i.pre;
  Varint.write buf i.post;
  Varint.write buf i.level

let read_interval s off =
  let pre, off = Varint.read s off in
  let post, off = Varint.read s off in
  let level, off = Varint.read s off in
  ({ pre; post; level }, off)

let write buf = function
  | Filter_p tids ->
      Varint.write buf (Array.length tids);
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Varint.write buf (tid - !prev);
          prev := tid)
        tids
  | Interval_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, ivs) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          Array.iter (write_interval buf) ivs)
        a
  | Root_p a ->
      Varint.write buf (Array.length a);
      let prev = ref 0 in
      Array.iter
        (fun (tid, iv) ->
          Varint.write buf (tid - !prev);
          prev := tid;
          write_interval buf iv)
        a

let read scheme ~key_size s off =
  let count, off = Varint.read s off in
  match scheme with
  | Filter ->
      let prev = ref 0 in
      let off = ref off in
      let tids =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            off := o;
            prev := !prev + d;
            !prev)
      in
      (Filter_p tids, !off)
  | Interval ->
      let prev = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            prev := !prev + d;
            off := o;
            let ivs =
              Array.init key_size (fun _ ->
                  let iv, o = read_interval s !off in
                  off := o;
                  iv)
            in
            (!prev, ivs))
      in
      (Interval_p a, !off)
  | Root_split ->
      let prev = ref 0 in
      let off = ref off in
      let a =
        Array.init count (fun _ ->
            let d, o = Varint.read s !off in
            prev := !prev + d;
            off := o;
            let iv, o = read_interval s !off in
            off := o;
            (!prev, iv))
      in
      (Root_p a, !off)
