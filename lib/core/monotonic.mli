(** Monotonic wall clock.

    [Unix.gettimeofday] is subject to NTP steps: a clock slew mid-query
    produces negative or wildly wrong latencies.  Every latency, deadline
    and elapsed-time measurement on the query path uses this clock
    instead ([clock_gettime(CLOCK_MONOTONIC)] via a C stub — no
    allocation per call, safe across domains). *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin; never goes backwards.
    Only differences are meaningful. *)

val elapsed_s : int -> float
(** [elapsed_s t0] is the seconds elapsed since [t0 = now_ns ()]. *)
