external now_ns : unit -> int = "si_monotonic_now_ns" [@@noalloc]

let elapsed_s t0 = float_of_int (now_ns () - t0) *. 1e-9
