(** CRC-32 (IEEE 802.3, polynomial [0xedb88320]) over strings.

    Guards the SIDX2 on-disk regions: {!Builder.save} records one checksum
    per region in the file footer and {!Builder.load} verifies them before
    trusting a byte.  The incremental API lets the writer fold the checksum
    over streamed records without buffering a region. *)

type t
(** Running (unfinalized) checksum state. *)

val empty : t
(** State over zero bytes. *)

val feed_substring : t -> string -> int -> int -> t
(** [feed_substring c s pos len] folds [s.[pos .. pos+len-1]] into [c]. *)

val feed_string : t -> string -> t

val value : t -> int
(** Finalized checksum in [0 .. 0xffff_ffff]. *)

val string : string -> int
(** One-shot checksum of a whole string. *)

val substring : string -> int -> int -> int
(** One-shot checksum of a slice. *)

val feed_bigsub :
  t ->
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  int ->
  t
(** [feed_bigsub c m pos len] folds the mapped slice
    [m.[pos .. pos+len-1]] into [c] (no bounds check — callers slice
    against region tables they already validated).  Lets the scrub verify
    a large mapped region incrementally, one budget-sized chunk per
    pass. *)

val bigsub :
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  int ->
  int
(** One-shot checksum of a memory-mapped slice (bounds checked) — the
    lazily-verified SIDX4 / corpus-store regions hash in place, no copy. *)
