(** Cooperative per-query resource governance.

    The paper's worst-case queries (high-fanout covers over heavy posting
    lists) can cost orders of magnitude more than the median; on a serving
    path one pathological query must not run unbounded.  A {!t} states the
    budget; a {!ctx} (one per query evaluation) does the accounting.  The
    evaluators, joins and cursors call {!step} at merge-advance granularity
    and {!charge_decode} at block-decode granularity, so an overrun
    surfaces within one block / one advance as
    [Si_error.Timeout] or [Si_error.Resource_exhausted] — bounded,
    predictable per-query cost in the spirit of structural self-indexes.

    Degradation contract: with [partial = true] the evaluator catches the
    overrun and returns the results verified so far with
    [outcome.truncated = true]; results not yet verified at that point are
    simply absent (the partial set is always a subset of the full answer).
    [max_results] always degrades this way — a capped answer is an [Ok]
    with the flag, never an error. *)

type t = {
  deadline_ns : int option;  (** wall budget per query, monotonic clock *)
  max_decoded_bytes : int option;
      (** budget on decoded posting bytes (cache hits are free — the
          budget bounds decode {e work}, not bytes touched) *)
  max_join_steps : int option;
      (** budget on merge advances / join predicate evaluations /
          validation probes *)
  max_results : int option;  (** cap on returned matches *)
  partial : bool;  (** degrade overruns to truncated [Ok] results *)
}

val none : t
(** No governance — the default everywhere; evaluation pays no
    accounting. *)

val v :
  ?deadline_ns:int ->
  ?max_decoded_bytes:int ->
  ?max_join_steps:int ->
  ?max_results:int ->
  ?partial:bool ->
  unit ->
  t

val is_none : t -> bool

type outcome = {
  matches : (int * int) list;
  truncated : bool;
  degraded : bool;
}
(** What a governed evaluation returns: the match list (sorted,
    duplicate-free — identical to the ungoverned answer when [truncated]
    is [false]), whether any limit cut it short, and whether any part of
    the answer was produced by the integrity-quarantine fallback path
    (exact but slower — or truncated under budget pressure) rather than
    the index proper.  [degraded] extends the truncated-⊂-exact
    contract: a degraded answer is still a subset of the exact answer,
    and is exact whenever [truncated] is [false]. *)

type ctx
(** Accounting state of one query evaluation: start time, spent budgets,
    and the results verified so far (for partial degradation).  Not
    thread-safe; one per query, confined to its evaluating domain. *)

type shared
(** One gauge shared across the per-shard legs of a fan-out query: byte
    and step spend pool atomically, and every leg's deadline runs from
    the same start instant, so the whole fan-out answers under a single
    budget.  [max_results] is deliberately {e not} pooled — each leg may
    emit up to the cap and the merge enforces the global cap, preserving
    the truncated-⊂-exact contract without emit-path coordination. *)

val share : t -> shared option
(** [None] when the limits are {!none} (every leg then runs ungoverned).
    Reads the start clock once, here. *)

val shared_limits : shared -> t
(** The budget the gauge was created from. *)

val start_shared : shared -> ctx option
(** A per-leg ctx accounting against the shared pools.  One per leg —
    the ctx itself is still domain-confined; only the pooled counters
    are atomic.  Checks the deadline immediately, like {!start}. *)

exception Truncated
(** Raised by {!emit} when [max_results] is reached; the evaluator's top
    catches it and returns {!collected} with [truncated = true]. *)

val start : t -> ctx option
(** [None] when the limits are {!none} (the zero-cost path).  Checks the
    deadline once immediately, so a deadline of 0 times out
    deterministically before any work. *)

val step : ctx -> unit
(** One unit of join/merge/validation work.  Always checks the step
    budget; checks the deadline every 256 steps (a clock read per advance
    would dominate the advance). *)

val charge_decode : ctx -> int -> unit
(** Charge [bytes] of decoded posting data; checks the byte budget and the
    deadline.  Called once per block decode. *)

val emit : ctx -> int * int -> unit
(** Record one verified result.  Raises {!Truncated} when a result beyond
    [max_results] arrives (the first [max_results] are kept). *)

val collected : ctx -> (int * int) list
(** The verified results so far, sorted and deduplicated — the payload of
    a truncated outcome. *)
