open Si_subtree
open Si_query

let cover_for (index : Builder.t) ix =
  match index.Builder.scheme with
  | Coding.Root_split -> Cover.min_rc ix ~mss:index.Builder.mss
  | Coding.Filter | Coding.Interval -> Cover.optimal_cover ix ~mss:index.Builder.mss

(* monomorphic comparator for (tid, node) results: polymorphic compare on
   the hot result path allocates and defeats flambda *)
let cmp_pair (a1, a2) (b1, b2) =
  if a1 <> b1 then Int.compare a1 b1 else Int.compare (a2 : int) b2

(* same-label sibling pairs that live in different chunks: the injectivity
   constraints extraction does not already guarantee (DESIGN.md §6b) *)
let cross_chunk_pairs (ix : Ast.indexed) (cover : Cover.t) =
  let pairs = ref [] in
  Array.iter
    (fun kids ->
      let rec go = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                if
                  ix.Ast.labels.(x) = ix.Ast.labels.(y)
                  && cover.Cover.chunk_of.(x) <> cover.Cover.chunk_of.(y)
                then pairs := (x, y) :: !pairs)
              rest;
            go rest
      in
      go kids)
    ix.Ast.children;
  !pairs

let encodings_opt ~label_id frag =
  match Canonical.encodings ~label_id frag with
  | exception Not_found -> None
  | r -> Some r

(* ---- filter-based ----------------------------------------------------- *)

(* growable int buffer for intersection outputs *)
module Ibuf = struct
  type t = { mutable arr : int array; mutable len : int }

  let create n = { arr = Array.make (max n 16) 0; len = 0 }

  let push b x =
    if b.len = Array.length b.arr then begin
      let bigger = Array.make (2 * b.len) 0 in
      Array.blit b.arr 0 bigger 0 b.len;
      b.arr <- bigger
    end;
    b.arr.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.arr 0 b.len
end

let lower_bound a lo hi x =
  (* least i in [lo, hi) with a.(i) >= x; hi if none *)
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* when one side is much longer, walk the short side and gallop
   (exponential probe + binary search) through the long side *)
let gallop_skew = 16

let intersect_gallop (small : int array) (big : int array) out =
  let nb = Array.length big in
  let j = ref 0 in
  Array.iter
    (fun x ->
      if !j < nb then begin
        let bound = ref 1 in
        while !j + !bound < nb && big.(!j + !bound) < x do
          bound := !bound lsl 1
        done;
        let k = lower_bound big !j (min nb (!j + !bound + 1)) x in
        j := k;
        if k < nb && big.(k) = x then begin
          Ibuf.push out x;
          incr j
        end
      end)
    small

let intersect_merge (a : int array) (b : int array) out =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      Ibuf.push out x;
      incr i;
      incr j
    end
  done

let intersect (a : int array) (b : int array) =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let out = Ibuf.create (Array.length a) in
  if Array.length b >= gallop_skew * max 1 (Array.length a) then
    intersect_gallop a b out
  else intersect_merge a b out;
  Ibuf.contents out

(* a decoded tid outside the corpus means the .idx and .dat (or .trees)
   disagree — a corrupt or mismatched pair of files, never a crash *)
let tree_of ~(index : Builder.t) ~corpus tid =
  if tid < 0 || tid >= Corpus.length corpus then
    Si_error.raise_corrupt ~path:index.Builder.origin ~offset:0
      (Printf.sprintf "posting tid %d outside the corpus of %d trees" tid
         (Corpus.length corpus));
  Corpus.get corpus tid

(* The ?ctx threaded below is the query's resource gauge (Limits.ctx):
   steps at merge-advance / candidate-validation granularity, decoded-byte
   charges at block (streaming) or posting (materialized) granularity, and
   result emission for max-results capping and partial degradation. *)

let step_of = function None -> fun () -> () | Some c -> fun () -> Limits.step c

(* candidate tids -> verified (tid, root) results, shared by the
   materialized and streaming filter paths; each candidate validation is a
   governed step, each verified result an emission.  [tid_base] shifts the
   index's local tids into the caller's global space (the WAL delta index
   numbers its trees from 0) — corpus access stays local, emission and
   results are global. *)
let filter_results ?ctx ?(tid_base = 0) ~index ~corpus q candidates =
  let step = step_of ctx in
  let out = ref [] in
  Array.iter
    (fun tid ->
      step ();
      List.iter
        (fun v ->
          let r = (tid + tid_base, v) in
          (match ctx with Some c -> Limits.emit c r | None -> ());
          out := r :: !out)
        (Matcher.roots (tree_of ~index ~corpus tid) q))
    candidates;
  List.sort cmp_pair !out

(* materialized paths bill a whole posting when they touch it (the
   streaming paths bill per decoded block instead) *)
let charge_posting ctx p =
  match ctx with
  | None -> ()
  | Some c -> Limits.charge_decode c (Coding.heap_bytes p)

let run_filter ?ctx ?tid_base ~(index : Builder.t) ~corpus ~label_id q
    (cover : Cover.t) =
  let chunk_tids (c : Cover.chunk) =
    match encodings_opt ~label_id c.Cover.fragment with
    | None -> [||]
    | Some (key, _) -> (
        match Builder.find_exn index key with
        | Some (Coding.Filter_p tids as p) ->
            charge_posting ctx p;
            tids
        | Some _ ->
            Si_error.raise_schema ~path:index.Builder.origin
              "filter index holds non-filter postings"
        | None -> [||])
  in
  let lists = Array.map chunk_tids cover.Cover.chunks in
  (* intersect cheapest-first: ascending posting length keeps every
     intermediate result no larger than the smallest input *)
  Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists;
  let step = step_of ctx in
  let candidates =
    if Array.length lists = 0 then [||]
    else begin
      let acc = ref lists.(0) in
      for i = 1 to Array.length lists - 1 do
        step ();
        if Array.length !acc > 0 then acc := intersect !acc lists.(i)
      done;
      !acc
    end
  in
  filter_results ?ctx ?tid_base ~index ~corpus q candidates

(* ---- interval / root-split -------------------------------------------- *)

let chunk_rel ?ctx ~(index : Builder.t) ~label_id (c : Cover.chunk) =
  match encodings_opt ~label_id c.Cover.fragment with
  | None -> Join.empty
  | Some (key, orders) -> (
      match Builder.find_exn index key with
      | None -> Join.empty
      | Some p -> (
          charge_posting ctx p;
          match p with
          | Coding.Root_p entries ->
          {
            Join.cols = [| c.Cover.root |];
            rows = Array.map (fun (tid, iv) -> { Join.tid; ivs = [| iv |] }) entries;
          }
          | Coding.Interval_p entries ->
          let cols = Array.of_list c.Cover.nodes in
          (* per alignment, the canonical position of each column's qnode *)
          let maps =
            List.map
              (fun order ->
                Array.map
                  (fun q ->
                    let rec find k =
                      if order.(k) = q then k else find (k + 1)
                    in
                    find 0)
                  cols)
              orders
          in
          let rows =
            Array.to_list entries
            |> List.concat_map (fun (tid, ivs) ->
                   List.map
                     (fun map ->
                       { Join.tid; ivs = Array.map (fun k -> ivs.(k)) map })
                     maps)
          in
          { Join.cols; rows = Array.of_list rows }
          | Coding.Filter_p _ ->
              Si_error.raise_schema ~path:index.Builder.origin
                "joinable evaluator over a filter index"))

(* Injectivity filtering, result projection and the root-split validation
   corner — the shared tail of the materialized and streaming join paths.
   [tid_base] as in {!filter_results}: validation reads the corpus with
   local tids, the emitted results are shifted into the global space. *)
let finish_joins ?ctx ?(tid_base = 0) ~(index : Builder.t) ~corpus q
    (ix : Ast.indexed) (cover : Cover.t) acc =
  let col_opt q =
    match Join.col_index acc q with c -> Some c | exception Not_found -> None
  in
  let pairs = cross_chunk_pairs ix cover in
  let checked =
    Join.filter ?ctx acc (fun r ->
        List.for_all
          (fun (x, y) ->
            match (col_opt x, col_opt y) with
            | Some cx, Some cy ->
                r.Join.ivs.(cx).Coding.pre <> r.Join.ivs.(cy).Coding.pre
            | _ -> true)
          pairs)
  in
  let c0 = Join.col_index checked 0 in
  let results =
    Array.to_list checked.Join.rows
    |> List.map (fun r -> (r.Join.tid, r.Join.ivs.(c0).Coding.pre))
    |> List.sort_uniq cmp_pair
  in
  (* root-split corner (DESIGN.md §6b): an injectivity constraint touching
     a non-exposed node cannot be a join predicate -> validate candidates *)
  let exposed v = cover.Cover.chunks.(cover.Cover.chunk_of.(v)).Cover.root = v in
  let needs_validation =
    index.Builder.scheme = Coding.Root_split
    && List.exists (fun (x, y) -> not (exposed x && exposed y)) pairs
  in
  let step = step_of ctx in
  let final =
    if needs_validation then
      List.filter
        (fun (tid, v) ->
          step ();
          Matcher.matches_at (tree_of ~index ~corpus tid) q v)
        results
    else results
  in
  let final =
    if tid_base = 0 then final
    else List.map (fun (tid, v) -> (tid + tid_base, v)) final
  in
  (match ctx with Some c -> List.iter (Limits.emit c) final | None -> ());
  final

(* Join order: the chunks form a tree (one cut edge per non-first chunk).
   Start from the smallest relation and repeatedly merge in the smallest
   relation adjacent to the joined set — the driving relation bounds every
   intermediate result, and connectivity guarantees exactly one cut edge
   links the new chunk to the joined set (the join predicate). *)
let run_joins ?ctx ?tid_base ~(index : Builder.t) ~corpus ~label_id q
    (ix : Ast.indexed) (cover : Cover.t) =
  let nchunks = Array.length cover.Cover.chunks in
  let rels = Array.map (chunk_rel ?ctx ~index ~label_id) cover.Cover.chunks in
  if Array.exists Join.is_empty rels then []
  else begin
    let edge c =
      (* chunk c's own cut edge, c >= 1: (parent qnode, axis) *)
      let r = cover.Cover.chunks.(c).Cover.root in
      (ix.Ast.parent.(r), ix.Ast.axis.(r))
    in
    let parent_chunk c = cover.Cover.chunk_of.(fst (edge c)) in
    let adj = Array.make nchunks [] in
    for c = 1 to nchunks - 1 do
      let p = parent_chunk c in
      adj.(p) <- c :: adj.(p);
      adj.(c) <- p :: adj.(c)
    done;
    let rows c = Array.length rels.(c).Join.rows in
    let included = Array.make nchunks false in
    let start = ref 0 in
    for c = 1 to nchunks - 1 do
      if rows c < rows !start then start := c
    done;
    included.(!start) <- true;
    let acc = ref rels.(!start) in
    for _ = 2 to nchunks do
      let best = ref (-1) in
      for c = 0 to nchunks - 1 do
        if
          (not included.(c))
          && List.exists (fun n -> included.(n)) adj.(c)
          && (!best < 0 || rows c < rows !best)
        then best := c
      done;
      let c = !best in
      (* the unique cut edge between c and the joined set *)
      let pq, axis, child_root =
        if c > 0 && included.(parent_chunk c) then
          let pq, axis = edge c in
          (pq, axis, cover.Cover.chunks.(c).Cover.root)
        else begin
          let k =
            List.find (fun k -> k > 0 && included.(k) && parent_chunk k = c) adj.(c)
          in
          let pq, axis = edge k in
          (pq, axis, cover.Cover.chunks.(k).Cover.root)
        end
      in
      let a = !acc and b = rels.(c) in
      let pred =
        match Join.col_index a pq with
        | ip ->
            let ic = Join.col_index b child_root in
            fun ra rb -> Join.structural axis ra.Join.ivs.(ip) rb.Join.ivs.(ic)
        | exception Not_found ->
            let ip = Join.col_index b pq and ic = Join.col_index a child_root in
            fun ra rb -> Join.structural axis rb.Join.ivs.(ip) ra.Join.ivs.(ic)
      in
      acc := Join.merge_join ?ctx a b ~pred;
      included.(c) <- true
    done;
    finish_joins ?ctx ?tid_base ~index ~corpus q ix cover !acc
  end

(* ---- streaming paths (block-skip + bounded cache) ---------------------- *)

(* The streaming evaluators produce exactly the rows of the materialized
   paths above, in the same order — the differential tests assert it —
   while touching postings only through {!Cursor}, so long postings decode
   block by block (through the caller's bounded cache) and intersections /
   joins skip the blocks their tids never land in. *)

let run_filter_stream ?ctx ?tid_base ~(index : Builder.t) ~corpus ~label_id
    ~cache q (cover : Cover.t) =
  let cursors =
    Array.map
      (fun (c : Cover.chunk) ->
        match encodings_opt ~label_id c.Cover.fragment with
        | None -> None
        | Some (key, _) -> Cursor.create ~cache ?ctx index key)
      cover.Cover.chunks
  in
  if Array.length cursors = 0 || Array.exists Option.is_none cursors then []
  else begin
    let cs = Array.map Option.get cursors in
    (* cheapest first: the shortest cursor drives the leapfrog *)
    Array.sort (fun a b -> Int.compare (Cursor.entries a) (Cursor.entries b)) cs;
    let n = Array.length cs in
    (* Per-cursor view of the current decoded block: tid array + position.
       Within a block the leapfrog runs on plain int arrays (same speed as
       the materialized intersection); the cursor is consulted only for
       cross-block moves, where its seek gallops over the skip table. *)
    let arrs = Array.make n [||] in
    let idxs = Array.make n 0 in
    let load k =
      let c = cs.(k) in
      (not (Cursor.exhausted c))
      && begin
           match Cursor.current c with
           | Coding.Filter_p a, ei ->
               arrs.(k) <- a;
               idxs.(k) <- ei;
               true
           | _ ->
               Si_error.raise_schema ~path:index.Builder.origin
                 "filter index holds non-filter postings"
         end
    in
    let live = ref true in
    for k = 0 to n - 1 do
      live := !live && load k
    done;
    let out = Ibuf.create 16 in
    if !live then begin
      (* first entry >= target in stream k, or -1 when the stream ends;
         gallop within the block (targets and positions are monotone),
         fall back to the cursor's skip-table seek across blocks *)
      let seek_stream k target =
        let a = arrs.(k) in
        let len = Array.length a in
        if len > 0 && target <= a.(len - 1) then begin
          let lo = idxs.(k) in
          let bound = ref 1 in
          while lo + !bound < len && a.(lo + !bound) < target do
            bound := !bound lsl 1
          done;
          let i =
            lower_bound a (lo + (!bound lsr 1)) (min len (lo + !bound + 1)) target
          in
          idxs.(k) <- i;
          a.(i)
        end
        else begin
          Cursor.seek cs.(k) target;
          if load k then arrs.(k).(idxs.(k)) else -1
        end
      in
      (* leapfrog: keep seeking every stream to the running max tid; when
         all agree the tid is in the intersection *)
      let step = step_of ctx in
      try
        let target = ref 0 in
        while true do
          step ();
          let m = ref !target in
          let all_eq = ref true in
          for k = 0 to n - 1 do
            let t = seek_stream k !target in
            if t < 0 then raise Exit;
            if t > !m then begin
              m := t;
              all_eq := false
            end
          done;
          if !all_eq then begin
            Ibuf.push out !target;
            incr target
          end
          else target := !m
        done
      with Exit -> ()
    end;
    filter_results ?ctx ?tid_base ~index ~corpus q (Ibuf.contents out)
  end

(* a chunk relation behind a cursor: exact row count (entries x
   alignments) for the join-order heuristic, rows expanded on demand *)
type vrel = {
  vcols : int array;
  vrows : int;
  vcur : Cursor.t;
  vexpand : Coding.posting -> int -> Join.row list;
}

let vrel_of_chunk ?ctx ~(index : Builder.t) ~label_id ~cache (c : Cover.chunk) =
  match encodings_opt ~label_id c.Cover.fragment with
  | None -> None
  | Some (key, orders) -> (
      match Cursor.create ~cache ?ctx index key with
      | None -> None
      | Some cur -> (
          let schema () =
            Si_error.raise_schema ~path:index.Builder.origin
              "posting scheme disagrees with the index header"
          in
          match index.Builder.scheme with
          | Coding.Root_split ->
              Some
                {
                  vcols = [| c.Cover.root |];
                  vrows = Cursor.entries cur;
                  vcur = cur;
                  vexpand =
                    (fun p i ->
                      match p with
                      | Coding.Root_p a ->
                          let tid, iv = a.(i) in
                          [ { Join.tid; ivs = [| iv |] } ]
                      | _ -> schema ());
                }
          | Coding.Interval ->
              let cols = Array.of_list c.Cover.nodes in
              let maps =
                List.map
                  (fun order ->
                    Array.map
                      (fun q ->
                        let rec find k =
                          if order.(k) = q then k else find (k + 1)
                        in
                        find 0)
                      cols)
                  orders
              in
              Some
                {
                  vcols = cols;
                  vrows = Cursor.entries cur * List.length maps;
                  vcur = cur;
                  vexpand =
                    (fun p i ->
                      match p with
                      | Coding.Interval_p a ->
                          let tid, ivs = a.(i) in
                          List.map
                            (fun map ->
                              {
                                Join.tid;
                                ivs = Array.map (fun k -> ivs.(k)) map;
                              })
                            maps
                      | _ -> schema ());
                }
          | Coding.Filter ->
              Si_error.raise_schema ~path:index.Builder.origin
                "joinable evaluator over a filter index"))

let materialize ?ctx (v : vrel) =
  let step = step_of ctx in
  let acc = ref [] in
  while not (Cursor.exhausted v.vcur) do
    step ();
    let p, i = Cursor.current v.vcur in
    acc := List.rev_append (v.vexpand p i) !acc;
    Cursor.advance v.vcur
  done;
  { Join.cols = v.vcols; rows = Array.of_list (List.rev !acc) }

(* all stream rows with exactly tid [t]; the cursor is already at the
   first entry >= t after the caller's seek *)
let probe ?ctx (v : vrel) t =
  let step = step_of ctx in
  let acc = ref [] in
  while Cursor.peek_tid v.vcur = t do
    step ();
    let p, i = Cursor.current v.vcur in
    acc := List.rev_append (v.vexpand p i) !acc;
    Cursor.advance v.vcur
  done;
  List.rev !acc

let col_in cols q =
  let rec find i =
    if i >= Array.length cols then raise Not_found
    else if cols.(i) = q then i
    else find (i + 1)
  in
  find 0

let run_joins_stream ?ctx ?tid_base ~(index : Builder.t) ~corpus ~label_id
    ~cache q (ix : Ast.indexed) (cover : Cover.t) =
  let nchunks = Array.length cover.Cover.chunks in
  let vrels =
    Array.map (vrel_of_chunk ?ctx ~index ~label_id ~cache) cover.Cover.chunks
  in
  if Array.exists (function None -> true | Some v -> v.vrows = 0) vrels then []
  else begin
    let vrels = Array.map Option.get vrels in
    let edge c =
      let r = cover.Cover.chunks.(c).Cover.root in
      (ix.Ast.parent.(r), ix.Ast.axis.(r))
    in
    let parent_chunk c = cover.Cover.chunk_of.(fst (edge c)) in
    let adj = Array.make nchunks [] in
    for c = 1 to nchunks - 1 do
      let p = parent_chunk c in
      adj.(p) <- c :: adj.(p);
      adj.(c) <- p :: adj.(c)
    done;
    let rows c = vrels.(c).vrows in
    let included = Array.make nchunks false in
    let start = ref 0 in
    for c = 1 to nchunks - 1 do
      if rows c < rows !start then start := c
    done;
    included.(!start) <- true;
    let acc = ref (materialize ?ctx vrels.(!start)) in
    for _ = 2 to nchunks do
      let best = ref (-1) in
      for c = 0 to nchunks - 1 do
        if
          (not included.(c))
          && List.exists (fun n -> included.(n)) adj.(c)
          && (!best < 0 || rows c < rows !best)
        then best := c
      done;
      let c = !best in
      let pq, axis, child_root =
        if c > 0 && included.(parent_chunk c) then
          let pq, axis = edge c in
          (pq, axis, cover.Cover.chunks.(c).Cover.root)
        else begin
          let k =
            List.find (fun k -> k > 0 && included.(k) && parent_chunk k = c) adj.(c)
          in
          let pq, axis = edge k in
          (pq, axis, cover.Cover.chunks.(k).Cover.root)
        end
      in
      let b = vrels.(c) in
      let pred =
        match Join.col_index !acc pq with
        | ip ->
            let ic = col_in b.vcols child_root in
            fun ra rb -> Join.structural axis ra.Join.ivs.(ip) rb.Join.ivs.(ic)
        | exception Not_found ->
            let ip = col_in b.vcols pq and ic = Join.col_index !acc child_root in
            fun ra rb -> Join.structural axis rb.Join.ivs.(ip) ra.Join.ivs.(ic)
      in
      acc :=
        Join.merge_join_stream ?ctx !acc ~cols:b.vcols
          ~next_tid:(fun t ->
            Cursor.seek b.vcur t;
            Cursor.peek b.vcur)
          ~probe:(probe ?ctx b) ~pred;
      included.(c) <- true
    done;
    finish_joins ?ctx ?tid_base ~index ~corpus q ix cover !acc
  end

let dispatch ?ctx ?tid_base ~index ~corpus ~label_id ~cache q =
  let ix = Ast.index q in
  let cover = cover_for index ix in
  match (index.Builder.scheme, cache) with
  | Coding.Filter, None ->
      run_filter ?ctx ?tid_base ~index ~corpus ~label_id q cover
  | Coding.Filter, Some cache ->
      run_filter_stream ?ctx ?tid_base ~index ~corpus ~label_id ~cache q cover
  | (Coding.Interval | Coding.Root_split), None ->
      run_joins ?ctx ?tid_base ~index ~corpus ~label_id q ix cover
  | (Coding.Interval | Coding.Root_split), Some cache ->
      run_joins_stream ?ctx ?tid_base ~index ~corpus ~label_id ~cache q ix cover

(* Degradation contract (DESIGN.md §10): an ungoverned run returns exact
   results; a governed run either completes ([truncated = false], results
   exact), trips max-results ([truncated = true], results are a correct
   prefix-by-discovery subset), or — with [partial] set — converts a
   deadline / budget trip into [truncated = true] with whatever verified
   results had been emitted by then.  Without [partial] those trips stay
   typed errors ({!Si_error.Timeout} / {!Si_error.Resource_exhausted}). *)
let run_outcome_exn ~index ~corpus ?(label_id = Fun.id) ?cache ?delta
    ?(limits = Limits.none) ?shared q =
  (* [Limits.start] itself can raise (a deadline of 0 trips before any
     work), so it must run inside the handled expression; the holder keeps
     the ctx reachable from the exception branches *)
  let holder = ref None in
  (* a shared gauge (one leg of a sharded fan-out, DESIGN.md §14)
     accounts bytes/steps against the fan-out-wide atomic pools and
     measures its deadline from the fan-out's start instant; its budget
     supersedes [limits] so the partial flag below reads the right one *)
  let limits =
    match shared with Some sh -> Limits.shared_limits sh | None -> limits
  in
  match
    let ctx =
      match shared with
      | Some sh -> Limits.start_shared sh
      | None -> Limits.start limits
    in
    holder := ctx;
    let main = dispatch ?ctx ~index ~corpus ~label_id ~cache q in
    match delta with
    | None -> main
    | Some (dindex, dcorpus, base) ->
        (* The WAL delta: evaluated under the same gauge so every budget
           spans both halves, always on the materialized path (the
           streaming cache's (key, block) entries must not alias across
           two indexes).  Delta tids shift by [base] = the main tree
           count, so [main @ shifted] is sorted and duplicate-free by
           disjointness of the tid ranges — the union needs no re-sort
           and the truncated-⊂-exact contract carries over unchanged. *)
        main @ dispatch ?ctx ~tid_base:base ~index:dindex ~corpus:dcorpus
                 ~label_id ~cache:None q
  with
  | matches -> { Limits.matches; truncated = false; degraded = false }
  | exception Limits.Truncated ->
      (* only ctx code raises Truncated, so the holder is necessarily full *)
      {
        Limits.matches = Limits.collected (Option.get !holder);
        truncated = true;
        degraded = false;
      }
  | exception Si_error.Error (Si_error.Timeout _ | Si_error.Resource_exhausted _)
    when limits.Limits.partial ->
      let matches =
        match !holder with Some c -> Limits.collected c | None -> []
      in
      { Limits.matches; truncated = true; degraded = false }

let run_outcome ~index ~corpus ?label_id ?cache ?delta ?limits ?shared q =
  Si_error.guard (fun () ->
      run_outcome_exn ~index ~corpus ?label_id ?cache ?delta ?limits ?shared q)

let run_exn ~index ~corpus ?label_id ?cache ?delta ?limits q =
  (run_outcome_exn ~index ~corpus ?label_id ?cache ?delta ?limits q)
    .Limits.matches

let run ~index ~corpus ?label_id ?cache ?delta ?limits q =
  Si_error.guard (fun () ->
      run_exn ~index ~corpus ?label_id ?cache ?delta ?limits q)
