open Si_subtree
open Si_query

let cover_for (index : Builder.t) ix =
  match index.Builder.scheme with
  | Coding.Root_split -> Cover.min_rc ix ~mss:index.Builder.mss
  | Coding.Filter | Coding.Interval -> Cover.optimal_cover ix ~mss:index.Builder.mss

(* same-label sibling pairs that live in different chunks: the injectivity
   constraints extraction does not already guarantee (DESIGN.md §6b) *)
let cross_chunk_pairs (ix : Ast.indexed) (cover : Cover.t) =
  let pairs = ref [] in
  Array.iter
    (fun kids ->
      let rec go = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                if
                  ix.Ast.labels.(x) = ix.Ast.labels.(y)
                  && cover.Cover.chunk_of.(x) <> cover.Cover.chunk_of.(y)
                then pairs := (x, y) :: !pairs)
              rest;
            go rest
      in
      go kids)
    ix.Ast.children;
  !pairs

let encodings_opt ~label_id frag =
  match Canonical.encodings ~label_id frag with
  | exception Not_found -> None
  | r -> Some r

(* ---- filter-based ----------------------------------------------------- *)

let intersect (a : int array) (b : int array) =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      out := x :: !out;
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let run_filter ~(index : Builder.t) ~corpus ~label_id q (cover : Cover.t) =
  let chunk_tids (c : Cover.chunk) =
    match encodings_opt ~label_id c.Cover.fragment with
    | None -> [||]
    | Some (key, _) -> (
        match Builder.find index key with
        | Some (Coding.Filter_p tids) -> tids
        | Some _ -> invalid_arg "Eval: filter index holds non-filter postings"
        | None -> [||])
  in
  let candidates =
    Array.fold_left
      (fun acc c ->
        match acc with
        | Some tids when Array.length tids = 0 -> acc
        | Some tids -> Some (intersect tids (chunk_tids c))
        | None -> Some (chunk_tids c))
      None cover.Cover.chunks
    |> Option.value ~default:[||]
  in
  Array.to_list candidates
  |> List.concat_map (fun tid ->
         List.map (fun v -> (tid, v)) (Matcher.roots corpus.(tid) q))
  |> List.sort compare

(* ---- interval / root-split -------------------------------------------- *)

let chunk_rel ~(index : Builder.t) ~label_id (c : Cover.chunk) =
  match encodings_opt ~label_id c.Cover.fragment with
  | None -> Join.empty
  | Some (key, orders) -> (
      match Builder.find index key with
      | None -> Join.empty
      | Some (Coding.Root_p entries) ->
          {
            Join.cols = [| c.Cover.root |];
            rows = Array.map (fun (tid, iv) -> { Join.tid; ivs = [| iv |] }) entries;
          }
      | Some (Coding.Interval_p entries) ->
          let cols = Array.of_list c.Cover.nodes in
          (* per alignment, the canonical position of each column's qnode *)
          let maps =
            List.map
              (fun order ->
                Array.map
                  (fun q ->
                    let rec find k =
                      if order.(k) = q then k else find (k + 1)
                    in
                    find 0)
                  cols)
              orders
          in
          let rows =
            Array.to_list entries
            |> List.concat_map (fun (tid, ivs) ->
                   List.map
                     (fun map ->
                       { Join.tid; ivs = Array.map (fun k -> ivs.(k)) map })
                     maps)
          in
          { Join.cols; rows = Array.of_list rows }
      | Some (Coding.Filter_p _) ->
          invalid_arg "Eval: joinable evaluator over a filter index")

let run_joins ~(index : Builder.t) ~corpus ~label_id q (ix : Ast.indexed)
    (cover : Cover.t) =
  let rels = Array.map (chunk_rel ~index ~label_id) cover.Cover.chunks in
  if Array.exists Join.is_empty rels then []
  else begin
    let acc = ref rels.(0) in
    Array.iteri
      (fun i (c : Cover.chunk) ->
        if i > 0 then begin
          let p = ix.Ast.parent.(c.Cover.root) in
          let axis = ix.Ast.axis.(c.Cover.root) in
          let ip = Join.col_index !acc p in
          let ic = Join.col_index rels.(i) c.Cover.root in
          acc :=
            Join.merge_join !acc rels.(i) ~pred:(fun ra rb ->
                Join.structural axis ra.Join.ivs.(ip) rb.Join.ivs.(ic))
        end)
      cover.Cover.chunks;
    let col_opt q = match Join.col_index !acc q with c -> Some c | exception Not_found -> None in
    let pairs = cross_chunk_pairs ix cover in
    let checked =
      Join.filter !acc (fun r ->
          List.for_all
            (fun (x, y) ->
              match (col_opt x, col_opt y) with
              | Some cx, Some cy ->
                  r.Join.ivs.(cx).Coding.pre <> r.Join.ivs.(cy).Coding.pre
              | _ -> true)
            pairs)
    in
    let c0 = Join.col_index checked 0 in
    let results =
      Array.to_list checked.Join.rows
      |> List.map (fun r -> (r.Join.tid, r.Join.ivs.(c0).Coding.pre))
      |> List.sort_uniq compare
    in
    (* root-split corner (DESIGN.md §6b): an injectivity constraint touching
       a non-exposed node cannot be a join predicate -> validate candidates *)
    let exposed v = cover.Cover.chunks.(cover.Cover.chunk_of.(v)).Cover.root = v in
    let needs_validation =
      index.Builder.scheme = Coding.Root_split
      && List.exists (fun (x, y) -> not (exposed x && exposed y)) pairs
    in
    if needs_validation then
      List.filter (fun (tid, v) -> Matcher.matches_at corpus.(tid) q v) results
    else results
  end

let run ~index ~corpus ?(label_id = Fun.id) q =
  let ix = Ast.index q in
  let cover = cover_for index ix in
  match index.Builder.scheme with
  | Coding.Filter -> run_filter ~index ~corpus ~label_id q cover
  | Coding.Interval | Coding.Root_split ->
      run_joins ~index ~corpus ~label_id q ix cover
