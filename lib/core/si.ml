open Si_treebank

type t = {
  index : Builder.t;
  corpus : Annotated.t array;
  label_id : Label.t -> int;
      (* process-global label id -> the id space the index keys were
         encoded in; raises Not_found for labels the index never saw *)
  cache : Cursor.cache;
      (* the handle's decoded-block cache, used by single-domain [query];
         [query_batch] domains each get their own *)
}

let index t = t.index
let cache_stats t = Cache.stats t.cache
let scheme t = t.index.Builder.scheme
let mss t = t.index.Builder.mss
let stats t = t.index.Builder.stats
let corpus t = t.corpus
let sentence t tid = t.corpus.(tid).Annotated.tree

let write_text path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc l; output_char oc '\n') lines)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let save t prefix trees =
  (match Builder.save t.index (prefix ^ ".idx") with
  | Ok () -> ()
  | Error e -> raise (Si_error.Error e));
  Penn.write_file (prefix ^ ".dat") trees;
  write_text (prefix ^ ".labels") (Array.to_list (Label.all ()));
  let s = t.index.Builder.stats in
  write_text (prefix ^ ".meta")
    [
      "scheme=" ^ Coding.scheme_to_string t.index.Builder.scheme;
      "mss=" ^ string_of_int t.index.Builder.mss;
      "trees=" ^ string_of_int s.Builder.trees;
      "nodes=" ^ string_of_int s.Builder.nodes;
      "keys=" ^ string_of_int s.Builder.keys;
      "postings=" ^ string_of_int s.Builder.postings;
    ]

let build ?(domains = 1) ?cache_budget ~scheme ~mss ~trees ?prefix () =
  let corpus = Array.of_list (List.map Annotated.of_tree trees) in
  let index = Builder.build ~domains ~scheme ~mss corpus in
  let cache = Cursor.create_cache ?budget:cache_budget () in
  let t = { index; corpus; label_id = Fun.id; cache } in
  (try Option.iter (fun p -> save t p trees) prefix
   with Sys_error what ->
     raise (Si_error.Error (Si_error.Io { path = Option.get prefix; what })));
  t

(* The .meta is advisory for stats but load-bearing for consistency: an
   [.idx] paired with the wrong sibling files (regenerated corpus, copied
   prefix) must not answer queries against the wrong trees. *)
let check_meta prefix ~(index : Builder.t) ~ntrees =
  let path = prefix ^ ".meta" in
  let mismatch what = Si_error.raise_schema ~path what in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | None -> ()
      | Some i -> (
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match k with
          | "scheme" ->
              if v <> Coding.scheme_to_string index.Builder.scheme then
                mismatch
                  (Printf.sprintf ".meta says scheme=%s but the .idx is %s" v
                     (Coding.scheme_to_string index.Builder.scheme))
          | "mss" ->
              if v <> string_of_int index.Builder.mss then
                mismatch
                  (Printf.sprintf ".meta says mss=%s but the .idx has mss=%d" v
                     index.Builder.mss)
          | "trees" ->
              if v <> string_of_int ntrees then
                mismatch
                  (Printf.sprintf ".meta says trees=%s but the .dat holds %d" v
                     ntrees)
          | _ -> ()))
    (read_lines path)

let open_ ?cache_budget prefix =
  Si_error.guard @@ fun () ->
  let index =
    match Builder.load (prefix ^ ".idx") with
    | Ok index -> index
    | Error e -> raise (Si_error.Error e)
  in
  let wrap_file path f =
    try f () with
    | Sys_error what -> Si_error.raise_io ~path what
    | Failure what ->
        (* Penn parse errors: the corpus file is damaged, not the query *)
        Si_error.raise_corrupt ~path ~offset:0 what
  in
  let trees = wrap_file (prefix ^ ".dat") (fun () -> Penn.read_file (prefix ^ ".dat")) in
  let corpus = Array.of_list (List.map Annotated.of_tree trees) in
  let stored =
    wrap_file (prefix ^ ".labels") (fun () ->
        Array.of_list (read_lines (prefix ^ ".labels")))
  in
  let stored_id : (string, int) Hashtbl.t = Hashtbl.create (Array.length stored) in
  Array.iteri (fun id name -> Hashtbl.replace stored_id name id) stored;
  let label_id l =
    match Hashtbl.find_opt stored_id (Label.name l) with
    | Some id -> id
    | None -> raise Not_found
  in
  wrap_file (prefix ^ ".meta") (fun () ->
      check_meta prefix ~index ~ntrees:(Array.length corpus));
  let index =
    (* restore the corpus stats the .idx does not carry *)
    let nodes = Array.fold_left (fun acc d -> acc + Annotated.size d) 0 corpus in
    {
      index with
      Builder.stats =
        { index.Builder.stats with Builder.trees = Array.length corpus; nodes };
    }
  in
  { index; corpus; label_id; cache = Cursor.create_cache ?budget:cache_budget () }

let query_ast t q =
  Eval.run ~index:t.index ~corpus:t.corpus ~label_id:t.label_id ~cache:t.cache q

let query_with ~cache t s =
  match Si_query.Parser.parse s with
  | Ok q -> Eval.run ~index:t.index ~corpus:t.corpus ~label_id:t.label_id ~cache q
  | Error e -> Error (Si_error.Bad_query e)

let query t s = query_with ~cache:t.cache t s

let oracle t q = Si_query.Matcher.corpus_roots t.corpus q

(* ---- parallel batch evaluation ----------------------------------------- *)

type batch = {
  answers : ((int * int) list, Si_error.t) result array;
  latencies_ns : float array;
  elapsed_s : float;
  cache : Cache.stats;
}

(* Fan the query stream across [domains] OCaml 5 domains over this one
   handle.  The hot path takes no locks: the index slots and corpus are
   only read (the streaming evaluator never touches the decode memo), each
   domain evaluates through its own cache, and the result slots written
   are disjoint per domain (static round-robin split).  The only shared
   mutable state — the label intern table touched by query parsing — is
   mutex-guarded. *)
let query_batch ?(domains = 1) ?cache_budget t queries =
  if domains < 1 then invalid_arg "Si.query_batch: domains must be >= 1";
  let n = Array.length queries in
  let answers = Array.make n (Ok []) in
  let latencies = Array.make n 0. in
  let run_range d =
    let cache = Cursor.create_cache ?budget:cache_budget () in
    let i = ref d in
    while !i < n do
      let t0 = Unix.gettimeofday () in
      answers.(!i) <- query_with ~cache t queries.(!i);
      latencies.(!i) <- (Unix.gettimeofday () -. t0) *. 1e9;
      i := !i + domains
    done;
    Cache.stats cache
  in
  let t0 = Unix.gettimeofday () in
  let stats =
    if domains = 1 then [ run_range 0 ]
    else begin
      let spawned =
        Array.init (domains - 1) (fun k ->
            Domain.spawn (fun () -> run_range (k + 1)))
      in
      let first = run_range 0 in
      first :: Array.to_list (Array.map Domain.join spawned)
    end
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    answers;
    latencies_ns = latencies;
    elapsed_s;
    cache = List.fold_left Cache.add_stats (Cache.zero_stats 0) stats;
  }
