open Si_treebank

(* The id space the index keys are encoded in: the [.labels] file order
   (= [Label.all ()] of the building process), extended in insertion order
   by labels the WAL brought in.  Immutable after publication — {!insert}
   extends by copy — so readers on other domains never see a half-built
   table. *)
type space = { names : string array; ids : (string, int) Hashtbl.t }

let space_of_names names =
  let ids = Hashtbl.create (max 16 (Array.length names)) in
  Array.iteri (fun id name -> Hashtbl.replace ids name id) names;
  { names; ids }

(* One immutable snapshot of everything the WAL has inserted since the
   last checkpoint.  Queries read it with a single [Atomic.get]: under the
   OCaml 5 memory model they see the old or the new snapshot, never a torn
   mix of docs and index.  Local tids [0 .. |d_docs|-1] map to global tids
   by adding the main index's tree count. *)
type delta = {
  d_docs : Annotated.t array;
  d_index : Builder.t option;  (* [None] iff [d_docs] is empty *)
  d_corpus : Corpus.t;
  d_space : space;
}

let empty_delta space =
  { d_docs = [||]; d_index = None; d_corpus = Corpus.of_array [||]; d_space = space }

(* Self-healing integrity state (DESIGN.md §15).  One record per handle,
   shared by functional copies ([{ t with ... }]): the quarantine flag is
   read lock-free on every query, everything else mutates under [i_lock].

   Quarantine is whole-index: the SIDX4 postings region carries one CRC,
   so once any posting bytes are untrusted the only per-key information
   is which keys {e fail to decode} — not which decode to silently wrong
   answers.  Falling back to the corpus store for every key is the only
   answer that stays exact, and it is what makes the fallback ≡ oracle
   differential hold.  [bad_keys]/[bad_trees] are the scrub's localized
   damage — counters and repair-threshold inputs, not trust boundaries. *)
type integrity = {
  quarantined : bool Atomic.t;
      (* the index's own bytes are untrusted: answer from the corpus *)
  repairing : bool Atomic.t;
  i_lock : Mutex.t;
  mutable bad_keys : string list;
  mutable bad_trees : int list;
  mutable fallbacks : int;  (* queries answered by the fallback path *)
  mutable scrub_passes : int;
  mutable scrub_bytes : int;
  mutable repairs : int;
  mutable repair_failures : int;
  i_cursor : Scrub.cursor;
}

let fresh_integrity () =
  {
    quarantined = Atomic.make false;
    repairing = Atomic.make false;
    i_lock = Mutex.create ();
    bad_keys = [];
    bad_trees = [];
    fallbacks = 0;
    scrub_passes = 0;
    scrub_bytes = 0;
    repairs = 0;
    repair_failures = 0;
    i_cursor = Scrub.cursor ();
  }

type t = {
  index : Builder.t;
  corpus : Corpus.t;
      (* a materialized array for SIDX1-3 / fresh builds, the mapped
         [.trees] store for SIDX4 opens *)
  label_id : Label.t -> int;
      (* process-global label id -> the id space the index keys were
         encoded in; raises Not_found for labels the index never saw.
         Reads the current delta snapshot's space, so keys for inserted
         labels resolve too. *)
  cache : Cursor.cache;
      (* the handle's decoded-block cache, used by single-domain [query];
         [query_batch] domains each get their own *)
  prefix : string option;
      (* the on-disk prefix this handle came from; [None] for a pure
         in-memory build — such a handle cannot [insert] or [checkpoint] *)
  delta : delta Atomic.t;
  wal : Wal.t option ref;  (* append handle, opened by the first [insert] *)
  ilock : Mutex.t;  (* serializes insert / checkpoint / WAL access *)
  integ : integrity;  (* quarantine / scrub / repair state, shared by copies *)
}

type format = [ `Sidx3 | `Sidx4 ]

let index t = t.index
let cache_stats t = Cache.stats t.cache
let scheme t = t.index.Builder.scheme
let mss t = t.index.Builder.mss
let stats t = t.index.Builder.stats
let corpus t = t.corpus
let format t = if Builder.is_mapped t.index then `Sidx4 else `Sidx3

let sentence t tid =
  let n = Corpus.length t.corpus in
  if tid < n then (Corpus.get t.corpus tid).Annotated.tree
  else (Atomic.get t.delta).d_docs.(tid - n).Annotated.tree

let pending t = Array.length (Atomic.get t.delta).d_docs

let wal_bytes t =
  Mutex.protect t.ilock (fun () ->
      match !(t.wal) with Some w -> Wal.bytes w | None -> 0)

let write_text path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc l; output_char oc '\n') lines)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let read_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash protocol for the four-file set.  Every byte is staged before any
   final name changes: the [.idx] goes to [prefix.idx.new] (itself written
   atomically by {!Builder.save}), the siblings to [*.tmp], and only then
   does the rename sequence publish them.  Consequences the recovery
   harness asserts:

   - a crash anywhere up to and including the "si.save.siblings" failpoint
     leaves every published file untouched — the old index loads and
     answers exactly as before (stale [.new]/[.tmp] staging litter is
     ignored by [open_] and swept by the next successful save);
   - a crash inside the rename sequence can leave a mixed old/new set, but
     never a silently wrong one: the [.meta] records the CRC-32 of the
     exact [.idx] bytes it was written against ([idx_crc=...]), and
     {!open_} refuses a prefix whose [.idx] does not match it
     ([Schema_mismatch]) instead of answering from mismatched files.
     Re-running the save to completion repairs the prefix.

   [`Sidx4] saves add a fifth sibling, [prefix.trees] — the zero-copy
   corpus store the mapped open resolves intervals against — staged and
   renamed under the same protocol (before the [.meta]). *)
let save ?(format = `Sidx3) ?labels t prefix trees =
  (* default: the building process's whole intern table; a checkpoint
     passes the stored-extended space instead, so a fresh opener maps the
     keys exactly as they were encoded *)
  let label_lines =
    match labels with Some l -> l | None -> Array.to_list (Label.all ())
  in
  let staged_idx = prefix ^ ".idx.new" in
  (match
     match format with
     | `Sidx3 -> Builder.save t.index staged_idx
     | `Sidx4 -> Builder.save_v4 t.index staged_idx
   with
  | Ok () -> ()
  | Error e -> raise (Si_error.Error e));
  let idx_crc = Crc32.string (read_binary staged_idx) in
  let tmp ext = (prefix ^ ext, prefix ^ ext ^ ".tmp") in
  let dat, dat_tmp = tmp ".dat" in
  let labels, labels_tmp = tmp ".labels" in
  let meta, meta_tmp = tmp ".meta" in
  let trees_file, trees_tmp = tmp ".trees" in
  Penn.write_file dat_tmp trees;
  (match format with
  | `Sidx4 ->
      (* the store carries label ids in the published [.labels] order,
         which is NOT this process's intern order when the handle was
         opened lazily (SIDX4) and other parses interned first — e.g. a
         checkpoint whose WAL replay interned the delta's labels before
         any mapped-corpus access *)
      let stored_id = Hashtbl.create (List.length label_lines) in
      List.iteri
        (fun i name ->
          if not (Hashtbl.mem stored_id name) then Hashtbl.add stored_id name i)
        label_lines;
      let relabel live =
        match Hashtbl.find_opt stored_id (Label.name live) with
        | Some sid -> sid
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Si.save: label %S of the corpus is missing from the \
                  published label table"
                 (Label.name live))
      in
      Treestore.save trees_tmp ~relabel (Corpus.to_array t.corpus)
  | `Sidx3 -> ());
  write_text labels_tmp label_lines;
  let s = t.index.Builder.stats in
  write_text meta_tmp
    [
      "scheme=" ^ Coding.scheme_to_string t.index.Builder.scheme;
      "mss=" ^ string_of_int t.index.Builder.mss;
      "trees=" ^ string_of_int s.Builder.trees;
      "nodes=" ^ string_of_int s.Builder.nodes;
      "keys=" ^ string_of_int s.Builder.keys;
      "postings=" ^ string_of_int s.Builder.postings;
      "idx_crc=" ^ string_of_int idx_crc;
    ];
  Failpoint.hit "si.save.siblings";
  Sys.rename staged_idx (prefix ^ ".idx");
  Sys.rename dat_tmp dat;
  (match format with `Sidx4 -> Sys.rename trees_tmp trees_file | `Sidx3 -> ());
  Sys.rename labels_tmp labels;
  (* the .meta lands last: it names the .idx bytes it belongs to *)
  Sys.rename meta_tmp meta

(* [label_id] through the handle's current delta space: identical to the
   historical stored-table lookup while the delta is empty, and resolves
   labels the WAL brought in afterwards.  Ids are append-only across
   snapshots, so a racing publish can only turn Not_found into a valid id,
   never change one. *)
let make_handle ~index ~corpus ~cache ~prefix space =
  let delta = Atomic.make (empty_delta space) in
  let label_id l =
    match Hashtbl.find_opt (Atomic.get delta).d_space.ids (Label.name l) with
    | Some id -> id
    | None -> raise Not_found
  in
  {
    index;
    corpus;
    label_id;
    cache;
    prefix;
    delta;
    wal = ref None;
    ilock = Mutex.create ();
    integ = fresh_integrity ();
  }

let build ?(domains = 1) ?cache_budget ?format ~scheme ~mss ~trees ?prefix () =
  let docs = Array.of_list (List.map Annotated.of_tree trees) in
  let index = Builder.build ~domains ~scheme ~mss docs in
  let cache = Cursor.create_cache ?budget:cache_budget () in
  (* the build encodes keys in process-global ids, so the space snapshot
     (= [Label.all ()], what [save] writes as [.labels]) is the identity
     on every label the corpus holds *)
  let t =
    make_handle ~index ~corpus:(Corpus.of_array docs) ~cache ~prefix
      (space_of_names (Label.all ()))
  in
  (try Option.iter (fun p -> save ?format t p trees) prefix
   with Sys_error what ->
     raise (Si_error.Error (Si_error.Io { path = Option.get prefix; what })));
  t

(* The .meta is advisory for stats but load-bearing for consistency: an
   [.idx] paired with the wrong sibling files (regenerated corpus, copied
   prefix, a crash mid-publish) must not answer queries against the wrong
   trees. *)
let check_meta prefix ~(index : Builder.t) ~ntrees =
  let path = prefix ^ ".meta" in
  let mismatch what = Si_error.raise_schema ~path what in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | None -> ()
      | Some i -> (
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match k with
          | "scheme" ->
              if v <> Coding.scheme_to_string index.Builder.scheme then
                mismatch
                  (Printf.sprintf ".meta says scheme=%s but the .idx is %s" v
                     (Coding.scheme_to_string index.Builder.scheme))
          | "mss" ->
              if v <> string_of_int index.Builder.mss then
                mismatch
                  (Printf.sprintf ".meta says mss=%s but the .idx has mss=%d" v
                     index.Builder.mss)
          | "trees" ->
              if v <> string_of_int ntrees then
                mismatch
                  (Printf.sprintf ".meta says trees=%s but the .dat holds %d" v
                     ntrees)
          | "idx_crc" -> (
              (* whole-file cross-check: catches a crash that published a
                 new .idx but died before the matching siblings (or the
                 reverse).  Absent in pre-crc .meta files — skipped. *)
              match (int_of_string_opt v, index.Builder.file_crc) with
              | Some want, Some got when want <> got ->
                  mismatch
                    (Printf.sprintf
                       ".meta says idx_crc=%d but the .idx hashes to %d — \
                        mixed file set (crash mid-save?); rebuild the prefix"
                       want got)
              | None, _ -> mismatch ".meta idx_crc is not a number"
              | _ -> ())
          | _ -> ()))
    (read_lines path)

(* nodes= / postings= counts out of the .meta — the mapped open has no
   other source for them (it never walks the corpus or the postings) *)
let meta_counts prefix =
  let nodes = ref 0 and postings = ref 0 in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | None -> ()
      | Some i -> (
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match String.sub line 0 i with
          | "nodes" -> nodes := Option.value ~default:0 (int_of_string_opt v)
          | "postings" -> postings := Option.value ~default:0 (int_of_string_opt v)
          | _ -> ()))
    (read_lines (prefix ^ ".meta"));
  (!nodes, !postings)

(* Extend a space by copy with every label of [docs] not already in it,
   in tree order — deterministic, so every process replaying the same WAL
   derives the same extended table (and a checkpoint's published [.labels]
   is reproducible). *)
let extend_space space docs =
  let fresh = ref [] and seen = Hashtbl.create 16 in
  Array.iter
    (fun doc ->
      Tree.fold
        (fun () node ->
          let name = Label.name node.Tree.label in
          if not (Hashtbl.mem space.ids name || Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            fresh := name :: !fresh
          end)
        () doc.Annotated.tree)
    docs;
  match !fresh with
  | [] -> space
  | l -> space_of_names (Array.append space.names (Array.of_list (List.rev l)))

(* A fresh snapshot with [new_docs] appended: the space grows first, then
   the delta index is rebuilt over all delta docs *in the extended space*
   — its keys byte-unify with the main index's stored-space keys, so
   query-time union and checkpoint merge need no translation. *)
let delta_with ~scheme ~mss d new_docs =
  if Array.length new_docs = 0 then d
  else begin
    let d_docs = Array.append d.d_docs new_docs in
    let d_space = extend_space d.d_space new_docs in
    let label_id l =
      match Hashtbl.find_opt d_space.ids (Label.name l) with
      | Some id -> id
      | None -> raise Not_found
    in
    let d_index = Builder.build ~scheme ~mss ~label_id d_docs in
    {
      d_docs;
      d_index = Some d_index;
      d_corpus = Corpus.of_array d_docs;
      d_space;
    }
  end

(* Replay the prefix's WAL (if any) into [t]'s delta.  Records carry
   global tids: anything below the main tree count was checkpointed
   already (publish landed, truncation didn't) and is skipped; the rest
   must continue the numbering without a gap.  Replaying twice is
   therefore byte-identical to replaying once. *)
let replay_wal t prefix =
  let scheme = t.index.Builder.scheme and mss = t.index.Builder.mss in
  match Wal.replay ~scheme ~mss prefix with
  | [] -> ()
  | records ->
      let expected = ref (Corpus.length t.corpus) in
      let fresh =
        List.filter_map
          (fun (tid, tree) ->
            if tid < !expected then None
            else if tid = !expected then begin
              incr expected;
              Some (Annotated.of_tree tree)
            end
            else
              Si_error.raise_corrupt ~path:(Wal.path prefix) ~offset:0
                (Printf.sprintf
                   "WAL record tid %d leaves a gap after tree %d" tid !expected))
          records
      in
      if fresh <> [] then
        Atomic.set t.delta
          (delta_with ~scheme ~mss (Atomic.get t.delta)
             (Array.of_list fresh))

let open_ ?cache_budget prefix =
  Si_error.guard @@ fun () ->
  let index =
    match Builder.load (prefix ^ ".idx") with
    | Ok index -> index
    | Error e -> raise (Si_error.Error e)
  in
  let wrap_file path f =
    try f () with
    | Sys_error what -> Si_error.raise_io ~path what
    | Failure what ->
        (* Penn parse errors: the corpus file is damaged, not the query *)
        Si_error.raise_corrupt ~path ~offset:0 what
  in
  let stored =
    wrap_file (prefix ^ ".labels") (fun () ->
        Array.of_list (read_lines (prefix ^ ".labels")))
  in
  let space = space_of_names stored in
  let cache () = Cursor.create_cache ?budget:cache_budget () in
  let finish ~index ~corpus =
    let t =
      make_handle ~index ~corpus ~cache:(cache ()) ~prefix:(Some prefix) space
    in
    replay_wal t prefix;
    t
  in
  if Builder.is_mapped index then begin
    (* SIDX4: O(1) open.  No .dat parse, no table build — map the .trees
       corpus store, attach the interval resolver, and restore the stats
       the mapped .idx does not carry from the .meta. *)
    let store_path = prefix ^ ".trees" in
    let relabel sid =
      if sid < 0 || sid >= Array.length stored then
        Si_error.raise_corrupt ~path:store_path ~offset:0
          (Printf.sprintf "stored label id %d outside the %d-entry label table"
             sid (Array.length stored))
      else Label.intern stored.(sid)
    in
    let store = wrap_file store_path (fun () -> Treestore.open_ ~relabel store_path) in
    let ntrees = Treestore.length store in
    wrap_file (prefix ^ ".meta") (fun () -> check_meta prefix ~index ~ntrees);
    let nodes, postings =
      wrap_file (prefix ^ ".meta") (fun () -> meta_counts prefix)
    in
    Builder.set_resolve index (fun tid pre ->
        let d = Treestore.get store tid in
        if pre < 0 || pre >= Annotated.size d then
          Si_error.raise_corrupt ~path:(prefix ^ ".idx") ~offset:0
            (Printf.sprintf "posting pre %d outside tree %d of %d nodes" pre
               tid (Annotated.size d));
        {
          Coding.pre;
          post = d.Annotated.post.(pre);
          level = d.Annotated.level.(pre);
        });
    let index =
      {
        index with
        Builder.stats =
          { index.Builder.stats with Builder.trees = ntrees; nodes; postings };
      }
    in
    finish ~index ~corpus:(Corpus.of_store store)
  end
  else begin
    let trees =
      wrap_file (prefix ^ ".dat") (fun () -> Penn.read_file (prefix ^ ".dat"))
    in
    let docs = Array.of_list (List.map Annotated.of_tree trees) in
    wrap_file (prefix ^ ".meta") (fun () ->
        check_meta prefix ~index ~ntrees:(Array.length docs));
    let index =
      (* restore the corpus stats the .idx does not carry *)
      let nodes = Array.fold_left (fun acc d -> acc + Annotated.size d) 0 docs in
      {
        index with
        Builder.stats =
          { index.Builder.stats with Builder.trees = Array.length docs; nodes };
      }
    in
    finish ~index ~corpus:(Corpus.of_array docs)
  end

(* ---- incremental inserts (DESIGN.md §13) -------------------------------- *)

let require_prefix t op =
  match t.prefix with
  | Some p -> p
  | None -> invalid_arg ("Si." ^ op ^ ": handle has no on-disk prefix")

let wal_handle t prefix =
  match !(t.wal) with
  | Some w -> w
  | None ->
      let w =
        Wal.open_append ~scheme:t.index.Builder.scheme ~mss:t.index.Builder.mss
          prefix
      in
      t.wal := Some w;
      w

(* Durability before visibility: every tree is framed and fsync'd into the
   WAL, then one [Atomic.set] publishes the extended snapshot to readers.
   A crash between the two replays the records at the next open — the same
   state, reached the other way.  Tids are global ([main trees + delta
   position]), which is what makes replay and the checkpoint/truncate
   crash window idempotent. *)
let insert t trees =
  Si_error.guard @@ fun () ->
  let prefix = require_prefix t "insert" in
  Mutex.protect t.ilock @@ fun () ->
  let d = Atomic.get t.delta in
  let base = Corpus.length t.corpus + Array.length d.d_docs in
  (if trees <> [] then begin
     let w = wal_handle t prefix in
     List.iteri (fun i tree -> Wal.append w ~tid:(base + i) tree) trees;
     let docs = Array.of_list (List.map Annotated.of_tree trees) in
     Atomic.set t.delta
       (delta_with ~scheme:t.index.Builder.scheme ~mss:t.index.Builder.mss d
          docs)
   end);
  base + List.length trees

(* Checkpoint: fold the delta into a fresh main index, publish it through
   the staged-rename protocol ({!save} — the same crash-consistency the
   recovery harness already covers), then truncate the WAL.  Every crash
   window is safe: before the publish renames the old set answers with a
   full WAL to replay; mid-rename the [.meta] idx_crc cross-check refuses
   the mixed set; published-but-untruncated replays records the new index
   already covers (skipped by tid).  The in-memory handle keeps answering
   from old-main + delta — the same match set; long-lived processes swap
   to the new generation ({!open_}) when convenient. *)
let checkpoint t =
  Si_error.guard @@ fun () ->
  let prefix = require_prefix t "checkpoint" in
  Mutex.protect t.ilock @@ fun () ->
  let d = Atomic.get t.delta in
  match d.d_index with
  | None ->
      (* nothing pending — but a crash between a checkpoint's publish and
         its truncate leaves a WAL whose every record the main index
         already covers (replay skipped them all).  Converge by dropping
         it now instead of re-scanning it on every future open. *)
      (if Sys.file_exists (Wal.path prefix)
       && (try (Unix.stat (Wal.path prefix)).Unix.st_size > 8
           with Unix.Unix_error _ -> false)
       then
         let w = wal_handle t prefix in
         Wal.truncate w);
      0
  | Some d_index ->
      let base = Corpus.length t.corpus in
      let merged = Builder.merge_append t.index d_index ~tid_base:base in
      let main_docs = Corpus.to_array t.corpus in
      let all_docs = Array.append main_docs d.d_docs in
      let all_trees =
        Array.to_list (Array.map (fun doc -> doc.Annotated.tree) all_docs)
      in
      let staged =
        { t with index = merged; corpus = Corpus.of_array all_docs }
      in
      (try
         save ~format:(format t)
           ~labels:(Array.to_list d.d_space.names)
           staged prefix all_trees
       with Sys_error what ->
         raise (Si_error.Error (Si_error.Io { path = prefix; what })));
      let w = wal_handle t prefix in
      Wal.truncate w;
      Array.length d.d_docs

let close_wal t =
  Mutex.protect t.ilock (fun () ->
      match !(t.wal) with
      | Some w ->
          Wal.close w;
          t.wal := None
      | None -> ())

(* ---- scrub / repair (DESIGN.md §15) ------------------------------------- *)

(* One budgeted scrub pass over the handle's lazily-verified regions.
   Folding the report into the quarantine is the policy half the engine
   deliberately lacks: index-region or per-key damage quarantines the
   handle (its bytes are untrusted, queries switch to the corpus
   fallback); corpus-store damage is reported but cannot quarantine —
   the store is the source of truth and the fallback needs it too. *)
let scrub ?budget t =
  let r =
    Scrub.pass ?budget t.integ.i_cursor ~index:t.index
      ~store:(Corpus.store t.corpus)
  in
  Mutex.protect t.integ.i_lock (fun () ->
      t.integ.scrub_passes <- t.integ.scrub_passes + 1;
      t.integ.scrub_bytes <- t.integ.scrub_bytes + r.Scrub.bytes_verified;
      if r.Scrub.complete then begin
        t.integ.bad_keys <- r.Scrub.bad_keys;
        t.integ.bad_trees <- r.Scrub.bad_trees
      end);
  let index_bad =
    r.Scrub.bad_keys <> []
    || List.exists
         (fun n -> n = "kindex" || n = "keydir" || n = "postings")
         r.Scrub.bad_regions
  in
  if index_bad then Atomic.set t.integ.quarantined true;
  r

(* Rebuild the index from the source of truth — the corpus store plus the
   delta (which holds every WAL record, replayed at open or inserted
   live) — and publish it through the §9 staged-rename protocol.  Unlike
   {!checkpoint}, nothing is merged from the old postings: the damaged
   index contributes no bytes to the new one.  Crash windows mirror the
   checkpoint's: before the publish renames the old set + WAL answer as
   before; mid-rename the [.meta] idx_crc refuses the mixed set; after
   the publish a leftover WAL replays records the new index already
   covers (skipped by tid).  The in-memory handle still maps the old
   bytes afterwards (and keeps its quarantine): reopen the prefix — the
   server rides this through the refcounted generation swap — to serve
   the repaired index. *)
let repair t =
  let prefix = require_prefix t "repair" in
  Atomic.set t.integ.repairing true;
  let r =
    Si_error.guard @@ fun () ->
    Fun.protect
      ~finally:(fun () -> Atomic.set t.integ.repairing false)
    @@ fun () ->
    Mutex.protect t.ilock @@ fun () ->
    Failpoint.hit "si.repair.rebuild";
    let d = Atomic.get t.delta in
    let main_docs = Corpus.to_array t.corpus in
    let all_docs = Array.append main_docs d.d_docs in
    let label_id l =
      match Hashtbl.find_opt d.d_space.ids (Label.name l) with
      | Some id -> id
      | None -> raise Not_found
    in
    let index =
      Builder.build ~scheme:t.index.Builder.scheme ~mss:t.index.Builder.mss
        ~label_id all_docs
    in
    let all_trees =
      Array.to_list (Array.map (fun doc -> doc.Annotated.tree) all_docs)
    in
    let staged = { t with index; corpus = Corpus.of_array all_docs } in
    Failpoint.hit "si.repair.publish";
    (try
       save ~format:(format t)
         ~labels:(Array.to_list d.d_space.names)
         staged prefix all_trees
     with Sys_error what ->
       raise (Si_error.Error (Si_error.Io { path = prefix; what })));
    Failpoint.hit "si.repair.wal-truncate";
    (* the delta is folded into the published index: drop the WAL (same
       crash window as the checkpoint's — published-but-untruncated
       records replay as no-ops, skipped by tid) *)
    (if
       Sys.file_exists (Wal.path prefix)
       && (try (Unix.stat (Wal.path prefix)).Unix.st_size > 8
           with Unix.Unix_error _ -> false)
     then
       let w = wal_handle t prefix in
       Wal.truncate w);
    Array.length all_docs
  in
  Mutex.protect t.integ.i_lock (fun () ->
      match r with
      | Ok _ -> t.integ.repairs <- t.integ.repairs + 1
      | Error _ -> t.integ.repair_failures <- t.integ.repair_failures + 1);
  r

(* ---- integrity introspection -------------------------------------------- *)

type integrity_state = [ `Ok | `Degraded | `Repairing ]

type integrity_stats = {
  state : integrity_state;
  quarantined_keys : int;
  quarantined_trees : int;
  fallback_answers : int;
  scrub_passes : int;
  scrub_bytes : int;
  repairs : int;
  repair_failures : int;
}

let quarantined t = Atomic.get t.integ.quarantined

let integrity t =
  Mutex.protect t.integ.i_lock @@ fun () ->
  {
    state =
      (if Atomic.get t.integ.repairing then `Repairing
       else if Atomic.get t.integ.quarantined then `Degraded
       else `Ok);
    quarantined_keys = List.length t.integ.bad_keys;
    quarantined_trees = List.length t.integ.bad_trees;
    fallback_answers = t.integ.fallbacks;
    scrub_passes = t.integ.scrub_passes;
    scrub_bytes = t.integ.scrub_bytes;
    repairs = t.integ.repairs;
    repair_failures = t.integ.repair_failures;
  }

(* ---- query paths -------------------------------------------------------- *)

let delta_arg t =
  let d = Atomic.get t.delta in
  match d.d_index with
  | None -> None
  | Some di -> Some (di, d.d_corpus, Corpus.length t.corpus)

(* ---- integrity quarantine + corpus fallback (DESIGN.md §15) ------------- *)

(* Only damage to the index's {e own} bytes is containable: the index is
   derived data, reconstructible from the corpus.  Corpus-store damage
   ([.trees]) is damage to the source of truth — it propagates as the
   error it is, because the fallback below could not answer exactly
   either. *)
let is_index_error t e =
  match Si_error.corrupt_path e with
  | Some path -> path = t.index.Builder.origin && path <> "<memory>"
  | None -> false

(* A query just decoded corrupt index bytes: quarantine the handle so
   this is the last query the damage ever touches (the discovering query
   itself re-answers through the fallback). *)
let note_corrupt t e =
  if is_index_error t e then begin
    Atomic.set t.integ.quarantined true;
    true
  end
  else false

(* The quarantine answer path: match every corpus tree directly (the
   oracle's evaluation, governed by the query's {!Limits} gauge).  Exact
   — identical to the index answer — just slower; under budget pressure
   it degrades to a truncated subset exactly like the index path.  Every
   outcome carries [degraded = true] (the wire's [degraded=integrity]).

   Trees decode through {!Corpus.get}: for a mapped corpus that is the
   [.trees] store's defensive, memoized decode — damage there surfaces
   as the [Corrupt] it is. *)
let fallback_eval ?(limits = Limits.none) ?shared t q =
  let limits =
    match shared with Some sh -> Limits.shared_limits sh | None -> limits
  in
  let ctx =
    match shared with
    | Some sh -> Limits.start_shared sh
    | None -> Limits.start limits
  in
  let d = Atomic.get t.delta in
  let n = Corpus.length t.corpus in
  let total = n + Array.length d.d_docs in
  let acc = ref [] in
  let finish truncated =
    let matches =
      match ctx with Some c -> Limits.collected c | None -> List.rev !acc
    in
    { Limits.matches; truncated; degraded = true }
  in
  match
    for tid = 0 to total - 1 do
      let doc = if tid < n then Corpus.get t.corpus tid else d.d_docs.(tid - n) in
      (match ctx with
      | Some c ->
          Limits.step c;
          Limits.charge_decode c (Annotated.size doc)
      | None -> ());
      List.iter
        (fun node ->
          match ctx with
          | Some c -> Limits.emit c (tid, node)
          | None -> acc := (tid, node) :: !acc)
        (Si_query.Matcher.roots doc q)
    done
  with
  | () -> finish false
  | exception Limits.Truncated -> finish true
  | exception
      Si_error.Error (Si_error.Timeout _ | Si_error.Resource_exhausted _)
    when limits.Limits.partial ->
      finish true

let fallback_outcome ?limits ?shared t q =
  let r = Si_error.guard (fun () -> fallback_eval ?limits ?shared t q) in
  (match r with
  | Ok _ ->
      Mutex.protect t.integ.i_lock (fun () ->
          t.integ.fallbacks <- t.integ.fallbacks + 1)
  | Error _ -> ());
  r

(* Every AST-level query of a single handle funnels through here — the
   string paths, {!query_batch} slots and sharded legs included — so a
   quarantined handle answers from the corpus on all of them. *)
let outcome_ast ~cache ?limits ?shared t q =
  if Atomic.get t.integ.quarantined then fallback_outcome ?limits ?shared t q
  else
    match
      Eval.run_outcome ~index:t.index ~corpus:t.corpus ~label_id:t.label_id
        ~cache ?delta:(delta_arg t) ?limits ?shared q
    with
    | Error e when note_corrupt t e ->
        (* the discovering query is contained too: answer it *)
        fallback_outcome ?limits ?shared t q
    | r -> r

let query_ast ?limits t q =
  Result.map
    (fun (o : Limits.outcome) -> o.Limits.matches)
    (outcome_ast ~cache:t.cache ?limits t q)

let outcome_with ~cache ?limits t s =
  match Si_query.Parser.parse s with
  | Ok q -> outcome_ast ~cache ?limits t q
  | Error e -> Error (Si_error.Bad_query e)

let query_outcome ?limits t s = outcome_with ~cache:t.cache ?limits t s
let query_outcome_cached ~cache ?limits t s = outcome_with ~cache ?limits t s

let query_with ~cache ?limits t s =
  Result.map (fun (o : Limits.outcome) -> o.Limits.matches)
    (outcome_with ~cache ?limits t s)

let query ?limits t s = query_with ~cache:t.cache ?limits t s

let oracle t q =
  let d = Atomic.get t.delta in
  let docs = Corpus.to_array t.corpus in
  let docs = if d.d_docs = [||] then docs else Array.append docs d.d_docs in
  Si_query.Matcher.corpus_roots docs q

(* ---- parallel batch evaluation ----------------------------------------- *)

type domain_stat = {
  queries_run : int;
  errors : int;
  busy_ns : int;
  died : string option;
}

type batch = {
  answers : (Limits.outcome, Si_error.t) result array;
  latencies_ns : float array;
  elapsed_s : float;
  cache : Cache.stats;
  domain_stats : domain_stat array;
}

let slot_sentinel =
  Error (Si_error.Internal "query slot never ran (worker domain died)")

(* Fan the query stream across [domains] OCaml 5 domains over this one
   handle.  The hot path takes no locks: the index slots and corpus are
   only read (the streaming evaluator never touches the decode memo), each
   domain evaluates through its own cache, and the result slots written
   are disjoint per domain (static round-robin split).  The only shared
   mutable state — the label intern table touched by query parsing — is
   mutex-guarded.

   Fault isolation: one query must never take the batch down.  Every slot
   starts as {!slot_sentinel}; an exception escaping a single evaluation
   (an evaluator bug, [Stack_overflow], ...) is captured as
   [Error (Internal _)] in that slot and the domain moves on; a domain
   that dies anyway (or fails to spawn) leaves its remaining slots as the
   sentinel and is reported in its [domain_stat.died], never by rethrow. *)
let clamp_warned = Atomic.make false

let query_batch ?(domains = 1) ?cache_budget ?limits t queries =
  if domains < 1 then invalid_arg "Si.query_batch: domains must be >= 1";
  (* CPU-bound fan-out: more workers than cores is strictly slower (the
     1-core container measures --domains 2 losing to 1, EXPERIMENTS.md),
     so clamp and say so rather than silently oversubscribing.  The
     warning prints once per process — a server calling in a loop must
     not spam one line per batch. *)
  let domains =
    let cores = Domain.recommended_domain_count () in
    if domains > cores then begin
      if not (Atomic.exchange clamp_warned true) then
        Printf.eprintf
          "si: clamping batch domains %d -> %d (recommended_domain_count)\n%!"
          domains cores;
      cores
    end
    else domains
  in
  let n = Array.length queries in
  let answers = Array.make n slot_sentinel in
  let latencies = Array.make n 0. in
  let run_range d =
    let cache = Cursor.create_cache ?budget:cache_budget () in
    let ran = ref 0 and errs = ref 0 and busy = ref 0 in
    let i = ref d in
    while !i < n do
      let t0 = Monotonic.now_ns () in
      let r =
        try outcome_with ~cache ?limits t queries.(!i)
        with e -> Error (Si_error.Internal (Printexc.to_string e))
      in
      let dt = Monotonic.now_ns () - t0 in
      answers.(!i) <- r;
      latencies.(!i) <- float_of_int dt;
      busy := !busy + dt;
      incr ran;
      (match r with Error _ -> incr errs | Ok _ -> ());
      i := !i + domains
    done;
    ( Cache.stats cache,
      { queries_run = !ran; errors = !errs; busy_ns = !busy; died = None } )
  in
  let dead what =
    ( Cache.zero_stats 0,
      { queries_run = 0; errors = 0; busy_ns = 0; died = Some what } )
  in
  let t0 = Monotonic.now_ns () in
  let per_domain =
    if domains = 1 then [| run_range 0 |]
    else begin
      (* reuse the process-wide shard-affinity pool instead of spawning
         (and tearing down) domains-1 fresh domains per call: repeated
         batches over a long-lived process pay the spawn cost once.  The
         range tasks are leaf work (they never submit back into the
         pool), so running them on pool workers cannot deadlock. *)
      let pool = Pool.global () in
      let submitted =
        Array.init (domains - 1) (fun k ->
            Pool.submit pool ~worker:(k + 1) (fun () -> run_range (k + 1)))
      in
      let first = run_range 0 in
      let joined =
        Array.map
          (fun task ->
            match Pool.await task with
            | Ok r -> r
            | Error e -> dead ("worker domain died: " ^ Printexc.to_string e))
          submitted
      in
      Array.append [| first |] joined
    end
  in
  let elapsed_s = Monotonic.elapsed_s t0 in
  {
    answers;
    latencies_ns = latencies;
    elapsed_s;
    cache =
      Array.fold_left
        (fun acc (cs, _) -> Cache.add_stats acc cs)
        (Cache.zero_stats 0) per_domain;
    domain_stats = Array.map snd per_domain;
  }

(* ---- sharded handles (DESIGN.md §14) ------------------------------------ *)

(* One logical index split across [sh_map.shards] per-shard prefixes,
   each a complete stand-alone index with shard-local tids.  Globality
   lives entirely in the router: global tid [g] belongs to shard
   [Shardmap.shard_of_tid g], and within a shard the local order is the
   global order restricted to it, so the local->global map of shard [s]
   is the sorted array of assigned global tids ([Shardmap.assign]).

   Affinity invariant: shard [i] is only ever evaluated on pool worker
   [i mod size] (each worker drains its queue sequentially), so shard
   [i]'s decoded-block cache — not thread-safe — is touched by exactly
   one domain without any locking.  Sharded queries therefore always go
   through the pool, even when it has one worker. *)
type sharded = {
  sh_prefix : string;
  sh_map : Shardmap.t;
  sh_shards : t array;
  sh_l2g : int array Atomic.t array;
      (* per shard, local tid -> global tid; replaced by copy on insert
         *before* the delta publishes, so any match a racing query can
         see already has a mapping *)
  sh_pool : Pool.t;
  sh_lock : Mutex.t;  (* serializes insert / checkpoint across shards *)
  sh_total : int Atomic.t;  (* global tree count, main + deltas *)
}

type handle = Single of t | Sharded of sharded

let shard_count sh = sh.sh_map.Shardmap.shards
let shard_handles sh = sh.sh_shards
let sharded_prefix sh = sh.sh_prefix
let shard_map sh = sh.sh_map
let sharded_total sh = Atomic.get sh.sh_total

let visible t = Corpus.length t.corpus + pending t

(* The count/assignment consistency check: each member shard's visible
   tree count must equal what the router assigns it for the summed
   total.  A shard file swapped in from another corpus (or a lost /
   duplicated shard WAL) shows up as a count skew long before a query
   returns silently misrouted tids. *)
let check_assignment ~prefix map shards =
  let per = Array.map visible shards in
  let total = Array.fold_left ( + ) 0 per in
  let want = Shardmap.counts map ~total in
  Array.iteri
    (fun i n ->
      if n <> want.(i) then
        Si_error.raise_schema
          ~path:(Shardmap.manifest_path prefix)
          (Printf.sprintf
             "shard %d holds %d trees but the router assigns it %d of %d — \
              mixed or stale shard set"
             i n want.(i) total))
    per;
  total

let mk_sharded ~prefix ~map ~shards ~total =
  {
    sh_prefix = prefix;
    sh_map = map;
    sh_shards = shards;
    sh_l2g = Array.map Atomic.make (Shardmap.assign map ~total);
    sh_pool = Pool.global ();
    sh_lock = Mutex.create ();
    sh_total = Atomic.make total;
  }

let open_sharded ?cache_budget prefix =
  Si_error.guard @@ fun () ->
  let map = Shardmap.load prefix in
  let shards =
    Array.init map.Shardmap.shards (fun i ->
        match open_ ?cache_budget (Shardmap.shard_prefix prefix i) with
        | Ok t -> t
        | Error e -> raise (Si_error.Error e))
  in
  Array.iteri
    (fun i t ->
      if
        t.index.Builder.scheme <> map.Shardmap.scheme
        || t.index.Builder.mss <> map.Shardmap.mss
      then
        Si_error.raise_schema
          ~path:(Shardmap.shard_prefix prefix i ^ ".idx")
          (Printf.sprintf
             "shard %d is %s/mss=%d but the manifest pins %s/mss=%d" i
             (Coding.scheme_to_string t.index.Builder.scheme)
             t.index.Builder.mss
             (Coding.scheme_to_string map.Shardmap.scheme)
             map.Shardmap.mss))
    shards;
  let total = check_assignment ~prefix map shards in
  mk_sharded ~prefix ~map ~shards ~total

let build_sharded ?(domains = 1) ?cache_budget ?format ~shards:nshards ~scheme
    ~mss ~trees prefix =
  Si_error.guard @@ fun () ->
  if nshards < 1 then invalid_arg "Si.build_sharded: shards must be >= 1";
  let all = Array.of_list trees in
  let total = Array.length all in
  let map = { Shardmap.shards = nshards; scheme; mss } in
  let rows = Shardmap.assign map ~total in
  let per_shard =
    Array.map (fun row -> Array.to_list (Array.map (fun g -> all.(g)) row)) rows
  in
  (* per-shard builds are independent (the label intern table is
     mutex-guarded); fan them across the affinity pool so a multi-core
     builder overlaps them, one worker per shard *)
  ignore domains;
  let pool = Pool.global () in
  let tasks =
    Array.mapi
      (fun i shard_trees ->
        Pool.submit pool ~worker:i (fun () ->
            build ?cache_budget ?format ~scheme ~mss ~trees:shard_trees
              ~prefix:(Shardmap.shard_prefix prefix i)
              ()))
      per_shard
  in
  let handles =
    Array.map
      (fun task ->
        match Pool.await task with
        | Ok t -> t
        | Error (Si_error.Error e) -> raise (Si_error.Error e)
        | Error e -> raise e)
      tasks
  in
  (* the manifest is the commit point: a crash before this rename leaves
     only unreferenced .shardK files behind *)
  Shardmap.save map prefix;
  mk_sharded ~prefix ~map ~shards:handles ~total

let open_any ?cache_budget prefix =
  if Shardmap.is_sharded prefix then
    Result.map (fun sh -> Sharded sh) (open_sharded ?cache_budget prefix)
  else Result.map (fun t -> Single t) (open_ ?cache_budget prefix)

(* ---- sharded queries: fan-out / merge ----------------------------------- *)

type sharded_outcome = {
  so_outcome : Limits.outcome;
  so_failed : (int * Si_error.t) list;
      (* shards whose leg failed, in shard order; non-empty only under
         [degrade] (a brownout answer) *)
}

let cmp_pair (a1, a2) (b1, b2) =
  if a1 <> b1 then Int.compare a1 b1 else Int.compare (a2 : int) b2

(* K-way merge of the per-shard match lists, each sorted by global tid.
   The router gives every tree to exactly one shard, so the streams are
   disjoint — no dedup, plain least-head merge.  [max_results] caps the
   merged stream; everything kept was verified by its shard, so a capped
   answer is still a subset of the exact one (the contract). *)
let merge_matches ?max_results lists =
  let arrs = Array.map Array.of_list lists in
  let k = Array.length arrs in
  let pos = Array.make k 0 in
  let out = ref [] and n = ref 0 and capped = ref false in
  (try
     while true do
       let best = ref (-1) in
       for i = 0 to k - 1 do
         if pos.(i) < Array.length arrs.(i) then
           if
             !best < 0
             || cmp_pair arrs.(i).(pos.(i)) arrs.(!best).(pos.(!best)) < 0
           then best := i
       done;
       if !best < 0 then raise Exit;
       (match max_results with
       | Some m when !n >= m ->
           capped := true;
           raise Exit
       | _ -> ());
       out := arrs.(!best).(pos.(!best)) :: !out;
       incr n;
       pos.(!best) <- pos.(!best) + 1
     done
   with Exit -> ());
  (List.rev !out, !capped)

let remap_shard ~prefix i l2g matches =
  let row_len = Array.length l2g in
  List.map
    (fun (local, node) ->
      if local < 0 || local >= row_len then
        Si_error.raise_corrupt
          ~path:(Shardmap.shard_prefix prefix i ^ ".idx")
          ~offset:0
          (Printf.sprintf
             "shard %d matched local tid %d outside its %d-tree assignment"
             i local row_len)
      else (l2g.(local), node))
    matches

(* Fan one parsed query out over every shard on its affinity worker and
   merge.  One [Limits.share] gauge spans all legs: bytes and steps pool
   atomically, the deadline runs from the fan-out start, and
   [max_results] is enforced per leg *and* on the merged stream, so
   truncation anywhere still yields a verified subset.

   [degrade = false] (the CLI default): any failed leg fails the query
   with that shard's error.  [degrade = true] (the serving path): failed
   legs are dropped, the healthy ones answer with [truncated = true] and
   the failures reported in [so_failed] — a brownout, not a 503; only
   when every leg fails does the query fail. *)
let query_outcome_sharded ?(limits = Limits.none) ?(degrade = false) sh s =
  match Si_query.Parser.parse s with
  | Error e -> Error (Si_error.Bad_query e)
  | Ok q ->
      let shared = Limits.share limits in
      let tasks =
        Array.mapi
          (fun i (t : t) ->
            Pool.submit sh.sh_pool ~worker:i (fun () ->
                try
                  Failpoint.hit (Printf.sprintf "si.shard.eval.%d" i);
                  (* the shared funnel: a quarantined member answers its
                     leg from the corpus (degraded), not with an error *)
                  outcome_ast ~cache:t.cache ~limits ?shared t q
                with Sys_error what ->
                  Error
                    (Si_error.Io
                       { path = Shardmap.shard_prefix sh.sh_prefix i; what })))
          sh.sh_shards
      in
      let legs =
        Array.map
          (fun task ->
            match Pool.await task with
            | Ok r -> r
            | Error (Si_error.Error e) -> Error e
            | Error e -> Error (Si_error.Internal (Printexc.to_string e)))
          tasks
      in
      (* snapshot the l2g rows *after* every leg finished: inserts extend
         the row before publishing the delta, so any local tid a leg can
         have matched is already mapped *)
      let l2g = Array.map Atomic.get sh.sh_l2g in
      Si_error.guard @@ fun () ->
      let failed = ref [] and truncated = ref false and degraded = ref false in
      let lists =
        Array.mapi
          (fun i leg ->
            match leg with
            | Ok (o : Limits.outcome) ->
                if o.Limits.truncated then truncated := true;
                if o.Limits.degraded then degraded := true;
                remap_shard ~prefix:sh.sh_prefix i l2g.(i) o.Limits.matches
            | Error e ->
                if not degrade then raise (Si_error.Error e);
                failed := (i, e) :: !failed;
                [])
          legs
      in
      let failed = List.rev !failed in
      if List.length failed = Array.length legs then
        (* every shard refused: nothing to brown out to *)
        raise (Si_error.Error (snd (List.hd failed)));
      let matches, capped =
        merge_matches ?max_results:limits.Limits.max_results
          lists
      in
      {
        so_outcome =
          {
            Limits.matches;
            truncated = !truncated || capped || failed <> [];
            degraded = !degraded;
          };
        so_failed = failed;
      }

let query_sharded ?limits ?degrade sh s =
  Result.map
    (fun so -> so.so_outcome.Limits.matches)
    (query_outcome_sharded ?limits ?degrade sh s)

(* ---- sharded writes ------------------------------------------------------ *)

(* Route each tree to the owner of its global tid and append through the
   owning shard's WAL (shard-local tid numbering — each shard prefix
   stays a complete stand-alone index).  The l2g row extends *before*
   the per-shard insert publishes, keeping the query-side remap total;
   writing [row(local) = g] by position (rather than appending blindly)
   makes a retry after a failed insert idempotent. *)
let insert_sharded sh trees =
  Si_error.guard @@ fun () ->
  Mutex.protect sh.sh_lock @@ fun () ->
  List.iter
    (fun tree ->
      let g = Atomic.get sh.sh_total in
      let s = Shardmap.shard_of_tid ~shards:sh.sh_map.Shardmap.shards g in
      let t = sh.sh_shards.(s) in
      let local = visible t in
      let row = Atomic.get sh.sh_l2g.(s) in
      let row' =
        Array.init (local + 1) (fun j -> if j < local then row.(j) else g)
      in
      Atomic.set sh.sh_l2g.(s) row';
      (match insert t [ tree ] with
      | Ok _ -> ()
      | Error e -> raise (Si_error.Error e));
      Atomic.set sh.sh_total (g + 1))
    trees;
  Atomic.get sh.sh_total

let pending_sharded sh =
  Array.fold_left (fun acc t -> acc + pending t) 0 sh.sh_shards

let wal_bytes_sharded sh =
  Array.fold_left (fun acc t -> acc + wal_bytes t) 0 sh.sh_shards

(* Checkpoint one shard (or all): each shard folds its own delta through
   the §9 staged-rename publish and truncates its own WAL — per-shard
   checkpoint debt drains independently, which is the point of sharding
   the WALs in the first place. *)
let checkpoint_sharded ?shard sh =
  Si_error.guard @@ fun () ->
  Mutex.protect sh.sh_lock @@ fun () ->
  let one i =
    match checkpoint sh.sh_shards.(i) with
    | Ok n -> n
    | Error e -> raise (Si_error.Error e)
  in
  match shard with
  | Some i ->
      if i < 0 || i >= Array.length sh.sh_shards then
        invalid_arg (Printf.sprintf "Si.checkpoint_sharded: no shard %d" i);
      one i
  | None ->
      let total = ref 0 in
      Array.iteri (fun i _ -> total := !total + one i) sh.sh_shards;
      !total

(* A functional flip of one member shard to a freshly opened handle (the
   per-shard zero-downtime swap): shares the router, lock, total and l2g
   state with the old record — inserts keep working through either — and
   re-checks the count assignment so a swapped-in foreign shard is
   refused before any query can touch it. *)
let reopen_shard ?cache_budget sh i =
  Si_error.guard @@ fun () ->
  if i < 0 || i >= Array.length sh.sh_shards then
    invalid_arg (Printf.sprintf "Si.reopen_shard: no shard %d" i);
  match open_ ?cache_budget (Shardmap.shard_prefix sh.sh_prefix i) with
  | Error e -> raise (Si_error.Error e)
  | Ok fresh ->
      let shards = Array.copy sh.sh_shards in
      shards.(i) <- fresh;
      ignore (check_assignment ~prefix:sh.sh_prefix sh.sh_map shards);
      { sh with sh_shards = shards }

let close_wal_sharded sh = Array.iter close_wal sh.sh_shards

(* ---- sharded oracle / sentence ------------------------------------------ *)

let oracle_sharded sh q =
  let l2g = Array.map Atomic.get sh.sh_l2g in
  let per =
    Array.to_list
      (Array.mapi
         (fun i t ->
           List.map (fun (local, node) -> (l2g.(i).(local), node)) (oracle t q))
         sh.sh_shards)
  in
  List.sort cmp_pair (List.concat per)

let sentence_sharded sh g =
  let s = Shardmap.shard_of_tid ~shards:sh.sh_map.Shardmap.shards g in
  let row = Atomic.get sh.sh_l2g.(s) in
  (* the row is strictly increasing: binary-search g's local position *)
  let lo = ref 0 and hi = ref (Array.length row - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if row.(mid) = g then begin
      found := mid;
      lo := !hi + 1
    end
    else if row.(mid) < g then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then
    invalid_arg (Printf.sprintf "Si.sentence_sharded: no tree %d" g)
  else sentence sh.sh_shards.(s) !found

(* ---- sharded scrub / repair / integrity --------------------------------- *)

let scrub_sharded ?budget sh = Array.map (scrub ?budget) sh.sh_shards

let repair_sharded ?shard sh =
  Si_error.guard @@ fun () ->
  Mutex.protect sh.sh_lock @@ fun () ->
  let one i =
    match repair sh.sh_shards.(i) with
    | Ok n -> n
    | Error e -> raise (Si_error.Error e)
  in
  match shard with
  | Some i ->
      if i < 0 || i >= Array.length sh.sh_shards then
        invalid_arg (Printf.sprintf "Si.repair_sharded: no shard %d" i);
      one i
  | None ->
      let total = ref 0 in
      Array.iteri (fun i _ -> total := !total + one i) sh.sh_shards;
      !total

let quarantined_shards sh =
  let out = ref [] in
  Array.iteri
    (fun i t -> if quarantined t then out := i :: !out)
    sh.sh_shards;
  List.rev !out

let integrity_sharded sh =
  let per = Array.map integrity sh.sh_shards in
  let worst =
    Array.fold_left
      (fun acc s ->
        match (acc, s.state) with
        | `Repairing, _ | _, `Repairing -> `Repairing
        | `Degraded, _ | _, `Degraded -> `Degraded
        | `Ok, `Ok -> `Ok)
      `Ok per
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per in
  {
    state = worst;
    quarantined_keys = sum (fun s -> s.quarantined_keys);
    quarantined_trees = sum (fun s -> s.quarantined_trees);
    fallback_answers = sum (fun s -> s.fallback_answers);
    scrub_passes = sum (fun s -> s.scrub_passes);
    scrub_bytes = sum (fun s -> s.scrub_bytes);
    repairs = sum (fun s -> s.repairs);
    repair_failures = sum (fun s -> s.repair_failures);
  }
