open Si_treebank

type t = {
  index : Builder.t;
  corpus : Annotated.t array;
  label_id : Label.t -> int;
      (* process-global label id -> the id space the index keys were
         encoded in; raises Not_found for labels the index never saw *)
}

let index t = t.index
let scheme t = t.index.Builder.scheme
let mss t = t.index.Builder.mss
let stats t = t.index.Builder.stats
let corpus t = t.corpus
let sentence t tid = t.corpus.(tid).Annotated.tree

let write_text path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc l; output_char oc '\n') lines)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let save t prefix trees =
  Builder.save t.index (prefix ^ ".idx");
  Penn.write_file (prefix ^ ".dat") trees;
  write_text (prefix ^ ".labels") (Array.to_list (Label.all ()));
  let s = t.index.Builder.stats in
  write_text (prefix ^ ".meta")
    [
      "scheme=" ^ Coding.scheme_to_string t.index.Builder.scheme;
      "mss=" ^ string_of_int t.index.Builder.mss;
      "trees=" ^ string_of_int s.Builder.trees;
      "nodes=" ^ string_of_int s.Builder.nodes;
      "keys=" ^ string_of_int s.Builder.keys;
      "postings=" ^ string_of_int s.Builder.postings;
    ]

let build ?(domains = 1) ~scheme ~mss ~trees ?prefix () =
  let corpus = Array.of_list (List.map Annotated.of_tree trees) in
  let index = Builder.build ~domains ~scheme ~mss corpus in
  let t = { index; corpus; label_id = Fun.id } in
  Option.iter (fun p -> save t p trees) prefix;
  t

let open_ prefix =
  let index = Builder.load (prefix ^ ".idx") in
  let trees = Penn.read_file (prefix ^ ".dat") in
  let corpus = Array.of_list (List.map Annotated.of_tree trees) in
  let stored = Array.of_list (read_lines (prefix ^ ".labels")) in
  let stored_id : (string, int) Hashtbl.t = Hashtbl.create (Array.length stored) in
  Array.iteri (fun id name -> Hashtbl.replace stored_id name id) stored;
  let label_id l =
    match Hashtbl.find_opt stored_id (Label.name l) with
    | Some id -> id
    | None -> raise Not_found
  in
  let index =
    (* restore the corpus stats the .idx does not carry *)
    let nodes = Array.fold_left (fun acc d -> acc + Annotated.size d) 0 corpus in
    {
      index with
      Builder.stats =
        { index.Builder.stats with Builder.trees = Array.length corpus; nodes };
    }
  in
  { index; corpus; label_id }

let query_ast t q = Eval.run ~index:t.index ~corpus:t.corpus ~label_id:t.label_id q

let query t s =
  match Si_query.Parser.parse s with
  | Ok q -> Ok (query_ast t q)
  | Error e -> Error e

let oracle t q = Si_query.Matcher.corpus_roots t.corpus q
