(** Deterministic shard routing and the [.shards] manifest.

    A sharded corpus splits one logical index across [shards] per-shard
    prefixes ([prefix.shard0] … [prefix.shardN-1]), each a complete
    stand-alone index in any container format.  The router assigns every
    {e global} tree id to exactly one shard by a fixed avalanche hash, so
    the assignment is a pure function of [(router, shards, tid)] — no
    routing table is stored, and rebuilding, reopening, or replaying a
    WAL always reproduces the same placement.

    The manifest ([prefix.shards]) pins the shard count, the router
    version, and the scheme/mss every shard must agree on.  {!load}
    refuses unknown router versions and mixed-scheme shard sets as
    [Schema_mismatch]; each member shard still carries its own [.meta]
    CRC cross-check, so a shard swapped in from a different corpus is
    caught either by its own meta or by the count/assignment consistency
    check in [Si.open_sharded]. *)

type t = {
  shards : int;  (** number of shards, ≥ 1 *)
  scheme : Coding.scheme;  (** every shard must be built with this *)
  mss : int;
}

val router : string
(** Version tag of the hash function, recorded in the manifest
    (["xmix32-v1"]).  A future router change bumps the tag; old
    manifests keep routing with the hash they were built with or are
    refused, never silently re-routed. *)

val shard_of_tid : shards:int -> int -> int
(** [shard_of_tid ~shards tid] — the owning shard of global tree id
    [tid] under the [xmix32-v1] router (a murmur3-style 32-bit
    finalizer, [mod shards]). *)

val shard_prefix : string -> int -> string
(** [shard_prefix prefix i = prefix ^ ".shard" ^ i] — the per-shard
    index prefix. *)

val manifest_path : string -> string
(** [prefix ^ ".shards"]. *)

val is_sharded : string -> bool
(** Whether a [.shards] manifest exists for this prefix. *)

val save : t -> string -> unit
(** Write the manifest atomically (tmp + rename).  Raises
    {!Si_error.Error} on I/O failure. *)

val load : string -> t
(** Read and validate the manifest.  Raises {!Si_error.Error}:
    [Io] when missing/unreadable, [Corrupt] on a malformed file,
    [Schema_mismatch] on an unknown router version or shard count < 1. *)

val assign : t -> total:int -> int array array
(** [assign t ~total] — the local→global tid map of every shard:
    [(assign t ~total).(s).(l)] is the global tid of shard [s]'s local
    tree [l].  Each row is strictly increasing (local order = global
    order restricted to the shard). *)

val counts : t -> total:int -> int array
(** Trees per shard for a corpus of [total] trees — what each member
    shard's own tree count must equal for the set to be consistent. *)
