(* Byte-budgeted LRU: a hash table over an intrusive doubly-linked list.
   [find_or_add] is O(1) amortised; eviction pops from the cold end until
   the resident cost is back within budget. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident : int;
  entries : int;
  budget : int;
}

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  cost : int;
  mutable prev : ('k, 'v) node option;  (* towards the hot (MRU) end *)
  mutable next : ('k, 'v) node option;  (* towards the cold (LRU) end *)
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  cost_of : 'v -> int;
  budget : int;
  mutable hot : ('k, 'v) node option;
  mutable cold : ('k, 'v) node option;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_budget = 64 * 1024 * 1024

let create ?(budget = default_budget) ~cost () =
  if budget < 0 then invalid_arg "Cache.create: negative budget";
  {
    table = Hashtbl.create 256;
    cost_of = cost;
    budget;
    hot = None;
    cold = None;
    resident = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* ---- intrusive list ---------------------------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
  n.prev <- None;
  n.next <- None

let push_hot t n =
  n.prev <- None;
  n.next <- t.hot;
  (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
  t.hot <- Some n

let push_cold t n =
  n.next <- None;
  n.prev <- t.cold;
  (match t.cold with Some c -> c.next <- Some n | None -> t.hot <- Some n);
  t.cold <- Some n

let evict_until_fits t =
  while t.resident > t.budget do
    match t.cold with
    | None ->
        (* resident > budget >= 0 with an empty list means the byte
           accounting is corrupted — fail loudly rather than zero the
           counter and serve on as if nothing happened *)
        invalid_arg
          (Printf.sprintf
             "Cache: resident=%d exceeds budget=%d with no evictable entry \
              (accounting corrupted)"
             t.resident t.budget)
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table n.key;
        t.resident <- t.resident - n.cost;
        t.evictions <- t.evictions + 1
  done

let find_or_add ?charge t key produce =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      (match t.hot with
      | Some h when h == n -> ()
      | _ ->
          unlink t n;
          push_hot t n);
      n.value
  | None ->
      t.misses <- t.misses + 1;
      let value = produce () in
      let cost = t.cost_of value in
      let n = { key; value; cost; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      (* an entry bigger than the whole budget would only thrash: admit it
         at the cold end so the eviction sweep reclaims it first — served
         this once, counted exactly, and gone without dumping the rest of
         the cache *)
      if cost <= t.budget then push_hot t n else push_cold t n;
      t.resident <- t.resident + cost;
      evict_until_fits t;
      (* bill the caller's resource gauge after insertion: if the charge
         trips a budget the decode work is already cached for a retry *)
      (match charge with Some f -> f cost | None -> ());
      value

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    resident = t.resident;
    entries = Hashtbl.length t.table;
    budget = t.budget;
  }

let add_stats (a : stats) (b : stats) =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    resident = a.resident + b.resident;
    entries = a.entries + b.entries;
    budget = a.budget + b.budget;
  }

let zero_stats budget =
  { hits = 0; misses = 0; evictions = 0; resident = 0; entries = 0; budget }
