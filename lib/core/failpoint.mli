(** Deterministic fault injection for robustness tests.

    A failpoint is a named code location ({!hit} / {!read_transform}
    call site); the registry arms actions against names, from the
    [SI_FAILPOINTS] environment variable, a CLI flag, or directly in
    tests.  Nothing is armed by default and an unarmed {!hit} costs one
    load of a flag, so the points stay in production code.

    {b Spec grammar} ([;]-separated, e.g.
    ["builder.save.rename=exit:42@1;cursor.decode=fail@3"]):

    {v name=ACTION[@TRIGGER] v}

    Actions:
    - [fail] — raise [Si_error.Error (Internal _)]: a typed, catchable
      internal fault (exercises the fault-isolation boundaries);
    - [sys] — raise [Sys_error]: an injected I/O failure (exercises the
      error-cleanup paths, e.g. atomic save rollback);
    - [exit:CODE] — [Unix._exit CODE]: a simulated crash — no cleanup, no
      finalizers, exactly like a kill (the crash-recovery harness);
    - [delay:MS] — sleep MS milliseconds, then continue (latency
      injection);
    - [short:N] — truncate the bytes flowing through a
      {!read_transform} site to N (a torn read); ignored at {!hit} sites.

    Triggers: [@N] fire on the Nth hit only (default [@1]); [@N+] fire on
    every hit from the Nth; [@p:PCT:SEED] fire with probability PCT%
    from a splitmix64 stream seeded with SEED — fully deterministic, so a
    failing fuzz run reproduces exactly.

    Hit counters are mutex-guarded: domains racing through a shared armed
    registry count consistently. *)

val arm : string -> (unit, string) result
(** Parse a spec and arm it (additive over previously armed points).
    [Error] describes the first malformed clause; nothing of a malformed
    spec is armed. *)

val arm_exn : string -> unit
(** {!arm}, raising [Invalid_argument] — for test setup. *)

val env_var : string
(** ["SI_FAILPOINTS"]. *)

val arm_from_env : unit -> (unit, string) result
(** Arm from [SI_FAILPOINTS] if set; [Ok ()] when unset. *)

val clear : unit -> unit
(** Disarm everything and reset hit counters. *)

val active : unit -> bool

val hit : string -> unit
(** Fire the failpoint [name] if armed (see the action table above).
    No-op when nothing is armed. *)

val read_transform : string -> string -> string
(** [read_transform name bytes] — [bytes], truncated if [name] is armed
    with [short:N] and the trigger fires.  Other armed actions fire as in
    {!hit}. *)

val known : (string * string) list
(** The registered injection points, [(name, where-it-fires)] — the
    crash-recovery harness iterates these ([si_tool failpoints] prints
    them). *)
