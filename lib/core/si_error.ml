type t =
  | Corrupt of { path : string; offset : int; what : string }
  | Io of { path : string; what : string }
  | Bad_query of string
  | Schema_mismatch of { path : string; what : string }
  | Timeout of { elapsed_ns : int; deadline_ns : int }
  | Resource_exhausted of { what : string; budget : int; spent : int }
  | Internal of string

exception Error of t

let to_string = function
  | Corrupt { path; offset; what } ->
      Printf.sprintf "corrupt index: %s: %s (at byte %d)" path what offset
  | Io { path; what } -> Printf.sprintf "i/o error: %s: %s" path what
  | Bad_query what -> Printf.sprintf "bad query: %s" what
  | Schema_mismatch { path; what } ->
      Printf.sprintf "schema mismatch: %s: %s" path what
  | Timeout { elapsed_ns; deadline_ns } ->
      Printf.sprintf "timeout: query exceeded its %.3f ms deadline (%.3f ms elapsed)"
        (float_of_int deadline_ns /. 1e6)
        (float_of_int elapsed_ns /. 1e6)
  | Resource_exhausted { what; budget; spent } ->
      Printf.sprintf "resource exhausted: %s budget %d, spent %d" what budget spent
  | Internal what -> Printf.sprintf "internal error: %s" what

let pp ppf e = Format.pp_print_string ppf (to_string e)

let exit_code = function
  | Bad_query _ -> 2
  | Corrupt _ -> 3
  | Io _ -> 4
  | Schema_mismatch _ -> 5
  | Timeout _ -> 6
  | Resource_exhausted _ -> 7
  | Internal _ -> 8

let is_corrupt = function Corrupt _ -> true | _ -> false
let corrupt_path = function Corrupt { path; _ } -> Some path | _ -> None

let raise_corrupt ~path ~offset what = raise (Error (Corrupt { path; offset; what }))
let raise_io ~path what = raise (Error (Io { path; what }))
let raise_schema ~path what = raise (Error (Schema_mismatch { path; what }))
let guard f = match f () with v -> Ok v | exception Error e -> Error e
