open Si_treebank

(* The evaluators' view of the corpus: dense tids -> annotated trees.
   [Mem] is the classic fully-materialized array (build, SIDX1-3 open);
   [Store] reads trees out of a mapped {!Treestore} on demand, which is
   what makes SIDX4's O(1) open possible — no Penn re-parse of the whole
   [.dat] before the first query. *)

type t = Mem of Annotated.t array | Store of Treestore.t

let of_array a = Mem a
let of_store s = Store s

let length = function
  | Mem a -> Array.length a
  | Store s -> Treestore.length s

let get t tid =
  match t with Mem a -> a.(tid) | Store s -> Treestore.get s tid

let store = function Mem _ -> None | Store s -> Some s

let to_array = function
  | Mem a -> a
  | Store s -> Array.init (Treestore.length s) (Treestore.get s)
