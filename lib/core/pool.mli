(** Shard-affinity worker-domain pool.

    A fixed set of long-lived worker domains, each with its own task
    queue.  Work is submitted to a {e specific} worker ([worker mod
    size]), not to whichever worker is free: shard [i] of a sharded
    index is always evaluated on worker [i mod size], so shard [i]'s
    streaming decode cache ({!Cursor.cache}, not thread-safe) is only
    ever touched by one domain — affinity is the synchronization.

    Workers run forever and are never joined; they hold no resources
    beyond their queues and die with the process.  Tasks must be leaf
    work: a task that submits back into the pool can deadlock a
    single-worker pool. *)

type t
(** A pool of worker domains. *)

type 'a task
(** An in-flight submission; join it with {!await}. *)

val create : int -> t
(** [create n] spawns [max 1 n] worker domains. *)

val size : t -> int

val global : unit -> t
(** The process-wide pool, created on first use and sized
    [max 1 (Domain.recommended_domain_count ())].  Shared by sharded
    handles and {!Si.query_batch} so repeated calls reuse domains
    instead of spawning per call. *)

val submit : t -> worker:int -> (unit -> 'a) -> 'a task
(** Enqueue a thunk on worker [worker mod size].  Each worker drains
    its queue sequentially in FIFO order. *)

val await : 'a task -> ('a, exn) result
(** Block until the task completes; an exception raised by the thunk is
    returned, never re-raised here. *)

val run_on : t -> worker:int -> (unit -> 'a) -> ('a, exn) result
(** [submit] + [await] in one step. *)
