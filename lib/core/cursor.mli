(** Streaming cursor over one key's posting blocks — the serving read path.

    A cursor walks a posting's entries in order without decoding the whole
    posting: the SIDX3 skip table ({!Coding.v3_layout}) gives each block's
    first tid and byte extent, so {!seek} binary-searches the skip table,
    decodes only the one block that can straddle the target, and {!peek}
    at an undecoded block boundary answers straight from the skip table.
    Intersections and merge joins gallop over compressed bytes, touching
    only the blocks whose tid range they actually visit.

    Decoded blocks go through an optional {!Cache.t} keyed by
    [(key, block index)] so repeated queries share decode work within a
    bounded byte budget; without a cache each block decodes on demand and
    is dropped when the cursor moves on.  The cursor never touches the
    slot's [decoded] memo field, so cursors over one shared index handle
    are safe across domains (each domain uses its own cache). *)

type cache = (string * int, Coding.posting) Cache.t
(** Decoded-block cache, keyed by (index key, block index).  One per
    domain — {!Cache.t} is not thread-safe. *)

val create_cache : ?budget:int -> unit -> cache
(** Budget in bytes (default {!Cache.create}'s 64 MiB); block cost is
    {!Coding.heap_bytes}. *)

type t

val create : ?cache:cache -> ?ctx:Limits.ctx -> Builder.t -> string -> t option
(** Cursor positioned at the key's first entry; [None] if the key is
    absent.  Raises [Si_error.Error] on corrupt container bytes.

    [ctx] is the governing query's resource gauge: each block decode
    charges {!Limits.charge_decode} with the block's decoded heap bytes
    (through the cache's miss hook, so cache hits are free) and each
    {!seek} counts a {!Limits.step} — a governed query overruns by at
    most one block before the limit surfaces. *)

val entries : t -> int
(** Total entries of the posting (from slot metadata, no decoding). *)

val exhausted : t -> bool

val peek : t -> int option
(** Tid of the current entry, [None] when exhausted.  Free of decoding
    when positioned at the start of a block with a skip-table record. *)

val peek_tid : t -> int
(** {!peek} without the option box for hot loops: the current entry's tid,
    or [-1] when exhausted (tids are never negative). *)

val current : t -> Coding.posting * int
(** The current block's decoded posting and the entry index within it —
    decodes (through the cache) on demand.  Undefined when {!exhausted}. *)

val advance : t -> unit
(** Move to the next entry (crossing a block boundary lazily). *)

val seek : t -> int -> unit
(** [seek t tid] positions at the first remaining entry with tid [>= tid]
    (or exhausts).  Skips over blocks via the skip table, decoding at most
    the one block that can straddle the target. *)
