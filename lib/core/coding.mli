(** The three posting codings of the Subtree Index (paper §3.2).

    For an index key (a unique subtree shape), a posting records where its
    instances occur:

    - {b filter-based} — sorted unique tree ids; querying must post-validate
      candidate trees.
    - {b subtree interval} — per instance, [(pre, post, level)] of *every*
      key node in canonical order; exact matching via structural joins.
    - {b root-split} — per instance, [(pre, post, level)] of the instance
      *root* only, deduplicated per [(tid, root)]; exact matching via joins
      on cover roots (the paper's contribution).

    Postings are flattened with delta-varints on the tree id; the binary
    layout is the start of the on-disk format the later storage PR bulk
    loads into a B+tree. *)

type scheme = Filter | Interval | Root_split

val scheme_to_string : scheme -> string
(** ["filter" | "interval" | "root-split"], as accepted by the CLI. *)

val scheme_of_string : string -> (scheme, string) result

type interval = { pre : int; post : int; level : int }

val pp_interval : Format.formatter -> interval -> unit

type posting =
  | Filter_p of int array  (** sorted unique tids *)
  | Interval_p of (int * interval array) array
      (** (tid, intervals per canonical key position), sorted by tid *)
  | Root_p of (int * interval) array
      (** (tid, root interval), sorted by (tid, pre), unique *)

val entries : posting -> int
(** Number of posting entries. *)

val write : Buffer.t -> posting -> unit
(** Legacy SIDX1 flattening: delta-varint tids, raw [(pre, post, level)]
    varints per interval. *)

val read : scheme -> key_size:int -> string -> int -> posting * int
(** [read scheme ~key_size s off] parses one posting written by {!write}
    ([key_size] nodes per interval-coded instance); returns the posting and
    the next offset. *)

val pack : Buffer.t -> posting -> unit
(** SIDX2 packing — the representation both held in memory and written to
    disk.  Tids are delta-coded; each interval stores [(pre, size-1, level)]
    using the identity [post = pre + size - 1 - level], so sizes (small)
    replace postorder ranks (corpus-wide); non-root instance nodes pack
    [pre]/[level] as offsets from the instance root, and within a tid run
    the root [pre] is delta-coded against the previous entry. *)

val unpack : scheme -> key_size:int -> string -> int -> posting * int
(** Inverse of {!pack}; same contract as {!read}. *)

val packed_entries : string -> int -> int
(** [packed_entries s off] is the entry count of the packed posting at
    [off] — the leading varint, without decoding the posting. *)
