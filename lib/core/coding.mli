(** The three posting codings of the Subtree Index (paper §3.2).

    For an index key (a unique subtree shape), a posting records where its
    instances occur:

    - {b filter-based} — sorted unique tree ids; querying must post-validate
      candidate trees.
    - {b subtree interval} — per instance, [(pre, post, level)] of *every*
      key node in canonical order; exact matching via structural joins.
    - {b root-split} — per instance, [(pre, post, level)] of the instance
      *root* only, deduplicated per [(tid, root)]; exact matching via joins
      on cover roots (the paper's contribution).

    Postings are flattened with delta-varints on the tree id; the binary
    layout is the start of the on-disk format the later storage PR bulk
    loads into a B+tree. *)

type scheme = Filter | Interval | Root_split

val scheme_to_string : scheme -> string
(** ["filter" | "interval" | "root-split"], as accepted by the CLI. *)

val scheme_of_string : string -> (scheme, string) result

type interval = { pre : int; post : int; level : int }

val pp_interval : Format.formatter -> interval -> unit

type posting =
  | Filter_p of int array  (** sorted unique tids *)
  | Interval_p of (int * interval array) array
      (** (tid, intervals per canonical key position), sorted by tid *)
  | Root_p of (int * interval) array
      (** (tid, root interval), sorted by (tid, pre), unique *)

val entries : posting -> int
(** Number of posting entries. *)

val tid_at : posting -> int -> int
(** [tid_at p i] is the tree id of entry [i] — constructor-agnostic. *)

val heap_bytes : posting -> int
(** Estimated decoded heap footprint in bytes, the {!Cache} cost of a
    decoded posting or block. *)

(** {1 Byte sources}

    Decoding reads through {!src}: an in-heap string (SIDX1-3 loads slurp
    the file) or a memory-mapped byte view (SIDX4 consumes the file in
    place, zero-copy).  The per-byte loops are specialised per constructor,
    so the string path keeps its pre-mmap performance. *)

type bigstring = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The element type of [Unix.map_file] with [Bigarray.char]. *)

type src = Str of string | Map of bigstring

val str : string -> src
val map_src : bigstring -> src

val src_length : src -> int

val src_get : src -> int -> char
(** Unchecked byte access — callers bound offsets themselves. *)

val src_sub : src -> int -> int -> string
(** [src_sub src off len] copies [len] bytes out as a string (bounds
    checked; raises [Invalid_argument]).  Used for key bytes, never for
    posting regions — postings decode in place. *)

exception Malformed of { offset : int; what : string }
(** Raised by every decoding function on bytes that are not a well-formed
    posting: truncated or overlong varints, entry counts exceeding the
    remaining bytes, negative or overflowing values.  {!Builder} maps it to
    {!Si_error.Corrupt} with the file path attached. *)

val checked_varint : limit:int -> src -> int -> int * int
(** [checked_varint ~limit s off] is [(value, next_off)], reading strictly
    below [limit] (clamped to [src_length s]); raises {!Malformed}
    instead of [Invalid_argument], with the failing offset.  The shared
    primitive of the defensive decode paths ({!Builder.load} uses it for
    the key directory as well). *)

val write : Buffer.t -> posting -> unit
(** Legacy SIDX1 flattening: delta-varint tids, raw [(pre, post, level)]
    varints per interval. *)

val read : scheme -> key_size:int -> ?limit:int -> src -> int -> posting * int
(** [read scheme ~key_size s off] parses one posting written by {!write}
    ([key_size] nodes per interval-coded instance); returns the posting and
    the next offset.  Raises {!Malformed} on bad bytes; never reads at or
    past [limit] (default: end of [s]). *)

val pack : Buffer.t -> posting -> unit
(** SIDX2 packing — the representation both held in memory and written to
    disk.  Tids are delta-coded; each interval stores [(pre, size-1, level)]
    using the identity [post = pre + size - 1 - level], so sizes (small)
    replace postorder ranks (corpus-wide); non-root instance nodes pack
    [pre]/[level] as offsets from the instance root, and within a tid run
    the root [pre] is delta-coded against the previous entry.

    The delta coding is only injective on postings satisfying the builder's
    ordering invariants, so [pack] validates them — tids sorted (strictly,
    for filter postings), root [pre]s non-decreasing within a tid run,
    instance nodes at or below their root, every interval honouring the
    [post = pre + size - 1 - level] identity — and raises
    [Invalid_argument] with a clear message rather than encoding bytes that
    would decode to a different posting. *)

val unpack : scheme -> key_size:int -> ?limit:int -> src -> int -> posting * int
(** Inverse of {!pack}; same contract as {!read}: bounds-checked against
    [limit], validates the entry count against the remaining bytes before
    allocating, raises {!Malformed} on bad bytes. *)

val packed_entries : ?limit:int -> src -> int -> int
(** [packed_entries s off] is the entry count of the packed posting at
    [off] — the leading varint, without decoding the posting.  Raises
    {!Malformed} on a truncated or overflowing count. *)

(** {1 SIDX3 block container}

    A v3 posting wraps the v2 entry encoding in a block container.  The
    leading varint is [(count << 1) | blocked].  Flat postings
    ([blocked = 0], whenever [count <= block_entries]) are followed by the
    exact SIDX2 body.  Blocked postings carry the block size [B], then a
    skip table of [ceil count/B] records — (first tid delta vs the previous
    block, block byte length) — then the concatenated block bodies.  Every
    block body re-starts the delta chains (the v2 encoding already writes
    each posting's first entry absolutely, so a block is decodable in
    isolation), which is what lets intersections and joins seek by tid over
    compressed bytes and decode only the blocks they touch. *)

val default_block_entries : int
(** 128 — build-time default; the value used is written into the bytes, so
    readers never assume it. *)

type block = {
  first_tid : int;  (** from the skip table; [-1] for a flat posting *)
  boff : int;  (** byte offset of the block body *)
  blen : int;  (** byte length of the block body *)
  bentries : int;  (** entries in this block *)
}

val pack_v3 : ?block_entries:int -> Buffer.t -> posting -> unit
(** Pack with the v3 container.  Validates like {!pack}; raises
    [Invalid_argument] if [block_entries < 1]. *)

val v3_layout : scheme -> ?limit:int -> src -> int -> int * block array
(** [v3_layout scheme s off] parses only the container header and skip
    table: [(count, blocks)].  A flat posting yields one block with
    [first_tid = -1].  Validates [B >= 1], that a blocked posting exceeds
    one block, that skip records fit the remaining bytes (before any
    allocation), that block lengths tile the byte range exactly, and — for
    filter postings — that block first tids are strictly increasing.
    Raises {!Malformed}. *)

val unpack_block : scheme -> key_size:int -> src -> block -> posting
(** Decode one block.  Checks the body fills exactly [blen] bytes and that
    its first tid matches the skip table.  Raises {!Malformed}. *)

val unpack_v3 : scheme -> key_size:int -> ?limit:int -> src -> int -> posting * int
(** Decode a whole v3 posting (all blocks, concatenated), additionally
    validating cross-block tid monotonicity.  Raises {!Malformed}. *)

val packed_entries_v3 : ?limit:int -> src -> int -> int
(** Entry count of the v3 posting at [off], from the container header
    only. *)

(** {1 SIDX4 interval slices}

    In an SIDX4 file the tree structure lives once, succinctly, in the
    mapped corpus store ({!Treestore}), so interval postings only *name*
    nodes: tid plus preorder ranks — one varint per node instead of three.
    The container framing is exactly the v3 layout ({!v3_layout} parses v4
    postings unchanged); decoding takes a [resolve] closure
    ([tid -> pre -> interval], backed by the store) that reconstructs the
    exact intervals v3 would have carried, so query results stay
    byte-identical.  [resolve] is the bounds authority for both arguments:
    a corrupt tid or pre must surface as its error, never as a crash.
    Filter and root-split postings carry no redundant structure and stay in
    v3 bytes inside SIDX4 files. *)

val pack_v4 : ?block_entries:int -> Buffer.t -> posting -> unit
(** Pack an interval posting with the v4 slice encoding inside the v3
    container.  Validates like {!pack}; raises [Invalid_argument] on a
    non-interval posting or [block_entries < 1]. *)

val unpack_block_v4 :
  key_size:int -> resolve:(int -> int -> interval) -> src -> block -> posting
(** Decode one v4 block; same checks as {!unpack_block}. *)

val unpack_v4 :
  key_size:int ->
  resolve:(int -> int -> interval) ->
  ?limit:int ->
  src ->
  int ->
  posting * int
(** Decode a whole v4 posting; same checks as {!unpack_v3}. *)
