(** The three posting codings of the Subtree Index (paper §3.2).

    For an index key (a unique subtree shape), a posting records where its
    instances occur:

    - {b filter-based} — sorted unique tree ids; querying must post-validate
      candidate trees.
    - {b subtree interval} — per instance, [(pre, post, level)] of *every*
      key node in canonical order; exact matching via structural joins.
    - {b root-split} — per instance, [(pre, post, level)] of the instance
      *root* only, deduplicated per [(tid, root)]; exact matching via joins
      on cover roots (the paper's contribution).

    Postings are flattened with delta-varints on the tree id; the binary
    layout is the start of the on-disk format the later storage PR bulk
    loads into a B+tree. *)

type scheme = Filter | Interval | Root_split

val scheme_to_string : scheme -> string
(** ["filter" | "interval" | "root-split"], as accepted by the CLI. *)

val scheme_of_string : string -> (scheme, string) result

type interval = { pre : int; post : int; level : int }

val pp_interval : Format.formatter -> interval -> unit

type posting =
  | Filter_p of int array  (** sorted unique tids *)
  | Interval_p of (int * interval array) array
      (** (tid, intervals per canonical key position), sorted by tid *)
  | Root_p of (int * interval) array
      (** (tid, root interval), sorted by (tid, pre), unique *)

val entries : posting -> int
(** Number of posting entries. *)

exception Malformed of { offset : int; what : string }
(** Raised by every decoding function on bytes that are not a well-formed
    posting: truncated or overlong varints, entry counts exceeding the
    remaining bytes, negative or overflowing values.  {!Builder} maps it to
    {!Si_error.Corrupt} with the file path attached. *)

val checked_varint : limit:int -> string -> int -> int * int
(** [checked_varint ~limit s off] is [(value, next_off)], reading strictly
    below [limit] (clamped to [String.length s]); raises {!Malformed}
    instead of [Invalid_argument], with the failing offset.  The shared
    primitive of the defensive decode paths ({!Builder.load} uses it for
    the key directory as well). *)

val write : Buffer.t -> posting -> unit
(** Legacy SIDX1 flattening: delta-varint tids, raw [(pre, post, level)]
    varints per interval. *)

val read : scheme -> key_size:int -> ?limit:int -> string -> int -> posting * int
(** [read scheme ~key_size s off] parses one posting written by {!write}
    ([key_size] nodes per interval-coded instance); returns the posting and
    the next offset.  Raises {!Malformed} on bad bytes; never reads at or
    past [limit] (default: end of [s]). *)

val pack : Buffer.t -> posting -> unit
(** SIDX2 packing — the representation both held in memory and written to
    disk.  Tids are delta-coded; each interval stores [(pre, size-1, level)]
    using the identity [post = pre + size - 1 - level], so sizes (small)
    replace postorder ranks (corpus-wide); non-root instance nodes pack
    [pre]/[level] as offsets from the instance root, and within a tid run
    the root [pre] is delta-coded against the previous entry.

    The delta coding is only injective on postings satisfying the builder's
    ordering invariants, so [pack] validates them — tids sorted (strictly,
    for filter postings), root [pre]s non-decreasing within a tid run,
    instance nodes at or below their root, every interval honouring the
    [post = pre + size - 1 - level] identity — and raises
    [Invalid_argument] with a clear message rather than encoding bytes that
    would decode to a different posting. *)

val unpack : scheme -> key_size:int -> ?limit:int -> string -> int -> posting * int
(** Inverse of {!pack}; same contract as {!read}: bounds-checked against
    [limit], validates the entry count against the remaining bytes before
    allocating, raises {!Malformed} on bad bytes. *)

val packed_entries : ?limit:int -> string -> int -> int
(** [packed_entries s off] is the entry count of the packed posting at
    [off] — the leading varint, without decoding the posting.  Raises
    {!Malformed} on a truncated or overflowing count. *)
