(* Read-only memory mapping plus the little-endian field readers the
   mapped formats (SIDX4, the .trees corpus store) share.  The returned
   bigarray owns the mapping: the fd is closed immediately (POSIX keeps
   the map alive) and the GC finalizer unmaps. *)

type bigstring = Coding.bigstring

let map_ro path : bigstring =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      Si_error.raise_io ~path (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size =
        try (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size
        with Unix.Unix_error (e, _, _) ->
          Si_error.raise_io ~path (Unix.error_message e)
      in
      if size = 0L then Si_error.raise_corrupt ~path ~offset:0 "empty file";
      if Int64.compare size (Int64.of_int max_int) > 0 then
        Si_error.raise_io ~path "file too large to map";
      try
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |])
      with
      | Unix.Unix_error (e, _, _) -> Si_error.raise_io ~path (Unix.error_message e)
      | Sys_error what -> Si_error.raise_io ~path what)

(* Unsigned little-endian fields out of the map; offsets are the caller's
   responsibility to bound (both formats validate region extents against
   the file length before any field read). *)

let u32 (m : bigstring) off =
  let b i = Char.code (Bigarray.Array1.get m (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let u64 ~path (m : bigstring) off =
  let b i = Char.code (Bigarray.Array1.get m (off + i)) in
  let hi = b 7 in
  (* OCaml ints are 63-bit: a top byte above 0x3f cannot be a valid offset
     or length in any file we can map — reject instead of wrapping *)
  if hi > 0x3f then
    Si_error.raise_corrupt ~path ~offset:off "64-bit field out of range";
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (hi lsl 56)

let bytes_at (m : bigstring) off len =
  if off < 0 || len < 0 || off > Bigarray.Array1.dim m - len then
    invalid_arg "Mmap.bytes_at";
  String.init len (fun i -> Bigarray.Array1.unsafe_get m (off + i))
