open Si_treebank
open Si_subtree

type stats = { trees : int; nodes : int; keys : int; postings : int; bytes : int }

(* A slot holds the SIDX2 packed bytes of one posting — a slice of [src] —
   and memoizes its decoded form on first access.  [src] is either a
   per-posting string (after build) or the whole index file (after load),
   so loading shares one backing buffer across every slot. *)
type slot = {
  src : string;
  off : int;
  len : int;
  entries : int;
  mutable decoded : Coding.posting option;
}

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, slot) Hashtbl.t;
  stats : stats;
}

(* ---- shard stage ------------------------------------------------------- *)

(* accumulation state per key, in reverse order *)
type acc =
  | A_filter of int list
  | A_interval of (int * Coding.interval array) list
  | A_root of (int * Coding.interval) list

type shard = { table : (string, acc) Hashtbl.t; nodes : int }

let interval_of doc v =
  {
    Coding.pre = v;
    post = doc.Annotated.post.(v);
    level = doc.Annotated.level.(v);
  }

(* Accumulate postings for docs.(lo .. hi-1); tids are global, so a shard
   over a contiguous tid range accumulates exactly the subsequence of the
   sequential accumulation falling in that range.  The per-key dedups
   (filter: same tid; root-split: same (tid, root)) never straddle a shard
   boundary because both compare on the tid. *)
let build_shard ~scheme ~mss docs lo hi =
  let table = Hashtbl.create 65536 in
  let nodes = ref 0 in
  for tid = lo to hi - 1 do
    let doc = docs.(tid) in
    nodes := !nodes + Annotated.size doc;
    Extract.fold_instances doc ~mss ~init:() ~f:(fun () ~key ~nodes:inst ->
        let prev = Hashtbl.find_opt table key in
        let next =
          match scheme with
          | Coding.Filter -> (
              match prev with
              | Some (A_filter (t :: _)) when t = tid -> prev
              | Some (A_filter ts) -> Some (A_filter (tid :: ts))
              | _ -> Some (A_filter [ tid ]))
          | Coding.Root_split -> (
              let root = inst.(0) in
              let entry = (tid, interval_of doc root) in
              match prev with
              | Some (A_root (e :: _)) when e = entry -> prev
              | Some (A_root es) -> Some (A_root (entry :: es))
              | _ -> Some (A_root [ entry ]))
          | Coding.Interval -> (
              let ivs = Array.map (interval_of doc) inst in
              match prev with
              | Some (A_interval es) -> Some (A_interval ((tid, ivs) :: es))
              | _ -> Some (A_interval [ (tid, ivs) ]))
        in
        match next with
        | Some acc when next != prev -> Hashtbl.replace table key acc
        | _ -> ())
  done;
  { table; nodes = !nodes }

(* ---- merge stage ------------------------------------------------------- *)

(* Concatenate per-key accumulations in shard (= tid) order.  Lists are in
   reverse order, so later shards prepend: fold shards left to right,
   appending the earlier accumulation *behind* the later one.  The result
   is indistinguishable from a single-shard accumulation. *)
let merge_shards shards =
  match shards with
  | [] -> { table = Hashtbl.create 16; nodes = 0 }
  | first :: rest ->
      List.iter
        (fun shard ->
          Hashtbl.iter
            (fun key acc ->
              match Hashtbl.find_opt first.table key with
              | None -> Hashtbl.replace first.table key acc
              | Some prev ->
                  let merged =
                    match (prev, acc) with
                    | A_filter a, A_filter b -> A_filter (b @ a)
                    | A_interval a, A_interval b -> A_interval (b @ a)
                    | A_root a, A_root b -> A_root (b @ a)
                    | _ -> assert false
                  in
                  Hashtbl.replace first.table key merged)
            shard.table)
        rest;
      {
        table = first.table;
        nodes = List.fold_left (fun a s -> a + s.nodes) 0 shards;
      }

(* ---- finalize stage ---------------------------------------------------- *)

let posting_of_acc = function
  | A_filter ts -> Coding.Filter_p (Array.of_list (List.rev ts))
  | A_interval es -> Coding.Interval_p (Array.of_list (List.rev es))
  | A_root es -> Coding.Root_p (Array.of_list (List.rev es))

let slot_of_posting p =
  let buf = Buffer.create 64 in
  Coding.pack buf p;
  let src = Buffer.contents buf in
  { src; off = 0; len = String.length src; entries = Coding.entries p; decoded = Some p }

let finalize ~scheme ~mss ~trees merged =
  let final = Hashtbl.create (Hashtbl.length merged.table) in
  let postings = ref 0 in
  let bytes = ref 0 in
  Hashtbl.iter
    (fun key acc ->
      let p = posting_of_acc acc in
      let slot = slot_of_posting p in
      postings := !postings + slot.entries;
      bytes :=
        !bytes + Varint.size (String.length key) + String.length key
        + Varint.size slot.len + slot.len;
      Hashtbl.replace final key slot)
    merged.table;
  {
    scheme;
    mss;
    table = final;
    stats =
      {
        trees;
        nodes = merged.nodes;
        keys = Hashtbl.length final;
        postings = !postings;
        bytes = !bytes;
      };
  }

let build ?(domains = 1) ~scheme ~mss docs =
  if mss < 1 || mss > 255 then invalid_arg "Builder.build: mss out of range";
  if domains < 1 then invalid_arg "Builder.build: domains must be >= 1";
  let n = Array.length docs in
  let domains = min domains (max n 1) in
  let merged =
    if domains = 1 then build_shard ~scheme ~mss docs 0 n
    else begin
      (* contiguous tid ranges, one per domain *)
      let bounds = Array.init (domains + 1) (fun i -> i * n / domains) in
      let spawned =
        Array.init (domains - 1) (fun i ->
            let lo = bounds.(i + 1) and hi = bounds.(i + 2) in
            Domain.spawn (fun () -> build_shard ~scheme ~mss docs lo hi))
      in
      let first = build_shard ~scheme ~mss docs bounds.(0) bounds.(1) in
      let rest = Array.to_list (Array.map Domain.join spawned) in
      merge_shards (first :: rest)
    end
  in
  finalize ~scheme ~mss ~trees:n merged

(* ---- access ------------------------------------------------------------ *)

let find (t : t) key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some slot -> (
      match slot.decoded with
      | Some p -> Some p
      | None ->
          let p, _ =
            Coding.unpack t.scheme ~key_size:(Canonical.key_size key) slot.src
              slot.off
          in
          slot.decoded <- Some p;
          Some p)

let posting_entries (t : t) key =
  Option.map (fun (s : slot) -> s.entries) (Hashtbl.find_opt t.table key)

let n_keys (t : t) = Hashtbl.length t.table

let iter (t : t) f =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  List.iter (fun k -> f k (Option.get (find t k))) (List.sort String.compare keys)

let length_histogram (t : t) =
  (* power-of-two buckets: count of keys whose posting has <= 2^i entries *)
  let buckets = Array.make 31 0 in
  Hashtbl.iter
    (fun _ (slot : slot) ->
      let rec bucket i = if slot.entries <= 1 lsl i then i else bucket (i + 1) in
      let b = bucket 0 in
      buckets.(b) <- buckets.(b) + 1)
    t.table;
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) buckets;
  Array.to_list (Array.init (!last + 1) (fun i -> (1 lsl i, buckets.(i))))

(* ---- flattened file ---------------------------------------------------- *)

let magic = "SIDX2\n"
let magic_v1 = "SIDX1\n"

let scheme_byte = function
  | Coding.Filter -> 'F'
  | Coding.Interval -> 'I'
  | Coding.Root_split -> 'R'

let scheme_of_byte path = function
  | 'F' -> Coding.Filter
  | 'I' -> Coding.Interval
  | 'R' -> Coding.Root_split
  | c -> failwith (Printf.sprintf "%s: bad scheme byte %C" path c)

let sorted_keys (t : t) =
  List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) t.table [])

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

(* Streams records straight to the channel through a small per-record
   scratch buffer — peak extra memory is one record, not the whole index. *)
let save (t : t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_char oc (scheme_byte t.scheme);
      output_char oc (Char.chr t.mss);
      let scratch = Buffer.create 256 in
      Varint.write scratch (Hashtbl.length t.table);
      Buffer.output_buffer oc scratch;
      let prev = ref "" in
      List.iter
        (fun key ->
          Buffer.clear scratch;
          let slot = Hashtbl.find t.table key in
          (* front-coded key: shared prefix with the previous sorted key *)
          let lcp = common_prefix !prev key in
          Varint.write scratch lcp;
          Varint.write scratch (String.length key - lcp);
          Buffer.add_substring scratch key lcp (String.length key - lcp);
          Varint.write scratch slot.len;
          Buffer.output_buffer oc scratch;
          output_substring oc slot.src slot.off slot.len;
          prev := key)
        (sorted_keys t))

let save_v1 (t : t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic_v1;
      output_char oc (scheme_byte t.scheme);
      output_char oc (Char.chr t.mss);
      let scratch = Buffer.create 256 in
      Varint.write scratch (Hashtbl.length t.table);
      Buffer.output_buffer oc scratch;
      List.iter
        (fun key ->
          Buffer.clear scratch;
          Varint.write scratch (String.length key);
          Buffer.add_string scratch key;
          Coding.write scratch (Option.get (find t key));
          Buffer.output_buffer oc scratch)
        (sorted_keys t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* SIDX2 load: one pass over the records building key -> (offset, length)
   slots over the raw file bytes; postings decode on first [find]. *)
let load_v2 path s =
  let mlen = String.length magic in
  let scheme = scheme_of_byte path s.[mlen] in
  let mss = Char.code s.[mlen + 1] in
  let nkeys, off = Varint.read s (mlen + 2) in
  let table = Hashtbl.create (2 * nkeys) in
  let postings = ref 0 in
  let off = ref off in
  let prev = ref "" in
  for _ = 1 to nkeys do
    let lcp, o = Varint.read s !off in
    let slen, o = Varint.read s o in
    let key = String.sub !prev 0 lcp ^ String.sub s o slen in
    let o = o + slen in
    let plen, o = Varint.read s o in
    let entries = Coding.packed_entries s o in
    postings := !postings + entries;
    Hashtbl.replace table key { src = s; off = o; len = plen; entries; decoded = None };
    off := o + plen;
    prev := key
  done;
  {
    scheme;
    mss;
    table;
    stats =
      {
        trees = 0;
        nodes = 0;
        keys = nkeys;
        postings = !postings;
        bytes = String.length s;
      };
  }

(* SIDX1 load: the legacy format stores postings eagerly; decode each and
   re-pack so the in-memory representation is uniformly SIDX2. *)
let load_v1 path s =
  let mlen = String.length magic_v1 in
  let scheme = scheme_of_byte path s.[mlen] in
  let mss = Char.code s.[mlen + 1] in
  let nkeys, off = Varint.read s (mlen + 2) in
  let table = Hashtbl.create (2 * nkeys) in
  let off = ref off in
  let postings = ref 0 in
  let bytes = ref 0 in
  for _ = 1 to nkeys do
    let klen, o = Varint.read s !off in
    let key = String.sub s o klen in
    let posting, o = Coding.read scheme ~key_size:(Canonical.key_size key) s (o + klen) in
    off := o;
    let slot = slot_of_posting posting in
    postings := !postings + slot.entries;
    bytes :=
      !bytes + Varint.size klen + klen + Varint.size slot.len + slot.len;
    Hashtbl.replace table key slot
  done;
  {
    scheme;
    mss;
    table;
    stats = { trees = 0; nodes = 0; keys = nkeys; postings = !postings; bytes = !bytes };
  }

let load path =
  let s = read_file path in
  let mlen = String.length magic in
  if String.length s < mlen + 2 then failwith (path ^ ": not an si index file")
  else if String.equal (String.sub s 0 mlen) magic then load_v2 path s
  else if String.equal (String.sub s 0 mlen) magic_v1 then load_v1 path s
  else failwith (path ^ ": not an si index file (bad magic; want SIDX1 or SIDX2)")
