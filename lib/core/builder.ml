open Si_treebank
open Si_subtree

type stats = { trees : int; nodes : int; keys : int; postings : int; bytes : int }

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, Coding.posting) Hashtbl.t;
  stats : stats;
}

(* accumulation state per key, in reverse order *)
type acc =
  | A_filter of int list
  | A_interval of (int * Coding.interval array) list
  | A_root of (int * Coding.interval) list

let interval_of doc v =
  {
    Coding.pre = v;
    post = doc.Annotated.post.(v);
    level = doc.Annotated.level.(v);
  }

let build ~scheme ~mss docs =
  if mss < 1 || mss > 255 then invalid_arg "Builder.build: mss out of range";
  let table = Hashtbl.create 65536 in
  let nodes = ref 0 in
  Array.iteri
    (fun tid doc ->
      nodes := !nodes + Annotated.size doc;
      Extract.fold_instances doc ~mss ~init:() ~f:(fun () ~key ~nodes:inst ->
          let prev = Hashtbl.find_opt table key in
          let next =
            match scheme with
            | Coding.Filter -> (
                match prev with
                | Some (A_filter (t :: _)) when t = tid -> prev
                | Some (A_filter ts) -> Some (A_filter (tid :: ts))
                | _ -> Some (A_filter [ tid ]))
            | Coding.Root_split -> (
                let root = inst.(0) in
                let entry = (tid, interval_of doc root) in
                match prev with
                | Some (A_root (e :: _)) when e = entry -> prev
                | Some (A_root es) -> Some (A_root (entry :: es))
                | _ -> Some (A_root [ entry ]))
            | Coding.Interval -> (
                let ivs = Array.map (interval_of doc) inst in
                match prev with
                | Some (A_interval es) -> Some (A_interval ((tid, ivs) :: es))
                | _ -> Some (A_interval [ (tid, ivs) ]))
          in
          match next with
          | Some acc when next != prev -> Hashtbl.replace table key acc
          | _ -> ()))
    docs;
  (* finalize: reverse the accumulated lists into sorted arrays *)
  let final = Hashtbl.create (Hashtbl.length table) in
  let postings = ref 0 in
  let bytes = ref 0 in
  Hashtbl.iter
    (fun key acc ->
      let posting =
        match acc with
        | A_filter ts -> Coding.Filter_p (Array.of_list (List.rev ts))
        | A_interval es -> Coding.Interval_p (Array.of_list (List.rev es))
        | A_root es -> Coding.Root_p (Array.of_list (List.rev es))
      in
      postings := !postings + Coding.entries posting;
      let buf = Buffer.create 64 in
      Coding.write buf posting;
      bytes := !bytes + String.length key + Buffer.length buf + Varint.size (String.length key);
      Hashtbl.replace final key posting)
    table;
  {
    scheme;
    mss;
    table = final;
    stats =
      {
        trees = Array.length docs;
        nodes = !nodes;
        keys = Hashtbl.length final;
        postings = !postings;
        bytes = !bytes;
      };
  }

let find t key = Hashtbl.find_opt t.table key

(* ---- flattened file --------------------------------------------------- *)

let magic = "SIDX1\n"

let save t path =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf magic;
  Buffer.add_char buf
    (match t.scheme with Coding.Filter -> 'F' | Coding.Interval -> 'I' | Coding.Root_split -> 'R');
  Buffer.add_char buf (Char.chr t.mss);
  Varint.write buf (Hashtbl.length t.table);
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  let keys = List.sort String.compare keys in
  List.iter
    (fun key ->
      Varint.write buf (String.length key);
      Buffer.add_string buf key;
      Coding.write buf (Hashtbl.find t.table key))
    keys;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length magic in
  if String.length s < mlen + 2 || not (String.equal (String.sub s 0 mlen) magic) then
    failwith (path ^ ": not an si index file");
  let scheme =
    match s.[mlen] with
    | 'F' -> Coding.Filter
    | 'I' -> Coding.Interval
    | 'R' -> Coding.Root_split
    | c -> failwith (Printf.sprintf "%s: bad scheme byte %C" path c)
  in
  let mss = Char.code s.[mlen + 1] in
  let nkeys, off = Varint.read s (mlen + 2) in
  let table = Hashtbl.create (2 * nkeys) in
  let off = ref off in
  let postings = ref 0 in
  for _ = 1 to nkeys do
    let klen, o = Varint.read s !off in
    let key = String.sub s o klen in
    let posting, o =
      Coding.read scheme ~key_size:(Canonical.key_size key) s (o + klen)
    in
    postings := !postings + Coding.entries posting;
    off := o;
    Hashtbl.replace table key posting
  done;
  {
    scheme;
    mss;
    table;
    stats =
      {
        trees = 0;
        nodes = 0;
        keys = nkeys;
        postings = !postings;
        bytes = String.length s;
      };
  }
