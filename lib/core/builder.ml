open Si_treebank
open Si_subtree

type stats = { trees : int; nodes : int; keys : int; postings : int; bytes : int }

(* Which container encoding the slot's bytes use: [V3] is the block-skip
   container (built indexes and SIDX3 files), [V2] the flat SIDX2 body
   (kept decodable so old files load without a rebuild). *)
type enc = V2 | V3

(* A slot holds the packed bytes of one posting — a slice of [src] — and
   memoizes its decoded form on first access.  [src] is either a
   per-posting string (after build) or the whole index file (after load),
   so loading shares one backing buffer across every slot. *)
type slot = {
  src : string;
  off : int;
  len : int;
  entries : int;
  enc : enc;
  mutable decoded : Coding.posting option;
}

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, slot) Hashtbl.t;
  stats : stats;
  origin : string;
  file_crc : int option;
}

(* ---- shard stage ------------------------------------------------------- *)

(* accumulation state per key, in reverse order *)
type acc =
  | A_filter of int list
  | A_interval of (int * Coding.interval array) list
  | A_root of (int * Coding.interval) list

type shard = { table : (string, acc) Hashtbl.t; nodes : int }

let interval_of doc v =
  {
    Coding.pre = v;
    post = doc.Annotated.post.(v);
    level = doc.Annotated.level.(v);
  }

(* Accumulate postings for docs.(lo .. hi-1); tids are global, so a shard
   over a contiguous tid range accumulates exactly the subsequence of the
   sequential accumulation falling in that range.  The per-key dedups
   (filter: same tid; root-split: same (tid, root)) never straddle a shard
   boundary because both compare on the tid. *)
let build_shard ~scheme ~mss docs lo hi =
  let table = Hashtbl.create 65536 in
  let nodes = ref 0 in
  for tid = lo to hi - 1 do
    let doc = docs.(tid) in
    nodes := !nodes + Annotated.size doc;
    Extract.fold_instances doc ~mss ~init:() ~f:(fun () ~key ~nodes:inst ->
        let prev = Hashtbl.find_opt table key in
        let next =
          match scheme with
          | Coding.Filter -> (
              match prev with
              | Some (A_filter (t :: _)) when t = tid -> prev
              | Some (A_filter ts) -> Some (A_filter (tid :: ts))
              | _ -> Some (A_filter [ tid ]))
          | Coding.Root_split -> (
              let root = inst.(0) in
              let entry = (tid, interval_of doc root) in
              match prev with
              | Some (A_root (e :: _)) when e = entry -> prev
              | Some (A_root es) -> Some (A_root (entry :: es))
              | _ -> Some (A_root [ entry ]))
          | Coding.Interval -> (
              let ivs = Array.map (interval_of doc) inst in
              match prev with
              | Some (A_interval es) -> Some (A_interval ((tid, ivs) :: es))
              | _ -> Some (A_interval [ (tid, ivs) ]))
        in
        match next with
        | Some acc when next != prev -> Hashtbl.replace table key acc
        | _ -> ())
  done;
  { table; nodes = !nodes }

(* ---- merge stage ------------------------------------------------------- *)

(* Concatenate per-key accumulations in shard (= tid) order.  Lists are in
   reverse order, so later shards prepend: fold shards left to right,
   appending the earlier accumulation *behind* the later one.  The result
   is indistinguishable from a single-shard accumulation. *)
let merge_shards shards =
  match shards with
  | [] -> { table = Hashtbl.create 16; nodes = 0 }
  | first :: rest ->
      List.iter
        (fun shard ->
          Hashtbl.iter
            (fun key acc ->
              match Hashtbl.find_opt first.table key with
              | None -> Hashtbl.replace first.table key acc
              | Some prev ->
                  let merged =
                    match (prev, acc) with
                    | A_filter a, A_filter b -> A_filter (b @ a)
                    | A_interval a, A_interval b -> A_interval (b @ a)
                    | A_root a, A_root b -> A_root (b @ a)
                    | _ -> assert false
                  in
                  Hashtbl.replace first.table key merged)
            shard.table)
        rest;
      {
        table = first.table;
        nodes = List.fold_left (fun a s -> a + s.nodes) 0 shards;
      }

(* ---- finalize stage ---------------------------------------------------- *)

let posting_of_acc = function
  | A_filter ts -> Coding.Filter_p (Array.of_list (List.rev ts))
  | A_interval es -> Coding.Interval_p (Array.of_list (List.rev es))
  | A_root es -> Coding.Root_p (Array.of_list (List.rev es))

let slot_of_posting ?block_entries p =
  let buf = Buffer.create 64 in
  Coding.pack_v3 ?block_entries buf p;
  let src = Buffer.contents buf in
  {
    src;
    off = 0;
    len = String.length src;
    entries = Coding.entries p;
    enc = V3;
    decoded = Some p;
  }

let finalize ?block_entries ~scheme ~mss ~trees merged =
  let final = Hashtbl.create (Hashtbl.length merged.table) in
  let postings = ref 0 in
  let bytes = ref 0 in
  Hashtbl.iter
    (fun key acc ->
      let p = posting_of_acc acc in
      let slot = slot_of_posting ?block_entries p in
      postings := !postings + slot.entries;
      bytes :=
        !bytes + Varint.size (String.length key) + String.length key
        + Varint.size slot.len + slot.len;
      Hashtbl.replace final key slot)
    merged.table;
  {
    scheme;
    mss;
    table = final;
    stats =
      {
        trees;
        nodes = merged.nodes;
        keys = Hashtbl.length final;
        postings = !postings;
        bytes = !bytes;
      };
    origin = "<memory>";
    file_crc = None;
  }

let build ?(domains = 1) ?block_entries ~scheme ~mss docs =
  if mss < 1 || mss > 255 then invalid_arg "Builder.build: mss out of range";
  if domains < 1 then invalid_arg "Builder.build: domains must be >= 1";
  let n = Array.length docs in
  let domains = min domains (max n 1) in
  let merged =
    if domains = 1 then build_shard ~scheme ~mss docs 0 n
    else begin
      (* contiguous tid ranges, one per domain *)
      let bounds = Array.init (domains + 1) (fun i -> i * n / domains) in
      let spawned =
        Array.init (domains - 1) (fun i ->
            let lo = bounds.(i + 1) and hi = bounds.(i + 2) in
            Domain.spawn (fun () -> build_shard ~scheme ~mss docs lo hi))
      in
      let first = build_shard ~scheme ~mss docs bounds.(0) bounds.(1) in
      let rest = Array.to_list (Array.map Domain.join spawned) in
      merge_shards (first :: rest)
    end
  in
  finalize ?block_entries ~scheme ~mss ~trees:n merged

(* ---- access ------------------------------------------------------------ *)

(* Run a decoding thunk, mapping codec failures to [Corrupt] against the
   index's origin path. *)
let guard_decode (t : t) ~offset f =
  try f () with
  | Coding.Malformed { offset; what } ->
      Si_error.raise_corrupt ~path:t.origin ~offset what
  | Invalid_argument what ->
      Si_error.raise_corrupt ~path:t.origin ~offset ("malformed posting: " ^ what)

let decode_slot (t : t) key (slot : slot) =
  let finish = slot.off + slot.len in
  let p, consumed =
    guard_decode t ~offset:slot.off (fun () ->
        let key_size = Canonical.key_size key in
        match slot.enc with
        | V2 -> Coding.unpack t.scheme ~key_size ~limit:finish slot.src slot.off
        | V3 -> Coding.unpack_v3 t.scheme ~key_size ~limit:finish slot.src slot.off)
  in
  if consumed <> finish then
    Si_error.raise_corrupt ~path:t.origin ~offset:consumed
      "posting shorter than its recorded length";
  p

let find_exn (t : t) key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some slot -> (
      match slot.decoded with
      | Some p -> Some p
      | None ->
          let p = decode_slot t key slot in
          slot.decoded <- Some p;
          Some p)

(* ---- block access (the streaming read path) ----------------------------- *)

(* Layout of a slot as decodable blocks.  A V2 slot's body after the count
   varint is exactly a flat v3 block, so both encodings present uniformly
   to the cursor layer. *)
let slot_blocks (t : t) (slot : slot) =
  let finish = slot.off + slot.len in
  guard_decode t ~offset:slot.off (fun () ->
      match slot.enc with
      | V3 ->
          let count, blocks =
            Coding.v3_layout t.scheme ~limit:finish slot.src slot.off
          in
          if count <> slot.entries then
            Si_error.raise_corrupt ~path:t.origin ~offset:slot.off
              "posting entry count disagrees with the key directory";
          blocks
      | V2 ->
          let count, boff = Coding.checked_varint ~limit:finish slot.src slot.off in
          [|
            {
              Coding.first_tid = -1;
              boff;
              blen = finish - boff;
              bentries = count;
            };
          |])

let find_blocks (t : t) key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some slot -> Some (slot, slot_blocks t slot)

let decode_block (t : t) key (slot : slot) (b : Coding.block) =
  Failpoint.hit "builder.decode-block";
  guard_decode t ~offset:b.Coding.boff (fun () ->
      Coding.unpack_block t.scheme ~key_size:(Canonical.key_size key) slot.src b)

let find (t : t) key = Si_error.guard (fun () -> find_exn t key)

let posting_entries (t : t) key =
  Option.map (fun (s : slot) -> s.entries) (Hashtbl.find_opt t.table key)

let n_keys (t : t) = Hashtbl.length t.table

let iter (t : t) f =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  List.iter
    (fun k -> f k (Option.get (find_exn t k)))
    (List.sort String.compare keys)

let length_histogram (t : t) =
  (* power-of-two buckets: count of keys whose posting has <= 2^i entries *)
  let buckets = Array.make 31 0 in
  Hashtbl.iter
    (fun _ (slot : slot) ->
      let rec bucket i = if slot.entries <= 1 lsl i then i else bucket (i + 1) in
      let b = bucket 0 in
      buckets.(b) <- buckets.(b) + 1)
    t.table;
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) buckets;
  Array.to_list (Array.init (!last + 1) (fun i -> (1 lsl i, buckets.(i))))

let block_histogram (t : t) =
  (* nblocks -> number of keys; parses container headers only *)
  let counts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ slot ->
      let n = Array.length (slot_blocks t slot) in
      Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
    t.table;
  List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts [])

(* ---- flattened file ---------------------------------------------------- *)

(* SIDX3 layout (integrity-checked, see DESIGN.md):

     header    "SIDX3\n"  scheme byte (F|I|R)  mss byte          (8 bytes)
     keydir    varint nkeys, then per key in sorted order:
                 varint lcp, varint slen, suffix bytes, varint plen
     postings  the v3 block containers ({!Coding.pack_v3}), concatenated in
               key order (offsets implied by the cumulative plen)
     footer    u64le keydir_len | u64le postings_len
               u32le crc32(header) | u32le crc32(keydir) | u32le crc32(postings)
               "SI2F"                                            (32 bytes)

   SIDX2 is the same container with flat posting bodies ({!Coding.pack});
   only the header magic and the posting codec differ, so one reader
   handles both.  [save] writes to [path ^ ".tmp"], fsyncs, then renames —
   a crash mid-save never clobbers an existing index.  [load] verifies
   magic, region lengths and all three checksums before parsing a single
   record. *)

let magic_v3 = "SIDX3\n"
let magic = "SIDX2\n"
let magic_v1 = "SIDX1\n"
let header_len = 8
let footer_magic = "SI2F"
let footer_len = 32

let scheme_byte = function
  | Coding.Filter -> 'F'
  | Coding.Interval -> 'I'
  | Coding.Root_split -> 'R'

let scheme_of_byte path = function
  | 'F' -> Coding.Filter
  | 'I' -> Coding.Interval
  | 'R' -> Coding.Root_split
  | c ->
      Si_error.raise_corrupt ~path ~offset:(String.length magic)
        (Printf.sprintf "bad scheme byte %C (want F, I or R)" c)

let sorted_keys (t : t) =
  List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) t.table [])

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

(* Write-to-temporary, fsync, rename.  [f] streams the payload; on any
   [Sys_error] the temporary is removed and the previous file at [path] is
   left untouched.  The four failpoints bracket each state transition of
   the crash-atomicity protocol — the recovery harness kills the process
   at every one of them and asserts a pre-existing index stays loadable. *)
let with_atomic_out path f =
  let tmp = path ^ ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Failpoint.hit "builder.save.tmp-open";
    let oc = open_out_bin tmp in
    let ok = ref false in
    Fun.protect
      ~finally:(fun () ->
        close_out_noerr oc;
        if not !ok then cleanup ())
      (fun () ->
        f oc;
        Failpoint.hit "builder.save.write";
        flush oc;
        Failpoint.hit "builder.save.fsync";
        Unix.fsync (Unix.descr_of_out_channel oc);
        ok := true);
    Failpoint.hit "builder.save.rename";
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error what ->
      cleanup ();
      Error (Si_error.Io { path; what })

(* Re-encode [slot]'s posting in the [want] container; [None] = the slot's
   own bytes already are that encoding and can be streamed as-is. *)
let converted ~want (t : t) key (slot : slot) =
  if slot.enc = want then None
  else begin
    let p =
      match slot.decoded with Some p -> p | None -> decode_slot t key slot
    in
    let buf = Buffer.create (slot.len + 16) in
    (match want with V2 -> Coding.pack buf p | V3 -> Coding.pack_v3 buf p);
    Some (Buffer.contents buf)
  end

(* Streams records straight to the channel through a small per-record
   scratch buffer — peak extra memory is one record, not the whole index
   (plus the re-encoded postings when saving across container versions). *)
let save_as ~magic ~want (t : t) path =
  with_atomic_out path (fun oc ->
      let keys = sorted_keys t in
      (* cross-version saves need each posting's final length already in the
         key directory pass, so conversions are computed once and kept *)
      let conv = Hashtbl.create 16 in
      let bytes_of key (slot : slot) =
        match Hashtbl.find_opt conv key with
        | Some s -> (s, 0, String.length s)
        | None -> (
            match converted ~want t key slot with
            | None -> (slot.src, slot.off, slot.len)
            | Some s ->
                Hashtbl.replace conv key s;
                (s, 0, String.length s))
      in
      let header =
        Printf.sprintf "%s%c%c" magic (scheme_byte t.scheme) (Char.chr t.mss)
      in
      output_string oc header;
      (* key directory *)
      let scratch = Buffer.create 256 in
      let crc_keydir = ref Crc32.empty in
      let keydir_len = ref 0 in
      let emit () =
        let s = Buffer.contents scratch in
        output_string oc s;
        crc_keydir := Crc32.feed_string !crc_keydir s;
        keydir_len := !keydir_len + String.length s;
        Buffer.clear scratch
      in
      Varint.write scratch (Hashtbl.length t.table);
      emit ();
      let prev = ref "" in
      List.iter
        (fun key ->
          let slot = Hashtbl.find t.table key in
          let _, _, plen = bytes_of key slot in
          (* front-coded key: shared prefix with the previous sorted key *)
          let lcp = common_prefix !prev key in
          Varint.write scratch lcp;
          Varint.write scratch (String.length key - lcp);
          Buffer.add_substring scratch key lcp (String.length key - lcp);
          Varint.write scratch plen;
          emit ();
          prev := key)
        keys;
      (* postings region *)
      let crc_postings = ref Crc32.empty in
      let postings_len = ref 0 in
      List.iter
        (fun key ->
          let slot = Hashtbl.find t.table key in
          let src, off, plen = bytes_of key slot in
          output_substring oc src off plen;
          crc_postings := Crc32.feed_substring !crc_postings src off plen;
          postings_len := !postings_len + plen)
        keys;
      (* footer *)
      Buffer.add_int64_le scratch (Int64.of_int !keydir_len);
      Buffer.add_int64_le scratch (Int64.of_int !postings_len);
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.string header));
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.value !crc_keydir));
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.value !crc_postings));
      Buffer.add_string scratch footer_magic;
      Buffer.output_buffer oc scratch)

let save (t : t) path = save_as ~magic:magic_v3 ~want:V3 t path
let save_v2 (t : t) path = save_as ~magic ~want:V2 t path

let save_v1 (t : t) path =
  with_atomic_out path (fun oc ->
      output_string oc magic_v1;
      output_char oc (scheme_byte t.scheme);
      output_char oc (Char.chr t.mss);
      let scratch = Buffer.create 256 in
      Varint.write scratch (Hashtbl.length t.table);
      Buffer.output_buffer oc scratch;
      List.iter
        (fun key ->
          Buffer.clear scratch;
          Varint.write scratch (String.length key);
          Buffer.add_string scratch key;
          Coding.write scratch (Option.get (find_exn t key));
          Buffer.output_buffer oc scratch)
        (sorted_keys t))

let read_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* armed [short:N] simulates a torn read; the checksummed loaders must
     reject the result as Corrupt, never crash or mis-parse *)
  Failpoint.read_transform "builder.load.read" s

(* A key must begin with a root label varint followed by the root size byte
   (= node count, in [1, mss]) — validated before [Canonical.key_size] or
   the posting decoder ever consume it. *)
let checked_key_size path ~offset ~mss key =
  let corrupt what = Si_error.raise_corrupt ~path ~offset what in
  match Varint.read key 0 with
  | exception Invalid_argument _ -> corrupt "malformed key (bad root label varint)"
  | _, o ->
      if o >= String.length key then corrupt "malformed key (missing root size byte)";
      let ks = Char.code key.[o] in
      if ks < 1 || ks > mss then
        corrupt (Printf.sprintf "key size %d outside 1..mss=%d" ks mss);
      ks

let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

let u64_at path s off =
  match Int64.unsigned_to_int (String.get_int64_le s off) with
  | Some v -> v
  | None -> Si_error.raise_corrupt ~path ~offset:off "region length out of range"

(* SIDX2/SIDX3 load: verify footer magic, region lengths and checksums over
   the whole byte string, then one bounds-checked pass over the key
   directory building key -> (offset, length) slots; postings decode on
   first [find] (or block by block through the cursors). *)
let load_packed ~enc path s =
  let len = String.length s in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len + footer_len then
    corrupt len
      (Printf.sprintf "truncated: %d bytes cannot hold the header and footer" len);
  if not (String.equal (String.sub s (len - 4) 4) footer_magic) then
    corrupt (len - 4) "missing footer magic (truncated file or pre-checksum SIDX2)";
  let keydir_len = u64_at path s (len - 32) in
  let postings_len = u64_at path s (len - 24) in
  if keydir_len > len || postings_len > len
     || header_len + keydir_len + postings_len + footer_len <> len
  then
    corrupt (len - 32)
      (Printf.sprintf
         "recorded region lengths (%d-byte key directory + %d-byte postings) \
          disagree with the %d-byte file"
         keydir_len postings_len len);
  if Crc32.substring s 0 header_len <> u32_at s (len - 16) then
    corrupt 0 "header checksum mismatch";
  let kd_start = header_len in
  let p_start = kd_start + keydir_len in
  if Crc32.substring s kd_start keydir_len <> u32_at s (len - 12) then
    corrupt kd_start "key directory checksum mismatch";
  if Crc32.substring s p_start postings_len <> u32_at s (len - 8) then
    corrupt p_start "postings checksum mismatch";
  let scheme = scheme_of_byte path s.[6] in
  let mss = Char.code s.[7] in
  if mss < 1 then corrupt 7 "mss byte must be >= 1";
  (* key directory: every varint bounded by the region end, keys strictly
     sorted, posting lengths tiling the postings region exactly *)
  let kd_end = p_start in
  let vread off = Coding.checked_varint ~limit:kd_end s off in
  let nkeys, off0 = vread kd_start in
  if nkeys > keydir_len then corrupt kd_start "key count exceeds key directory size";
  let table = Hashtbl.create (2 * (nkeys + 1)) in
  let postings = ref 0 in
  let off = ref off0 in
  let post_off = ref 0 in
  let prev = ref "" in
  for _ = 1 to nkeys do
    let rec_start = !off in
    let lcp, o = vread !off in
    let slen, o = vread o in
    if lcp > String.length !prev then
      corrupt rec_start "front-coded prefix longer than the previous key";
    if slen > kd_end - o then corrupt rec_start "key suffix overruns the key directory";
    let key = String.sub !prev 0 lcp ^ String.sub s o slen in
    let o = o + slen in
    if String.compare key !prev <= 0 then
      corrupt rec_start "keys not in strictly increasing order";
    ignore (checked_key_size path ~offset:rec_start ~mss key);
    let plen, o = vread o in
    if plen < 1 then corrupt rec_start "zero-length posting";
    if plen > postings_len - !post_off then
      corrupt rec_start "posting overruns the postings region";
    let slot_off = p_start + !post_off in
    let entries =
      match enc with
      | V2 -> Coding.packed_entries ~limit:(slot_off + plen) s slot_off
      | V3 -> Coding.packed_entries_v3 ~limit:(slot_off + plen) s slot_off
    in
    postings := !postings + entries;
    Hashtbl.replace table key
      { src = s; off = slot_off; len = plen; entries; enc; decoded = None };
    post_off := !post_off + plen;
    off := o;
    prev := key
  done;
  if !off <> kd_end then corrupt !off "trailing bytes in the key directory";
  if !post_off <> postings_len then
    corrupt p_start "posting lengths do not cover the postings region";
  {
    scheme;
    mss;
    table;
    stats =
      { trees = 0; nodes = 0; keys = nkeys; postings = !postings; bytes = len };
    origin = path;
    file_crc = Some (Crc32.string s);
  }

(* SIDX1 load: the legacy format stores postings eagerly and carries no
   checksum (detection is structural only); decode each posting defensively
   and re-pack so the in-memory representation is uniformly SIDX2. *)
let load_v1 path s =
  let len = String.length s in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len then corrupt len "truncated header";
  let scheme = scheme_of_byte path s.[6] in
  let mss = Char.code s.[7] in
  if mss < 1 then corrupt 7 "mss byte must be >= 1";
  let vread off = Coding.checked_varint ~limit:len s off in
  let nkeys, off0 = vread 8 in
  if nkeys > len then corrupt 8 "key count exceeds file size";
  let table = Hashtbl.create (2 * (nkeys + 1)) in
  let off = ref off0 in
  let postings = ref 0 in
  let bytes = ref 0 in
  let prev = ref "" in
  for _ = 1 to nkeys do
    let rec_start = !off in
    let klen, o = vread !off in
    if klen > len - o then corrupt rec_start "key overruns the file";
    let key = String.sub s o klen in
    if String.compare key !prev <= 0 then
      corrupt rec_start "keys not in strictly increasing order";
    let key_size = checked_key_size path ~offset:rec_start ~mss key in
    let posting, o = Coding.read scheme ~key_size ~limit:len s (o + klen) in
    off := o;
    prev := key;
    let slot = slot_of_posting posting in
    postings := !postings + slot.entries;
    bytes := !bytes + Varint.size klen + klen + Varint.size slot.len + slot.len;
    Hashtbl.replace table key slot
  done;
  if !off <> len then corrupt !off "trailing bytes after the last posting";
  {
    scheme;
    mss;
    table;
    stats = { trees = 0; nodes = 0; keys = nkeys; postings = !postings; bytes = !bytes };
    origin = path;
    file_crc = Some (Crc32.string s);
  }

let is_prefix s m = String.length s < String.length m && String.equal s (String.sub m 0 (String.length s))

let load path =
  match read_file path with
  | exception Sys_error what -> Error (Si_error.Io { path; what })
  | s -> (
      let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
      let mlen = String.length magic in
      match
        let len = String.length s in
        let has m = len >= mlen && String.equal (String.sub s 0 mlen) m in
        if len = 0 then corrupt 0 "empty file"
        else if has magic_v3 then load_packed ~enc:V3 path s
        else if has magic then load_packed ~enc:V2 path s
        else if has magic_v1 then load_v1 path s
        else if is_prefix s magic_v3 || is_prefix s magic || is_prefix s magic_v1
        then
          corrupt 0
            (Printf.sprintf "truncated header: %d bytes, shorter than the magic" len)
        else corrupt 0 "not an si index file (bad magic; want SIDX1, SIDX2 or SIDX3)"
      with
      | t -> Ok t
      | exception Si_error.Error e -> Error e
      | exception Coding.Malformed { offset; what } ->
          Error (Si_error.Corrupt { path; offset; what })
      (* safety net: no decoding slip may escape as a crash *)
      | exception Invalid_argument what ->
          Error (Si_error.Corrupt { path; offset = 0; what = "malformed: " ^ what })
      | exception Failure what ->
          Error (Si_error.Corrupt { path; offset = 0; what }))
