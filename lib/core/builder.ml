open Si_treebank
open Si_subtree

type stats = { trees : int; nodes : int; keys : int; postings : int; bytes : int }

(* Which container encoding the slot's bytes use: [V3] is the block-skip
   container (built indexes and SIDX3 files), [V2] the flat SIDX2 body
   (kept decodable so old files load without a rebuild), [V4] the SIDX4
   interval container whose entries are (tid, pre) names resolved against
   the corpus store at decode time. *)
type enc = V2 | V3 | V4

(* A slot holds the packed bytes of one posting — a slice of [src] — and
   memoizes its decoded form on first access.  [src] is either a
   per-posting string (after build), the whole index file (after an
   SIDX1-3 load), or the mapped SIDX4 file, so loading shares one backing
   buffer across every slot. *)
type slot = {
  src : Coding.src;
  off : int;
  len : int;
  entries : int;
  enc : enc;
  mutable decoded : Coding.posting option;
}

(* The mapped SIDX4 backend: regions of one read-only mapping consumed in
   place.  [find] binary-searches the key index over the mapped bytes —
   no load-time table is ever built ([table] stays empty).  Region CRCs
   are verified lazily and memoized: the key index + directory pair on the
   first [find], the postings on the first decode.  The flags only ever
   flip to [true] and verification is idempotent, so cross-domain races
   are benign. *)
type mapped = {
  map : Coding.bigstring;
  msrc : Coding.src;
  m_nkeys : int;
  kblock : int;  (* keys per key-directory block *)
  kindex_off : int;
  kindex_len : int;
  keydir_off : int;
  keydir_len : int;
  post_off : int;
  post_len : int;
  crc_kindex : int;
  crc_keydir : int;
  crc_postings : int;
  mutable dir_verified : bool;
  mutable post_verified : bool;
  mutable resolve : (int -> int -> Coding.interval) option;
      (* (tid, pre) -> interval against the corpus store; attached by
         [Si.open_] once the [.trees] sibling is mapped *)
}

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, slot) Hashtbl.t;
  stats : stats;
  origin : string;
  file_crc : int option;
  mapped : mapped option;
}

(* ---- shard stage ------------------------------------------------------- *)

(* accumulation state per key, in reverse order *)
type acc =
  | A_filter of int list
  | A_interval of (int * Coding.interval array) list
  | A_root of (int * Coding.interval) list

type shard = { table : (string, acc) Hashtbl.t; nodes : int }

let interval_of doc v =
  {
    Coding.pre = v;
    post = doc.Annotated.post.(v);
    level = doc.Annotated.level.(v);
  }

(* Accumulate postings for docs.(lo .. hi-1); tids are global, so a shard
   over a contiguous tid range accumulates exactly the subsequence of the
   sequential accumulation falling in that range.  The per-key dedups
   (filter: same tid; root-split: same (tid, root)) never straddle a shard
   boundary because both compare on the tid. *)
let build_shard ?label_id ~scheme ~mss docs lo hi =
  let table = Hashtbl.create 65536 in
  let nodes = ref 0 in
  for tid = lo to hi - 1 do
    let doc = docs.(tid) in
    nodes := !nodes + Annotated.size doc;
    Extract.fold_instances ?label_id doc ~mss ~init:() ~f:(fun () ~key ~nodes:inst ->
        let prev = Hashtbl.find_opt table key in
        let next =
          match scheme with
          | Coding.Filter -> (
              match prev with
              | Some (A_filter (t :: _)) when t = tid -> prev
              | Some (A_filter ts) -> Some (A_filter (tid :: ts))
              | _ -> Some (A_filter [ tid ]))
          | Coding.Root_split -> (
              let root = inst.(0) in
              let entry = (tid, interval_of doc root) in
              match prev with
              | Some (A_root (e :: _)) when e = entry -> prev
              | Some (A_root es) -> Some (A_root (entry :: es))
              | _ -> Some (A_root [ entry ]))
          | Coding.Interval -> (
              let ivs = Array.map (interval_of doc) inst in
              match prev with
              | Some (A_interval es) -> Some (A_interval ((tid, ivs) :: es))
              | _ -> Some (A_interval [ (tid, ivs) ]))
        in
        match next with
        | Some acc when next != prev -> Hashtbl.replace table key acc
        | _ -> ())
  done;
  { table; nodes = !nodes }

(* ---- merge stage ------------------------------------------------------- *)

(* Concatenate per-key accumulations in shard (= tid) order.  Lists are in
   reverse order, so later shards prepend: fold shards left to right,
   appending the earlier accumulation *behind* the later one.  The result
   is indistinguishable from a single-shard accumulation. *)
let merge_shards shards =
  match shards with
  | [] -> { table = Hashtbl.create 16; nodes = 0 }
  | first :: rest ->
      List.iter
        (fun shard ->
          Hashtbl.iter
            (fun key acc ->
              match Hashtbl.find_opt first.table key with
              | None -> Hashtbl.replace first.table key acc
              | Some prev ->
                  let merged =
                    match (prev, acc) with
                    | A_filter a, A_filter b -> A_filter (b @ a)
                    | A_interval a, A_interval b -> A_interval (b @ a)
                    | A_root a, A_root b -> A_root (b @ a)
                    | _ -> assert false
                  in
                  Hashtbl.replace first.table key merged)
            shard.table)
        rest;
      {
        table = first.table;
        nodes = List.fold_left (fun a s -> a + s.nodes) 0 shards;
      }

(* ---- finalize stage ---------------------------------------------------- *)

let posting_of_acc = function
  | A_filter ts -> Coding.Filter_p (Array.of_list (List.rev ts))
  | A_interval es -> Coding.Interval_p (Array.of_list (List.rev es))
  | A_root es -> Coding.Root_p (Array.of_list (List.rev es))

let slot_of_posting ?block_entries p =
  let buf = Buffer.create 64 in
  Coding.pack_v3 ?block_entries buf p;
  let src = Buffer.contents buf in
  {
    src = Coding.str src;
    off = 0;
    len = String.length src;
    entries = Coding.entries p;
    enc = V3;
    decoded = Some p;
  }

let finalize ?block_entries ~scheme ~mss ~trees merged =
  let final = Hashtbl.create (Hashtbl.length merged.table) in
  let postings = ref 0 in
  let bytes = ref 0 in
  Hashtbl.iter
    (fun key acc ->
      let p = posting_of_acc acc in
      let slot = slot_of_posting ?block_entries p in
      postings := !postings + slot.entries;
      bytes :=
        !bytes + Varint.size (String.length key) + String.length key
        + Varint.size slot.len + slot.len;
      Hashtbl.replace final key slot)
    merged.table;
  {
    scheme;
    mss;
    table = final;
    stats =
      {
        trees;
        nodes = merged.nodes;
        keys = Hashtbl.length final;
        postings = !postings;
        bytes = !bytes;
      };
    origin = "<memory>";
    file_crc = None;
    mapped = None;
  }

let build ?(domains = 1) ?block_entries ?label_id ~scheme ~mss docs =
  if mss < 1 || mss > 255 then invalid_arg "Builder.build: mss out of range";
  if domains < 1 then invalid_arg "Builder.build: domains must be >= 1";
  let n = Array.length docs in
  let domains = min domains (max n 1) in
  let merged =
    if domains = 1 then build_shard ?label_id ~scheme ~mss docs 0 n
    else begin
      (* contiguous tid ranges, one per domain *)
      let bounds = Array.init (domains + 1) (fun i -> i * n / domains) in
      let spawned =
        Array.init (domains - 1) (fun i ->
            let lo = bounds.(i + 1) and hi = bounds.(i + 2) in
            Domain.spawn (fun () -> build_shard ?label_id ~scheme ~mss docs lo hi))
      in
      let first = build_shard ?label_id ~scheme ~mss docs bounds.(0) bounds.(1) in
      let rest = Array.to_list (Array.map Domain.join spawned) in
      merge_shards (first :: rest)
    end
  in
  finalize ?block_entries ~scheme ~mss ~trees:n merged

(* ---- format constants --------------------------------------------------- *)

let magic_v4 = "SIDX4\n"
let magic_v3 = "SIDX3\n"
let magic = "SIDX2\n"
let magic_v1 = "SIDX1\n"
let header_len = 8
let footer_magic = "SI2F"
let footer_len = 32
let footer_magic_v4 = "SI4F"
let footer_len_v4 = 72
let default_key_block = 64

let scheme_byte = function
  | Coding.Filter -> 'F'
  | Coding.Interval -> 'I'
  | Coding.Root_split -> 'R'

let scheme_of_byte path = function
  | 'F' -> Coding.Filter
  | 'I' -> Coding.Interval
  | 'R' -> Coding.Root_split
  | c ->
      Si_error.raise_corrupt ~path ~offset:(String.length magic)
        (Printf.sprintf "bad scheme byte %C (want F, I or R)" c)

(* A key must begin with a root label varint followed by the root size byte
   (= node count, in [1, mss]) — validated before [Canonical.key_size] or
   the posting decoder ever consume it. *)
let checked_key_size path ~offset ~mss key =
  let corrupt what = Si_error.raise_corrupt ~path ~offset what in
  match Varint.read key 0 with
  | exception Invalid_argument _ -> corrupt "malformed key (bad root label varint)"
  | _, o ->
      if o >= String.length key then corrupt "malformed key (missing root size byte)";
      let ks = Char.code key.[o] in
      if ks < 1 || ks > mss then
        corrupt (Printf.sprintf "key size %d outside 1..mss=%d" ks mss);
      ks

(* ---- access ------------------------------------------------------------ *)

(* Run a decoding thunk, mapping codec failures to [Corrupt] against the
   index's origin path. *)
let guard_decode (t : t) ~offset f =
  try f () with
  | Coding.Malformed { offset; what } ->
      Si_error.raise_corrupt ~path:t.origin ~offset what
  | Invalid_argument what ->
      Si_error.raise_corrupt ~path:t.origin ~offset ("malformed posting: " ^ what)

let resolve_exn (t : t) =
  match t.mapped with
  | Some { resolve = Some r; _ } -> r
  | _ ->
      Si_error.raise_schema ~path:t.origin
        "SIDX4 interval postings need a corpus store to resolve intervals \
         (open the index through Si, not Builder.load alone)"

(* Lazy region verification.  The 72-byte footer and 8-byte header were
   checked at open; the three body regions are vouched for on first
   touch — directory regions before the first key lookup, postings before
   the first decode. *)
let ensure_dir_verified (t : t) (m : mapped) =
  if not m.dir_verified then begin
    if Crc32.bigsub m.map m.kindex_off m.kindex_len <> m.crc_kindex then
      Si_error.raise_corrupt ~path:t.origin ~offset:m.kindex_off
        "key index checksum mismatch";
    if Crc32.bigsub m.map m.keydir_off m.keydir_len <> m.crc_keydir then
      Si_error.raise_corrupt ~path:t.origin ~offset:m.keydir_off
        "key directory checksum mismatch";
    m.dir_verified <- true
  end

let ensure_post_verified (t : t) (m : mapped) =
  if not m.post_verified then begin
    if Crc32.bigsub m.map m.post_off m.post_len <> m.crc_postings then
      Si_error.raise_corrupt ~path:t.origin ~offset:m.post_off
        "postings checksum mismatch";
    m.post_verified <- true
  end

let ensure_postings_readable (t : t) (slot : slot) =
  match (slot.src, t.mapped) with
  | Coding.Map _, Some m -> ensure_post_verified t m
  | _ -> ()

let mapped_enc (t : t) = if t.scheme = Coding.Interval then V4 else V3

(* kindex entry of key-block [b]: offsets of its first key record (relative
   to the key directory) and first posting (relative to the postings
   region). *)
let mapped_block_start (t : t) (m : mapped) b =
  let at = m.kindex_off + (16 * b) in
  let koff = Mmap.u64 ~path:t.origin m.map at in
  let poff = Mmap.u64 ~path:t.origin m.map (at + 8) in
  if koff >= m.keydir_len then
    Si_error.raise_corrupt ~path:t.origin ~offset:at
      "key-block offset outside the key directory";
  if poff > m.post_len then
    Si_error.raise_corrupt ~path:t.origin ~offset:(at + 8)
      "key-block posting offset outside the postings region";
  (koff, poff)

(* One key-directory record at [off]: block-first records store the whole
   key, the rest front-code against the previous key in the block. *)
let mapped_record (t : t) (m : mapped) ~first ~prev off =
  let limit = m.keydir_off + m.keydir_len in
  let corrupt what = Si_error.raise_corrupt ~path:t.origin ~offset:off what in
  let vread o = Coding.checked_varint ~limit m.msrc o in
  let lcp, o = if first then (0, off) else vread off in
  let slen, o = vread o in
  if lcp > String.length prev then
    corrupt "front-coded prefix longer than the previous key";
  if slen > limit - o then corrupt "key suffix overruns the key directory";
  let key =
    if lcp = 0 then Coding.src_sub m.msrc o slen
    else String.sub prev 0 lcp ^ Coding.src_sub m.msrc o slen
  in
  let o = o + slen in
  let entries, o = vread o in
  let plen, o = vread o in
  if plen < 1 then corrupt "zero-length posting";
  (key, entries, plen, o)

(* first key of key-block [b] — stored without front coding *)
let mapped_first_key (t : t) (m : mapped) b =
  let koff, _ = mapped_block_start t m b in
  let limit = m.keydir_off + m.keydir_len in
  let off = m.keydir_off + koff in
  let slen, o = Coding.checked_varint ~limit m.msrc off in
  if slen > limit - o then
    Si_error.raise_corrupt ~path:t.origin ~offset:off
      "key suffix overruns the key directory";
  Coding.src_sub m.msrc o slen

(* O(log nblocks) probes + one in-block front-coded scan; never touches the
   postings region, so a miss stays inside the directory pages. *)
let mapped_find_slot (t : t) (m : mapped) key =
  if m.m_nkeys = 0 then None
  else begin
    ensure_dir_verified t m;
    guard_decode t ~offset:m.keydir_off (fun () ->
        let nblocks = (m.m_nkeys + m.kblock - 1) / m.kblock in
        if String.compare (mapped_first_key t m 0) key > 0 then None
        else begin
          (* greatest block whose first key <= key *)
          let lo = ref 0 and hi = ref (nblocks - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi + 1) lsr 1 in
            if String.compare (mapped_first_key t m mid) key <= 0 then lo := mid
            else hi := mid - 1
          done;
          let b = !lo in
          let koff, poff = mapped_block_start t m b in
          let nrec = min m.kblock (m.m_nkeys - (b * m.kblock)) in
          let off = ref (m.keydir_off + koff) in
          let post = ref poff in
          let prev = ref "" in
          let result = ref None in
          (try
             for i = 0 to nrec - 1 do
               let k, entries, plen, o =
                 mapped_record t m ~first:(i = 0) ~prev:!prev !off
               in
               if i > 0 && String.compare k !prev <= 0 then
                 Si_error.raise_corrupt ~path:t.origin ~offset:!off
                   "keys not in strictly increasing order";
               if plen > m.post_len - !post then
                 Si_error.raise_corrupt ~path:t.origin ~offset:!off
                   "posting overruns the postings region";
               let c = String.compare k key in
               if c = 0 then begin
                 result :=
                   Some
                     {
                       src = m.msrc;
                       off = m.post_off + !post;
                       len = plen;
                       entries;
                       enc = mapped_enc t;
                       decoded = None;
                     };
                 raise Exit
               end
               else if c > 0 then raise Exit;
               post := !post + plen;
               prev := k;
               off := o
             done
           with Exit -> ());
          !result
        end)
  end

(* Sequential sorted walk of every mapped key record, cross-checking the
   key index at each block boundary and the region tilings at the end —
   the moral equivalent of the SIDX3 load-time pass, run only by the
   tools/save paths that genuinely need every key. *)
let mapped_iter_slots (t : t) (m : mapped) f =
  ensure_dir_verified t m;
  guard_decode t ~offset:m.keydir_off (fun () ->
      let corrupt offset what = Si_error.raise_corrupt ~path:t.origin ~offset what in
      let enc = mapped_enc t in
      let off = ref m.keydir_off in
      let post = ref 0 in
      let prev = ref "" in
      for i = 0 to m.m_nkeys - 1 do
        let first = i mod m.kblock = 0 in
        if first then begin
          let koff, poff = mapped_block_start t m (i / m.kblock) in
          if koff <> !off - m.keydir_off || poff <> !post then
            corrupt !off "key index disagrees with the key directory records"
        end;
        let k, entries, plen, o = mapped_record t m ~first ~prev:!prev !off in
        if i > 0 && String.compare k !prev <= 0 then
          corrupt !off "keys not in strictly increasing order";
        ignore (checked_key_size t.origin ~offset:!off ~mss:t.mss k);
        if plen > m.post_len - !post then
          corrupt !off "posting overruns the postings region";
        f k
          {
            src = m.msrc;
            off = m.post_off + !post;
            len = plen;
            entries;
            enc;
            decoded = None;
          };
        post := !post + plen;
        prev := k;
        off := o
      done;
      if !off <> m.keydir_off + m.keydir_len then
        corrupt !off "trailing bytes in the key directory";
      if !post <> m.post_len then
        corrupt m.post_off "posting lengths do not cover the postings region")

let find_slot (t : t) key =
  match t.mapped with
  | None -> Hashtbl.find_opt t.table key
  | Some m -> mapped_find_slot t m key

(* Decode a slot's bytes without the lazy whole-region CRC gate: the
   normal read path runs it behind {!ensure_postings_readable}; the scrub
   runs it bare to localize damage inside a region whose CRC already
   failed (every decode is fully defensive, so hostile bytes surface as
   [Corrupt], never a crash). *)
let decode_slot_unchecked (t : t) key (slot : slot) =
  let finish = slot.off + slot.len in
  let p, consumed =
    guard_decode t ~offset:slot.off (fun () ->
        let key_size = Canonical.key_size key in
        match slot.enc with
        | V2 -> Coding.unpack t.scheme ~key_size ~limit:finish slot.src slot.off
        | V3 -> Coding.unpack_v3 t.scheme ~key_size ~limit:finish slot.src slot.off
        | V4 ->
            Coding.unpack_v4 ~key_size ~resolve:(resolve_exn t) ~limit:finish
              slot.src slot.off)
  in
  if consumed <> finish then
    Si_error.raise_corrupt ~path:t.origin ~offset:consumed
      "posting shorter than its recorded length";
  p

let decode_slot (t : t) key (slot : slot) =
  ensure_postings_readable t slot;
  decode_slot_unchecked t key slot

let find_exn (t : t) key =
  match find_slot t key with
  | None -> None
  | Some slot -> (
      match slot.decoded with
      | Some p -> Some p
      | None ->
          let p = decode_slot t key slot in
          slot.decoded <- Some p;
          Some p)

(* ---- block access (the streaming read path) ----------------------------- *)

(* Layout of a slot as decodable blocks.  A V2 slot's body after the count
   varint is exactly a flat v3 block, and the v4 container reuses the v3
   framing, so all encodings present uniformly to the cursor layer. *)
let slot_blocks (t : t) (slot : slot) =
  ensure_postings_readable t slot;
  let finish = slot.off + slot.len in
  guard_decode t ~offset:slot.off (fun () ->
      match slot.enc with
      | V3 | V4 ->
          let count, blocks =
            Coding.v3_layout t.scheme ~limit:finish slot.src slot.off
          in
          if count <> slot.entries then
            Si_error.raise_corrupt ~path:t.origin ~offset:slot.off
              "posting entry count disagrees with the key directory";
          blocks
      | V2 ->
          let count, boff = Coding.checked_varint ~limit:finish slot.src slot.off in
          [|
            {
              Coding.first_tid = -1;
              boff;
              blen = finish - boff;
              bentries = count;
            };
          |])

let find_blocks (t : t) key =
  match find_slot t key with
  | None -> None
  | Some slot -> Some (slot, slot_blocks t slot)

let decode_block (t : t) key (slot : slot) (b : Coding.block) =
  Failpoint.hit "builder.decode-block";
  ensure_postings_readable t slot;
  guard_decode t ~offset:b.Coding.boff (fun () ->
      let key_size = Canonical.key_size key in
      match slot.enc with
      | V4 -> Coding.unpack_block_v4 ~key_size ~resolve:(resolve_exn t) slot.src b
      | V2 | V3 -> Coding.unpack_block t.scheme ~key_size slot.src b)

let find (t : t) key = Si_error.guard (fun () -> find_exn t key)

let posting_entries (t : t) key =
  Option.map (fun (s : slot) -> s.entries) (find_slot t key)

let n_keys (t : t) =
  match t.mapped with None -> Hashtbl.length t.table | Some m -> m.m_nkeys

(* Every (key, slot) pair in sorted key order — the backbone of the tools
   and save paths.  Heap indexes sort their table; mapped ones walk the
   key directory (already sorted, fully cross-checked). *)
let slots_sorted (t : t) =
  match t.mapped with
  | None ->
      List.map
        (fun k -> (k, Hashtbl.find t.table k))
        (List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) t.table []))
  | Some m ->
      let acc = ref [] in
      mapped_iter_slots t m (fun k s -> acc := (k, s) :: !acc);
      List.rev !acc

let sorted_keys (t : t) = List.map fst (slots_sorted t)

let iter (t : t) f =
  List.iter
    (fun (k, (s : slot)) ->
      let p = match s.decoded with Some p -> p | None -> decode_slot t k s in
      f k p)
    (slots_sorted t)

let length_histogram (t : t) =
  (* power-of-two buckets: count of keys whose posting has <= 2^i entries *)
  let buckets = Array.make 31 0 in
  List.iter
    (fun (_, (slot : slot)) ->
      let rec bucket i = if slot.entries <= 1 lsl i then i else bucket (i + 1) in
      let b = bucket 0 in
      buckets.(b) <- buckets.(b) + 1)
    (slots_sorted t);
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) buckets;
  Array.to_list (Array.init (!last + 1) (fun i -> (1 lsl i, buckets.(i))))

let block_histogram (t : t) =
  (* nblocks -> number of keys; parses container headers only *)
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, slot) ->
      let n = Array.length (slot_blocks t slot) in
      Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
    (slots_sorted t);
  List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts [])

(* ---- delta merge ------------------------------------------------------- *)

let shift_posting base = function
  | Coding.Filter_p ts -> Coding.Filter_p (Array.map (fun t -> t + base) ts)
  | Coding.Interval_p es ->
      Coding.Interval_p (Array.map (fun (t, ivs) -> (t + base, ivs)) es)
  | Coding.Root_p es -> Coding.Root_p (Array.map (fun (t, iv) -> (t + base, iv)) es)

let append_postings path a b =
  match (a, b) with
  | Coding.Filter_p x, Coding.Filter_p y -> Coding.Filter_p (Array.append x y)
  | Coding.Interval_p x, Coding.Interval_p y ->
      Coding.Interval_p (Array.append x y)
  | Coding.Root_p x, Coding.Root_p y -> Coding.Root_p (Array.append x y)
  | _ -> Si_error.raise_schema ~path "merge_append: posting coding mismatch"

(* Checkpoint compaction: fold a delta index (local tids [0 .. K-1]) into
   the main one (tids [0 .. tid_base-1]) as a fresh heap index over
   [tid_base + K] trees.  Both sides decode through {!iter}; shifted delta
   entries append *behind* the main entries of a shared key, which keeps
   every posting sorted because all main tids precede [tid_base].  Works
   for heap and mapped mains alike (a mapped main must have its corpus
   resolver attached — {!Si.open_} always does). *)
let merge_append ?block_entries (main : t) (delta : t) ~tid_base =
  if main.scheme <> delta.scheme || main.mss <> delta.mss then
    Si_error.raise_schema ~path:main.origin
      "merge_append: delta scheme/mss does not match the main index";
  if tid_base <> main.stats.trees then
    invalid_arg "Builder.merge_append: tid_base must equal the main tree count";
  Failpoint.hit "si.checkpoint.merge";
  let acc = Hashtbl.create 65536 in
  iter main (fun key p -> Hashtbl.replace acc key p);
  iter delta (fun key p ->
      let shifted = shift_posting tid_base p in
      match Hashtbl.find_opt acc key with
      | None -> Hashtbl.replace acc key shifted
      | Some prev -> Hashtbl.replace acc key (append_postings main.origin prev shifted));
  let final = Hashtbl.create (Hashtbl.length acc) in
  let postings = ref 0 and bytes = ref 0 in
  Hashtbl.iter
    (fun key p ->
      let slot = slot_of_posting ?block_entries p in
      postings := !postings + slot.entries;
      bytes :=
        !bytes + Varint.size (String.length key) + String.length key
        + Varint.size slot.len + slot.len;
      Hashtbl.replace final key slot)
    acc;
  {
    scheme = main.scheme;
    mss = main.mss;
    table = final;
    stats =
      {
        trees = main.stats.trees + delta.stats.trees;
        nodes = main.stats.nodes + delta.stats.nodes;
        keys = Hashtbl.length final;
        postings = !postings;
        bytes = !bytes;
      };
    origin = "<merge>";
    file_crc = None;
    mapped = None;
  }

(* ---- flattened file ---------------------------------------------------- *)

(* SIDX3 layout (integrity-checked, see DESIGN.md):

     header    "SIDX3\n"  scheme byte (F|I|R)  mss byte          (8 bytes)
     keydir    varint nkeys, then per key in sorted order:
                 varint lcp, varint slen, suffix bytes, varint plen
     postings  the v3 block containers ({!Coding.pack_v3}), concatenated in
               key order (offsets implied by the cumulative plen)
     footer    u64le keydir_len | u64le postings_len
               u32le crc32(header) | u32le crc32(keydir) | u32le crc32(postings)
               "SI2F"                                            (32 bytes)

   SIDX2 is the same container with flat posting bodies ({!Coding.pack});
   only the header magic and the posting codec differ, so one reader
   handles both.  [save] writes to [path ^ ".tmp"], fsyncs, then renames —
   a crash mid-save never clobbers an existing index.  [load] verifies
   magic, region lengths and all three checksums before parsing a single
   record.

   SIDX4 layout (mmap-resident, see DESIGN.md §12):

     header    "SIDX4\n"  scheme byte  mss byte                  (8 bytes)
     kindex    per key-block a fixed 16-byte record:
                 u64le first-key offset (relative to keydir)
                 u64le first-posting offset (relative to postings)
     keydir    blocks of [key_block] keys; the block-first record stores
               the whole key (varint slen, bytes), the rest front-code
               against the previous key (varint lcp, varint slen, suffix);
               every record ends with varint entries, varint plen
     postings  interval postings as v4 containers ({!Coding.pack_v4} —
               (tid, pre) names, resolved against the .trees store);
               filter / root-split postings stay v3 containers
     footer    u64le nkeys | u64le key_block | u64le kindex_len
               u64le keydir_len | u64le postings_len | u64le reserved(0)
               u32le crc32(header) | u32le crc32(kindex) | u32le crc32(keydir)
               u32le crc32(postings) | u32le crc32(footer before this field)
               "SI4F"                                            (72 bytes)

   Open verifies only the footer and header CRCs (O(1)); kindex + keydir
   verify on the first find, postings on the first decode. *)

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

(* Write-to-temporary, fsync, rename.  [f] streams the payload; on any
   [Sys_error] the temporary is removed and the previous file at [path] is
   left untouched.  The four failpoints bracket each state transition of
   the crash-atomicity protocol — the recovery harness kills the process
   at every one of them and asserts a pre-existing index stays loadable. *)
let with_atomic_out path f =
  let tmp = path ^ ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Failpoint.hit "builder.save.tmp-open";
    let oc = open_out_bin tmp in
    let ok = ref false in
    Fun.protect
      ~finally:(fun () ->
        close_out_noerr oc;
        if not !ok then cleanup ())
      (fun () ->
        f oc;
        Failpoint.hit "builder.save.write";
        flush oc;
        Failpoint.hit "builder.save.fsync";
        Unix.fsync (Unix.descr_of_out_channel oc);
        ok := true);
    Failpoint.hit "builder.save.rename";
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error what ->
      cleanup ();
      Error (Si_error.Io { path; what })

(* Re-encode [slot]'s posting in the [want] container; [None] = the slot's
   own bytes already are that encoding and can be streamed as-is. *)
let converted ~want (t : t) key (slot : slot) =
  if slot.enc = want then None
  else begin
    let p =
      match slot.decoded with Some p -> p | None -> decode_slot t key slot
    in
    let buf = Buffer.create (slot.len + 16) in
    (match want with
    | V2 -> Coding.pack buf p
    | V3 -> Coding.pack_v3 buf p
    | V4 -> Coding.pack_v4 buf p);
    Some (Buffer.contents buf)
  end

(* Streams records straight to the channel through a small per-record
   scratch buffer — peak extra memory is one record, not the whole index
   (plus the re-encoded postings when saving across container versions,
   and a copied-out postings region when saving a mapped index). *)
let save_as ~magic ~want (t : t) path =
  with_atomic_out path (fun oc ->
      let slots = slots_sorted t in
      (* cross-version saves need each posting's final length already in the
         key directory pass, so conversions are computed once and kept *)
      let conv = Hashtbl.create 16 in
      let bytes_of key (slot : slot) =
        match Hashtbl.find_opt conv key with
        | Some s -> (s, 0, String.length s)
        | None -> (
            match converted ~want t key slot with
            | Some s ->
                Hashtbl.replace conv key s;
                (s, 0, String.length s)
            | None -> (
                match slot.src with
                | Coding.Str s -> (s, slot.off, slot.len)
                | Coding.Map _ ->
                    let s = Coding.src_sub slot.src slot.off slot.len in
                    Hashtbl.replace conv key s;
                    (s, 0, String.length s)))
      in
      let header =
        Printf.sprintf "%s%c%c" magic (scheme_byte t.scheme) (Char.chr t.mss)
      in
      output_string oc header;
      (* key directory *)
      let scratch = Buffer.create 256 in
      let crc_keydir = ref Crc32.empty in
      let keydir_len = ref 0 in
      let emit () =
        let s = Buffer.contents scratch in
        output_string oc s;
        crc_keydir := Crc32.feed_string !crc_keydir s;
        keydir_len := !keydir_len + String.length s;
        Buffer.clear scratch
      in
      Varint.write scratch (List.length slots);
      emit ();
      let prev = ref "" in
      List.iter
        (fun (key, slot) ->
          let _, _, plen = bytes_of key slot in
          (* front-coded key: shared prefix with the previous sorted key *)
          let lcp = common_prefix !prev key in
          Varint.write scratch lcp;
          Varint.write scratch (String.length key - lcp);
          Buffer.add_substring scratch key lcp (String.length key - lcp);
          Varint.write scratch plen;
          emit ();
          prev := key)
        slots;
      (* postings region *)
      let crc_postings = ref Crc32.empty in
      let postings_len = ref 0 in
      List.iter
        (fun (key, slot) ->
          let src, off, plen = bytes_of key slot in
          output_substring oc src off plen;
          crc_postings := Crc32.feed_substring !crc_postings src off plen;
          postings_len := !postings_len + plen)
        slots;
      (* footer *)
      Buffer.add_int64_le scratch (Int64.of_int !keydir_len);
      Buffer.add_int64_le scratch (Int64.of_int !postings_len);
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.string header));
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.value !crc_keydir));
      Buffer.add_int32_le scratch (Int32.of_int (Crc32.value !crc_postings));
      Buffer.add_string scratch footer_magic;
      Buffer.output_buffer oc scratch)

let save (t : t) path = save_as ~magic:magic_v3 ~want:V3 t path
let save_v2 (t : t) path = save_as ~magic ~want:V2 t path

let save_v1 (t : t) path =
  with_atomic_out path (fun oc ->
      output_string oc magic_v1;
      output_char oc (scheme_byte t.scheme);
      output_char oc (Char.chr t.mss);
      let scratch = Buffer.create 256 in
      Varint.write scratch (n_keys t);
      Buffer.output_buffer oc scratch;
      List.iter
        (fun key ->
          Buffer.clear scratch;
          Varint.write scratch (String.length key);
          Buffer.add_string scratch key;
          Coding.write scratch (Option.get (find_exn t key));
          Buffer.output_buffer oc scratch)
        (sorted_keys t))

(* the slot's posting as SIDX4 postings-region bytes: v4 containers for
   interval postings, v3 containers otherwise *)
let v4_bytes (t : t) key (slot : slot) =
  let want = mapped_enc t in
  match converted ~want t key slot with
  | Some s -> s
  | None -> (
      match slot.src with
      | Coding.Str s when slot.off = 0 && slot.len = String.length s -> s
      | _ -> Coding.src_sub slot.src slot.off slot.len)

let save_v4 ?(key_block = default_key_block) (t : t) path =
  if key_block < 1 then invalid_arg "Builder.save_v4: key_block must be >= 1";
  with_atomic_out path (fun oc ->
      let slots = slots_sorted t in
      let nkeys = List.length slots in
      let header =
        Printf.sprintf "%s%c%c" magic_v4 (scheme_byte t.scheme) (Char.chr t.mss)
      in
      (* the three regions are buffered whole: the key index needs every
         block's offsets before anything can be streamed *)
      let kindex = Buffer.create (16 * ((nkeys / key_block) + 1)) in
      let keydir = Buffer.create 4096 in
      let postings = Buffer.create 65536 in
      let prev = ref "" in
      List.iteri
        (fun i (key, slot) ->
          let body = v4_bytes t key slot in
          if i mod key_block = 0 then begin
            Buffer.add_int64_le kindex (Int64.of_int (Buffer.length keydir));
            Buffer.add_int64_le kindex (Int64.of_int (Buffer.length postings));
            (* the block-first key is stored whole: binary-search probes
               and block scans never need the previous block's last key *)
            Varint.write keydir (String.length key);
            Buffer.add_string keydir key
          end
          else begin
            let lcp = common_prefix !prev key in
            Varint.write keydir lcp;
            Varint.write keydir (String.length key - lcp);
            Buffer.add_substring keydir key lcp (String.length key - lcp)
          end;
          Varint.write keydir slot.entries;
          Varint.write keydir (String.length body);
          Buffer.add_string postings body;
          prev := key)
        slots;
      output_string oc header;
      Buffer.output_buffer oc kindex;
      Buffer.output_buffer oc keydir;
      Buffer.output_buffer oc postings;
      let footer = Buffer.create footer_len_v4 in
      Buffer.add_int64_le footer (Int64.of_int nkeys);
      Buffer.add_int64_le footer (Int64.of_int key_block);
      Buffer.add_int64_le footer (Int64.of_int (Buffer.length kindex));
      Buffer.add_int64_le footer (Int64.of_int (Buffer.length keydir));
      Buffer.add_int64_le footer (Int64.of_int (Buffer.length postings));
      Buffer.add_int64_le footer 0L;
      Buffer.add_int32_le footer (Int32.of_int (Crc32.string header));
      Buffer.add_int32_le footer (Int32.of_int (Crc32.string (Buffer.contents kindex)));
      Buffer.add_int32_le footer (Int32.of_int (Crc32.string (Buffer.contents keydir)));
      Buffer.add_int32_le footer
        (Int32.of_int (Crc32.string (Buffer.contents postings)));
      Buffer.add_int32_le footer
        (Int32.of_int (Crc32.string (Buffer.contents footer)));
      Buffer.add_string footer footer_magic_v4;
      Buffer.output_buffer oc footer)

let read_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* armed [short:N] simulates a torn read; the checksummed loaders must
     reject the result as Corrupt, never crash or mis-parse *)
  Failpoint.read_transform "builder.load.read" s

let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

let u64_at path s off =
  match Int64.unsigned_to_int (String.get_int64_le s off) with
  | Some v -> v
  | None -> Si_error.raise_corrupt ~path ~offset:off "region length out of range"

(* SIDX2/SIDX3 load: verify footer magic, region lengths and checksums over
   the whole byte string, then one bounds-checked pass over the key
   directory building key -> (offset, length) slots; postings decode on
   first [find] (or block by block through the cursors). *)
let load_packed ~enc path s =
  let len = String.length s in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len + footer_len then
    corrupt len
      (Printf.sprintf "truncated: %d bytes cannot hold the header and footer" len);
  if not (String.equal (String.sub s (len - 4) 4) footer_magic) then
    corrupt (len - 4) "missing footer magic (truncated file or pre-checksum SIDX2)";
  let keydir_len = u64_at path s (len - 32) in
  let postings_len = u64_at path s (len - 24) in
  if keydir_len > len || postings_len > len
     || header_len + keydir_len + postings_len + footer_len <> len
  then
    corrupt (len - 32)
      (Printf.sprintf
         "recorded region lengths (%d-byte key directory + %d-byte postings) \
          disagree with the %d-byte file"
         keydir_len postings_len len);
  if Crc32.substring s 0 header_len <> u32_at s (len - 16) then
    corrupt 0 "header checksum mismatch";
  let kd_start = header_len in
  let p_start = kd_start + keydir_len in
  if Crc32.substring s kd_start keydir_len <> u32_at s (len - 12) then
    corrupt kd_start "key directory checksum mismatch";
  if Crc32.substring s p_start postings_len <> u32_at s (len - 8) then
    corrupt p_start "postings checksum mismatch";
  let scheme = scheme_of_byte path s.[6] in
  let mss = Char.code s.[7] in
  if mss < 1 then corrupt 7 "mss byte must be >= 1";
  (* key directory: every varint bounded by the region end, keys strictly
     sorted, posting lengths tiling the postings region exactly *)
  let kd_end = p_start in
  let sv = Coding.str s in
  let vread off = Coding.checked_varint ~limit:kd_end sv off in
  let nkeys, off0 = vread kd_start in
  if nkeys > keydir_len then corrupt kd_start "key count exceeds key directory size";
  let table = Hashtbl.create (2 * (nkeys + 1)) in
  let postings = ref 0 in
  let off = ref off0 in
  let post_off = ref 0 in
  let prev = ref "" in
  for _ = 1 to nkeys do
    let rec_start = !off in
    let lcp, o = vread !off in
    let slen, o = vread o in
    if lcp > String.length !prev then
      corrupt rec_start "front-coded prefix longer than the previous key";
    if slen > kd_end - o then corrupt rec_start "key suffix overruns the key directory";
    let key = String.sub !prev 0 lcp ^ String.sub s o slen in
    let o = o + slen in
    if String.compare key !prev <= 0 then
      corrupt rec_start "keys not in strictly increasing order";
    ignore (checked_key_size path ~offset:rec_start ~mss key);
    let plen, o = vread o in
    if plen < 1 then corrupt rec_start "zero-length posting";
    if plen > postings_len - !post_off then
      corrupt rec_start "posting overruns the postings region";
    let slot_off = p_start + !post_off in
    let entries =
      match enc with
      | V2 | V4 -> Coding.packed_entries ~limit:(slot_off + plen) sv slot_off
      | V3 -> Coding.packed_entries_v3 ~limit:(slot_off + plen) sv slot_off
    in
    postings := !postings + entries;
    Hashtbl.replace table key
      { src = sv; off = slot_off; len = plen; entries; enc; decoded = None };
    post_off := !post_off + plen;
    off := o;
    prev := key
  done;
  if !off <> kd_end then corrupt !off "trailing bytes in the key directory";
  if !post_off <> postings_len then
    corrupt p_start "posting lengths do not cover the postings region";
  {
    scheme;
    mss;
    table;
    stats =
      { trees = 0; nodes = 0; keys = nkeys; postings = !postings; bytes = len };
    origin = path;
    file_crc = Some (Crc32.string s);
    mapped = None;
  }

(* SIDX1 load: the legacy format stores postings eagerly and carries no
   checksum (detection is structural only); decode each posting defensively
   and re-pack so the in-memory representation is uniformly SIDX2. *)
let load_v1 path s =
  let len = String.length s in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len then corrupt len "truncated header";
  let scheme = scheme_of_byte path s.[6] in
  let mss = Char.code s.[7] in
  if mss < 1 then corrupt 7 "mss byte must be >= 1";
  let sv = Coding.str s in
  let vread off = Coding.checked_varint ~limit:len sv off in
  let nkeys, off0 = vread 8 in
  if nkeys > len then corrupt 8 "key count exceeds file size";
  let table = Hashtbl.create (2 * (nkeys + 1)) in
  let off = ref off0 in
  let postings = ref 0 in
  let bytes = ref 0 in
  let prev = ref "" in
  for _ = 1 to nkeys do
    let rec_start = !off in
    let klen, o = vread !off in
    if klen > len - o then corrupt rec_start "key overruns the file";
    let key = String.sub s o klen in
    if String.compare key !prev <= 0 then
      corrupt rec_start "keys not in strictly increasing order";
    let key_size = checked_key_size path ~offset:rec_start ~mss key in
    let posting, o = Coding.read scheme ~key_size ~limit:len sv (o + klen) in
    off := o;
    prev := key;
    let slot = slot_of_posting posting in
    postings := !postings + slot.entries;
    bytes := !bytes + Varint.size klen + klen + Varint.size slot.len + slot.len;
    Hashtbl.replace table key slot
  done;
  if !off <> len then corrupt !off "trailing bytes after the last posting";
  {
    scheme;
    mss;
    table;
    stats = { trees = 0; nodes = 0; keys = nkeys; postings = !postings; bytes = !bytes };
    origin = path;
    file_crc = Some (Crc32.string s);
    mapped = None;
  }

(* SIDX4 load: O(1) — map the file, verify the 72-byte footer and 8-byte
   header CRCs, validate the region table.  No key table is built; finds
   binary-search the mapped key index, and the body region CRCs verify
   lazily on first touch. *)
let load_v4 path =
  Failpoint.hit "builder.load.map";
  let map = Mmap.map_ro path in
  let len = Bigarray.Array1.dim map in
  let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
  if len < header_len + footer_len_v4 then
    corrupt len
      (Printf.sprintf "truncated: %d bytes cannot hold an SIDX4 header and footer"
         len);
  if not (String.equal (Mmap.bytes_at map (len - 4) 4) footer_magic_v4) then
    corrupt (len - 4) "missing SIDX4 footer magic";
  if Crc32.bigsub map (len - footer_len_v4) (footer_len_v4 - 8) <> Mmap.u32 map (len - 8)
  then corrupt (len - footer_len_v4) "footer checksum mismatch";
  let nkeys = Mmap.u64 ~path map (len - 72) in
  let kblock = Mmap.u64 ~path map (len - 64) in
  let kindex_len = Mmap.u64 ~path map (len - 56) in
  let keydir_len = Mmap.u64 ~path map (len - 48) in
  let postings_len = Mmap.u64 ~path map (len - 40) in
  if kblock < 1 then corrupt (len - 64) "key-block size must be >= 1";
  if nkeys > keydir_len then corrupt (len - 72) "key count exceeds key directory size";
  let nblocks = (nkeys + kblock - 1) / kblock in
  if kindex_len <> 16 * nblocks
     || header_len + kindex_len + keydir_len + postings_len + footer_len_v4 <> len
  then
    corrupt (len - 72)
      (Printf.sprintf
         "recorded regions (%d keys, %d + %d + %d bytes) disagree with the \
          %d-byte file"
         nkeys kindex_len keydir_len postings_len len);
  if not (String.equal (Mmap.bytes_at map 0 (String.length magic_v4)) magic_v4) then
    corrupt 0 "bad magic (want SIDX4)";
  if Crc32.bigsub map 0 header_len <> Mmap.u32 map (len - 24) then
    corrupt 0 "header checksum mismatch";
  let scheme = scheme_of_byte path (Bigarray.Array1.get map 6) in
  let mss = Char.code (Bigarray.Array1.get map 7) in
  if mss < 1 then corrupt 7 "mss byte must be >= 1";
  {
    scheme;
    mss;
    table = Hashtbl.create 1;
    (* trees/nodes/postings are not stored (Si restores them from .meta);
       bytes is the mapped file size *)
    stats = { trees = 0; nodes = 0; keys = nkeys; postings = 0; bytes = len };
    origin = path;
    file_crc = None;
    mapped =
      Some
        {
          map;
          msrc = Coding.map_src map;
          m_nkeys = nkeys;
          kblock;
          kindex_off = header_len;
          kindex_len;
          keydir_off = header_len + kindex_len;
          keydir_len;
          post_off = header_len + kindex_len + keydir_len;
          post_len = postings_len;
          crc_kindex = Mmap.u32 map (len - 20);
          crc_keydir = Mmap.u32 map (len - 16);
          crc_postings = Mmap.u32 map (len - 12);
          dir_verified = false;
          post_verified = false;
          resolve = None;
        };
  }

let is_prefix s m = String.length s < String.length m && String.equal s (String.sub m 0 (String.length s))

(* the first bytes of the file, to pick the loader: SIDX4 must be mapped,
   not slurped, so sniffing precedes any full read *)
let sniff path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = min (in_channel_length ic) (String.length magic_v4) in
      really_input_string ic n)

let load path =
  match sniff path with
  | exception Sys_error what -> Error (Si_error.Io { path; what })
  | head when String.equal head magic_v4 -> (
      match load_v4 path with
      | t -> Ok t
      | exception Si_error.Error e -> Error e
      | exception Sys_error what -> Error (Si_error.Io { path; what })
      | exception Coding.Malformed { offset; what } ->
          Error (Si_error.Corrupt { path; offset; what })
      | exception Invalid_argument what ->
          Error (Si_error.Corrupt { path; offset = 0; what = "malformed: " ^ what })
      | exception Failure what ->
          Error (Si_error.Corrupt { path; offset = 0; what }))
  | _ -> (
      match read_file path with
      | exception Sys_error what -> Error (Si_error.Io { path; what })
      | s -> (
          let corrupt offset what = Si_error.raise_corrupt ~path ~offset what in
          let mlen = String.length magic in
          match
            let len = String.length s in
            let has m = len >= mlen && String.equal (String.sub s 0 mlen) m in
            if len = 0 then corrupt 0 "empty file"
            else if has magic_v3 then load_packed ~enc:V3 path s
            else if has magic then load_packed ~enc:V2 path s
            else if has magic_v1 then load_v1 path s
            else if
              is_prefix s magic_v4 || is_prefix s magic_v3 || is_prefix s magic
              || is_prefix s magic_v1
            then
              corrupt 0
                (Printf.sprintf "truncated header: %d bytes, shorter than the magic"
                   len)
            else
              corrupt 0
                "not an si index file (bad magic; want SIDX1, SIDX2, SIDX3 or SIDX4)"
          with
          | t -> Ok t
          | exception Si_error.Error e -> Error e
          | exception Coding.Malformed { offset; what } ->
              Error (Si_error.Corrupt { path; offset; what })
          (* safety net: no decoding slip may escape as a crash *)
          | exception Invalid_argument what ->
              Error (Si_error.Corrupt { path; offset = 0; what = "malformed: " ^ what })
          | exception Failure what ->
              Error (Si_error.Corrupt { path; offset = 0; what })))

(* ---- mapped introspection ------------------------------------------------ *)

type region_state = { rname : string; rbytes : int; rverified : bool }

type mapped_stats = {
  mapped_bytes : int;
  resident_estimate : int;
  regions : region_state list;
}

let is_mapped (t : t) = t.mapped <> None

let mapped_stats (t : t) =
  match t.mapped with
  | None -> None
  | Some m ->
      let regions =
        [
          { rname = "kindex"; rbytes = m.kindex_len; rverified = m.dir_verified };
          { rname = "keydir"; rbytes = m.keydir_len; rverified = m.dir_verified };
          { rname = "postings"; rbytes = m.post_len; rverified = m.post_verified };
        ]
      in
      (* a CRC pass touches every page of its region, so verified regions
         count as resident in full; unverified ones only cost the pages a
         find or decode actually walked — approximated as zero *)
      let resident =
        header_len + footer_len_v4
        + List.fold_left (fun a r -> if r.rverified then a + r.rbytes else a) 0 regions
      in
      Some
        {
          mapped_bytes = Bigarray.Array1.dim m.map;
          resident_estimate = resident;
          regions;
        }

let verify_mapped (t : t) =
  Si_error.guard @@ fun () ->
  match t.mapped with
  | None -> ()
  | Some m ->
      ensure_dir_verified t m;
      ensure_post_verified t m

(* ---- incremental scrub support (DESIGN.md §15) --------------------------- *)

let scrub_regions (t : t) =
  match t.mapped with
  | None -> []
  | Some m ->
      [
        ("kindex", m.kindex_off, m.kindex_len, m.crc_kindex);
        ("keydir", m.keydir_off, m.keydir_len, m.crc_keydir);
        ("postings", m.post_off, m.post_len, m.crc_postings);
      ]

let scrub_feed (t : t) crc ~off ~len =
  match t.mapped with
  | None -> crc
  | Some m -> Crc32.feed_bigsub crc m.map off len

let scrub_commit (t : t) which =
  match t.mapped with
  | None -> ()
  | Some m -> (
      match which with
      | `Dir -> m.dir_verified <- true
      | `Postings -> m.post_verified <- true)

let scrub_slots (t : t) =
  match t.mapped with
  | None -> []
  | Some m ->
      let bad = ref [] in
      mapped_iter_slots t m (fun key slot ->
          match decode_slot_unchecked t key slot with
          | (_ : Coding.posting) -> ()
          | exception Si_error.Error _ -> bad := key :: !bad);
      List.rev !bad

let set_resolve (t : t) resolve =
  match t.mapped with None -> () | Some m -> m.resolve <- Some resolve
