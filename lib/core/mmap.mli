(** Read-only memory mapping for the SIDX4 index and the [.trees] corpus
    store, plus the little-endian field readers both formats share. *)

type bigstring = Coding.bigstring

val map_ro : string -> bigstring
(** Map a whole file read-only.  The fd is closed before returning (the
    mapping survives it); the GC unmaps.  Raises {!Si_error.Error}: [Io]
    on open/stat/mmap failure, [Corrupt] on an empty file (zero-length
    mappings are not portable, and no mapped format is ever empty). *)

val u32 : bigstring -> int -> int
(** Little-endian u32 at a byte offset.  Bounds are the caller's: both
    formats validate region extents against the file length first. *)

val u64 : path:string -> bigstring -> int -> int
(** Little-endian u64 at a byte offset; raises [Corrupt] if the value
    exceeds OCaml's 63-bit int range (no real offset or length can). *)

val bytes_at : bigstring -> int -> int -> string
(** Copy a slice out as a string (bounds checked) — magic strings and
    other tiny fields only; bulk regions are consumed in place. *)
