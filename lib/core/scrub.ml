(* Incremental integrity scrub over the lazily-verified mapped regions of
   an SIDX4 prefix (DESIGN.md §15).

   The SIDX4 open is O(1) because region CRCs verify lazily — which moves
   corruption discovery to query time.  The scrub closes that window: it
   walks every lazily-verified region (the .idx key index, key directory
   and postings, and the .trees offsets and trees regions) under a
   byte/deadline budget, resuming across passes through a cursor, so a
   server can amortize a full integrity cycle over idle ticks without
   ever stalling a query.

   When a region's CRC fails, the scrub localizes the damage where the
   format allows it: a bad postings region is re-walked with defensive
   per-slot decodes (the directory says where every posting lives), a bad
   trees region with defensive per-tid decodes.  Directory or offset
   damage cannot be localized — the region *is* the map — and reports as
   a bad region only.  The scrub never mutates the handle beyond the lazy
   verification flags: committing a region it proved clean (so later
   queries skip the first-use CRC pass), never marking anything bad —
   quarantine policy lives in {!Si}, which folds the report. *)

type budget = { max_bytes : int option; deadline_ns : int option }

let unbudgeted = { max_bytes = None; deadline_ns = None }

let budget ?max_bytes ?deadline_ms () =
  {
    max_bytes;
    deadline_ns =
      Option.map (fun ms -> int_of_float (ms *. 1e6)) deadline_ms;
  }

type report = {
  bytes_verified : int;
  regions_ok : string list;
  bad_regions : string list;
  bad_keys : string list;
  bad_trees : int list;
  complete : bool;
  clean : bool;
}

(* One region still being hashed: [pos] bytes of it are already folded
   into [acc] by earlier passes. *)
type region = {
  r_src : [ `Idx | `Ts ];
  r_name : string;
  r_off : int;
  r_len : int;
  r_crc : int;
  mutable r_pos : int;
  mutable r_acc : Crc32.t;
}

type stage =
  | Region of region
  | Slots  (* localize a CRC-failed postings region to keys *)
  | Trees of int ref  (* localize a CRC-failed trees region to tids *)

type cursor = {
  mutable stages : stage list;  (* [] = the next pass starts a new cycle *)
  mutable c_ok : string list;  (* regions proved clean this cycle *)
  mutable c_bad : string list;  (* regions whose CRC failed this cycle *)
  mutable c_bad_keys : string list;
  mutable c_bad_trees : int list;
}

let cursor () =
  { stages = []; c_ok = []; c_bad = []; c_bad_keys = []; c_bad_trees = [] }

(* Hash at most this much per budget probe: the deadline is only observed
   between chunks, so the chunk bounds how far a pass can overrun it. *)
let chunk = 1 lsl 20

let region_of (src, (name, off, len, crc)) =
  Region
    { r_src = src; r_name = name; r_off = off; r_len = len; r_crc = crc;
      r_pos = 0; r_acc = Crc32.empty }

let start_cycle cur ~index ~store =
  let idx = List.map (fun r -> (`Idx, r)) (Builder.scrub_regions index) in
  let ts =
    match store with
    | None -> []
    | Some s -> List.map (fun r -> (`Ts, r)) (Treestore.scrub_regions s)
  in
  cur.stages <- List.map region_of (idx @ ts);
  cur.c_ok <- [];
  cur.c_bad <- [];
  cur.c_bad_keys <- [];
  cur.c_bad_trees <- []

(* Commit the lazy-verification flags a completed cycle earned: a region
   group is committed only when every region of the group passed, because
   the underlying handles keep one flag per group. *)
let commit_clean cur ~index ~store =
  let ok name = List.mem name cur.c_ok in
  if ok "kindex" && ok "keydir" then Builder.scrub_commit index `Dir;
  if ok "postings" then Builder.scrub_commit index `Postings;
  match store with
  | None -> ()
  | Some s -> if ok "ts_offsets" && ok "ts_trees" then Treestore.scrub_commit s

let pass ?(budget = unbudgeted) cur ~index ~store =
  Failpoint.hit "scrub.pass";
  let t0 = Monotonic.now_ns () in
  let stop_at = Option.map (fun d -> t0 + d) budget.deadline_ns in
  let spent = ref 0 in
  let exhausted () =
    (match budget.max_bytes with Some b -> !spent >= b | None -> false)
    || match stop_at with Some s -> Monotonic.now_ns () >= s | None -> false
  in
  if cur.stages = [] then start_cycle cur ~index ~store;
  let continue = ref true in
  while !continue && cur.stages <> [] do
    (match List.hd cur.stages with
    | Region r ->
        let n = min chunk (r.r_len - r.r_pos) in
        if n > 0 then begin
          let off = r.r_off + r.r_pos in
          r.r_acc <-
            (match r.r_src with
            | `Idx -> Builder.scrub_feed index r.r_acc ~off ~len:n
            | `Ts ->
                Treestore.scrub_feed (Option.get store) r.r_acc ~off ~len:n);
          r.r_pos <- r.r_pos + n;
          spent := !spent + n
        end;
        if r.r_pos >= r.r_len then begin
          Failpoint.hit "scrub.region";
          cur.stages <- List.tl cur.stages;
          if Crc32.value r.r_acc = r.r_crc then
            cur.c_ok <- r.r_name :: cur.c_ok
          else begin
            cur.c_bad <- r.r_name :: cur.c_bad;
            (* localize where the format allows it; directory / offset
               damage has no finer grain than the region *)
            match r.r_name with
            | "postings" -> cur.stages <- cur.stages @ [ Slots ]
            | "ts_trees" ->
                cur.stages <- cur.stages @ [ Trees (ref 0) ]
            | _ -> ()
          end
        end
    | Slots ->
        (* one burst (the walk decodes key-by-key but shares the scan
           state); charged as the whole postings region *)
        cur.stages <- List.tl cur.stages;
        (match Builder.scrub_slots index with
        | bad -> cur.c_bad_keys <- cur.c_bad_keys @ bad
        | exception Si_error.Error _ ->
            (* the directory itself cannot be walked — already reported
               as a bad region when its CRC failed; if it passed CRC but
               is structurally hostile, report it now *)
            if not (List.mem "keydir" cur.c_bad) then
              cur.c_bad <- "keydir" :: cur.c_bad);
        List.iter
          (fun (name, _, len, _) ->
            if name = "postings" then spent := !spent + len)
          (Builder.scrub_regions index)
    | Trees next ->
        let s = Option.get store in
        let n = Treestore.length s in
        let _, _, tlen, _ = List.nth (Treestore.scrub_regions s) 1 in
        let per_tree = (tlen / max 1 n) + 1 in
        while !next < n && not (exhausted ()) do
          (match Treestore.scrub_decode s !next with
          | Ok () -> ()
          | Error _ -> cur.c_bad_trees <- cur.c_bad_trees @ [ !next ]);
          spent := !spent + per_tree;
          incr next
        done;
        if !next >= n then cur.stages <- List.tl cur.stages);
    if exhausted () then continue := false
  done;
  let complete = cur.stages = [] in
  let report =
    {
      bytes_verified = !spent;
      regions_ok = List.rev cur.c_ok;
      bad_regions = List.rev cur.c_bad;
      bad_keys = cur.c_bad_keys;
      bad_trees = cur.c_bad_trees;
      complete;
      clean = complete && cur.c_bad = [] && cur.c_bad_keys = [] && cur.c_bad_trees = [];
    }
  in
  if complete then commit_clean cur ~index ~store;
  report
