type row = { tid : int; ivs : Coding.interval array }
type rel = { cols : int array; rows : row array }

let empty = { cols = [||]; rows = [||] }
let is_empty r = Array.length r.rows = 0

let col_index rel q =
  let rec find i =
    if i >= Array.length rel.cols then raise Not_found
    else if rel.cols.(i) = q then i
    else find (i + 1)
  in
  find 0

let structural axis (p : Coding.interval) (c : Coding.interval) =
  let contains = p.Coding.pre < c.Coding.pre && p.Coding.post > c.Coding.post in
  match axis with
  | Si_query.Ast.Child -> contains && c.Coding.level = p.Coding.level + 1
  | Si_query.Ast.Descendant -> contains

let merge_join a b ~pred =
  let na = Array.length a.rows and nb = Array.length b.rows in
  let out = ref [] in
  let count = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let ta = a.rows.(!i).tid and tb = b.rows.(!j).tid in
    if ta < tb then incr i
    else if tb < ta then incr j
    else begin
      let i2 = ref !i and j2 = ref !j in
      while !i2 < na && a.rows.(!i2).tid = ta do
        incr i2
      done;
      while !j2 < nb && b.rows.(!j2).tid = ta do
        incr j2
      done;
      for x = !i to !i2 - 1 do
        for y = !j to !j2 - 1 do
          let ra = a.rows.(x) and rb = b.rows.(y) in
          if pred ra rb then begin
            out := { tid = ta; ivs = Array.append ra.ivs rb.ivs } :: !out;
            incr count
          end
        done
      done;
      i := !i2;
      j := !j2
    end
  done;
  { cols = Array.append a.cols b.cols; rows = Array.of_list (List.rev !out) }

let filter rel f = { rel with rows = Array.of_seq (Seq.filter f (Array.to_seq rel.rows)) }
