type row = { tid : int; ivs : Coding.interval array }
type rel = { cols : int array; rows : row array }

let empty = { cols = [||]; rows = [||] }
let is_empty r = Array.length r.rows = 0

let col_index rel q =
  let rec find i =
    if i >= Array.length rel.cols then raise Not_found
    else if rel.cols.(i) = q then i
    else find (i + 1)
  in
  find 0

let structural axis (p : Coding.interval) (c : Coding.interval) =
  let contains = p.Coding.pre < c.Coding.pre && p.Coding.post > c.Coding.post in
  match axis with
  | Si_query.Ast.Child -> contains && c.Coding.level = p.Coding.level + 1
  | Si_query.Ast.Descendant -> contains

(* growable row buffer: doubling array, no per-row list cell / final rev *)
module Rows = struct
  type t = { mutable arr : row array; mutable len : int }

  let dummy = { tid = -1; ivs = [||] }
  let create n = { arr = Array.make (max n 16) dummy; len = 0 }

  let push b r =
    if b.len = Array.length b.arr then begin
      let bigger = Array.make (2 * b.len) dummy in
      Array.blit b.arr 0 bigger 0 b.len;
      b.arr <- bigger
    end;
    b.arr.(b.len) <- r;
    b.len <- b.len + 1

  let contents b = Array.sub b.arr 0 b.len
end

let concat_ivs (a : Coding.interval array) b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else begin
    let out = Array.make (na + nb) a.(0) in
    Array.blit a 0 out 0 na;
    Array.blit b 0 out na nb;
    out
  end

(* resource governance: [step ()] once per merge advance and per join
   predicate evaluation — the tid-run cross products are exactly where a
   pathological query's cost explodes, so the budget must see them *)
let stepper = function
  | None -> fun () -> ()
  | Some c -> fun () -> Limits.step c

let merge_join ?ctx a b ~pred =
  let step = stepper ctx in
  let na = Array.length a.rows and nb = Array.length b.rows in
  let out = Rows.create (max na nb) in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    step ();
    let ta = a.rows.(!i).tid and tb = b.rows.(!j).tid in
    if ta < tb then incr i
    else if tb < ta then incr j
    else begin
      let i2 = ref !i and j2 = ref !j in
      while !i2 < na && a.rows.(!i2).tid = ta do
        incr i2
      done;
      while !j2 < nb && b.rows.(!j2).tid = ta do
        incr j2
      done;
      for x = !i to !i2 - 1 do
        for y = !j to !j2 - 1 do
          step ();
          let ra = a.rows.(x) and rb = b.rows.(y) in
          if pred ra rb then
            Rows.push out { tid = ta; ivs = concat_ivs ra.ivs rb.ivs }
        done
      done;
      i := !i2;
      j := !j2
    end
  done;
  { cols = Array.append a.cols b.cols; rows = Rows.contents out }

(* Stream-side merge join: [a] is materialized and sorted by tid, the
   other relation is reached only through [next_tid] (smallest stream tid
   >= the argument — a skip-table seek, no decoding needed to answer) and
   [probe] (all stream rows with exactly that tid — decodes just the
   blocks holding them).  Emits exactly what [merge_join a b ~pred] would,
   in the same order (a-row outer, stream-row inner), while the stream
   side skips every block no [a] tid lands in. *)
let merge_join_stream ?ctx a ~cols ~next_tid ~probe ~pred =
  let step = stepper ctx in
  let na = Array.length a.rows in
  let out = Rows.create (max na 16) in
  let i = ref 0 in
  (try
     while !i < na do
       step ();
       let ta = a.rows.(!i).tid in
       match next_tid ta with
       | None -> raise Exit
       | Some tb ->
           if tb > ta then
             while !i < na && a.rows.(!i).tid < tb do
               incr i
             done
           else begin
             let brows = probe ta in
             let i2 = ref !i in
             while !i2 < na && a.rows.(!i2).tid = ta do
               incr i2
             done;
             for x = !i to !i2 - 1 do
               let ra = a.rows.(x) in
               List.iter
                 (fun rb ->
                   step ();
                   if pred ra rb then
                     Rows.push out { tid = ta; ivs = concat_ivs ra.ivs rb.ivs })
                 brows
             done;
             i := !i2
           end
     done
   with Exit -> ());
  { cols = Array.append a.cols cols; rows = Rows.contents out }

let filter ?ctx rel f =
  let step = stepper ctx in
  let out = Rows.create (Array.length rel.rows) in
  Array.iter
    (fun r ->
      step ();
      if f r then Rows.push out r)
    rel.rows;
  { rel with rows = Rows.contents out }
