(** A byte-budgeted LRU cache — the bounded replacement for the unbounded
    memoized decode-on-find of PR 2.

    The serving read path decodes postings block by block ({!Cursor}); each
    decoded block goes through one of these caches, so the resident decoded
    footprint of a long-running query process is capped by [budget] bytes
    no matter how many distinct postings traffic touches.  One cache per
    domain: the structure is deliberately {e not} thread-safe — the batch
    evaluator ({!Si.query_batch}) gives every domain its own cache over the
    shared immutable packed bytes, so the hot path takes no locks.

    Keys and values are generic; the [cost] function supplied at creation
    charges each value against the budget (for decoded postings:
    {!Coding.heap_bytes}).  A value whose cost alone exceeds the budget is
    admitted at the cold end and reclaimed by the same eviction sweep —
    served once, accounted exactly, never retained, and never dumping the
    entries already resident.

    The byte accounting is self-checking: an eviction sweep that finds the
    list empty while [resident] is still over budget raises
    [Invalid_argument] instead of silently resetting the counter. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries evicted to stay within budget *)
  resident : int;  (** current total cost of cached entries *)
  entries : int;  (** current number of cached entries *)
  budget : int;
}

val create : ?budget:int -> cost:('v -> int) -> unit -> ('k, 'v) t
(** [budget] defaults to 64 MiB.  [cost v] is the budget charge of [v],
    evaluated once at insertion. *)

val find_or_add : ?charge:(int -> unit) -> ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k produce] returns the cached value for [k] (a hit,
    promoting [k] to most-recently-used) or calls [produce] (a miss),
    inserts the result and evicts least-recently-used entries until the
    total cost is back within budget.  Exceptions from [produce] propagate;
    nothing is inserted.

    [charge], if given, is invoked with the value's cost on a {e miss}
    only, after insertion — the {!Limits} decoded-bytes gauge hooks in
    here, so cache hits are free and an over-budget charge (which raises)
    still leaves the decoded block cached for a governed retry. *)

val stats : ('k, 'v) t -> stats

val add_stats : stats -> stats -> stats
(** Pointwise sum — aggregates per-domain caches for reporting ([resident],
    [entries] and [budget] add; a batch over [n] domains reports the fleet
    total). *)

val zero_stats : int -> stats
(** [zero_stats budget] — the stats of a fresh cache, for aggregation. *)
