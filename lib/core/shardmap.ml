type t = { shards : int; scheme : Coding.scheme; mss : int }

let router = "xmix32-v1"

(* murmur3's 32-bit finalizer: full avalanche, so consecutive tids
   spread uniformly — a [mod shards] split of sequential ids would put
   every corpus-order neighborhood on one shard and serialize scans *)
let shard_of_tid ~shards tid =
  let h = tid land 0xFFFFFFFF in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85ebca6b land 0xFFFFFFFF in
  let h = h lxor (h lsr 13) in
  let h = h * 0xc2b2ae35 land 0xFFFFFFFF in
  let h = h lxor (h lsr 16) in
  h mod shards

let shard_prefix prefix i = prefix ^ ".shard" ^ string_of_int i
let manifest_path prefix = prefix ^ ".shards"
let is_sharded prefix = Sys.file_exists (manifest_path prefix)

let save t prefix =
  let path = manifest_path prefix in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Printf.fprintf oc "version=1\nrouter=%s\nshards=%d\nscheme=%s\nmss=%d\n"
       router t.shards
       (Coding.scheme_to_string t.scheme)
       t.mss;
     (* the manifest is the commit point of a sharded build: fsync before
        rename, same discipline as the §9 staged publish *)
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc;
     Sys.rename tmp path
   with Sys_error what | Unix.Unix_error (_, _, what) ->
     Si_error.raise_io ~path what)

let load prefix =
  let path = manifest_path prefix in
  let lines =
    try
      let ic = open_in_bin path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    with Sys_error what -> Si_error.raise_io ~path what
  in
  let field k =
    let prefix_k = k ^ "=" in
    match
      List.find_opt (fun l -> String.starts_with ~prefix:prefix_k l) lines
    with
    | Some l ->
        String.sub l (String.length prefix_k)
          (String.length l - String.length prefix_k)
    | None ->
        Si_error.raise_corrupt ~path ~offset:0
          (Printf.sprintf "manifest missing field %S" k)
  in
  let int_field k =
    match int_of_string_opt (field k) with
    | Some n -> n
    | None ->
        Si_error.raise_corrupt ~path ~offset:0
          (Printf.sprintf "manifest field %S is not an integer" k)
  in
  (match field "version" with
  | "1" -> ()
  | v ->
      Si_error.raise_schema ~path
        (Printf.sprintf "unknown manifest version %S" v));
  (match field "router" with
  | r when r = router -> ()
  | r ->
      Si_error.raise_schema ~path
        (Printf.sprintf "unknown shard router %S (this build has %S)" r router));
  let shards = int_field "shards" in
  if shards < 1 then
    Si_error.raise_schema ~path
      (Printf.sprintf "shard count %d < 1" shards);
  let scheme =
    match Coding.scheme_of_string (field "scheme") with
    | Ok s -> s
    | Error what -> Si_error.raise_schema ~path what
  in
  { shards; scheme; mss = int_field "mss" }

let counts t ~total =
  let c = Array.make t.shards 0 in
  for tid = 0 to total - 1 do
    let s = shard_of_tid ~shards:t.shards tid in
    c.(s) <- c.(s) + 1
  done;
  c

let assign t ~total =
  let c = counts t ~total in
  let rows = Array.map (fun n -> Array.make n 0) c in
  let next = Array.make t.shards 0 in
  for tid = 0 to total - 1 do
    let s = shard_of_tid ~shards:t.shards tid in
    rows.(s).(next.(s)) <- tid;
    next.(s) <- next.(s) + 1
  done;
  rows
