(** In-memory index construction and the flattened [.idx] file.

    [build] streams the corpus once: each tree's subtree instances (sizes
    1..mss) are enumerated in canonical form and appended to their key's
    posting under the chosen coding (filter postings dedup to unique tids,
    root-split postings dedup to unique [(tid, root)]).  Because trees are
    processed in tid order and instances in pre-order of their roots,
    postings come out sorted without a sort pass.

    This is the in-memory milestone of DESIGN.md §3's construction
    pipeline; the external run sort + disk B+tree bulk load replace the
    hashtable in a later storage PR without changing this interface. *)

type stats = {
  trees : int;
  nodes : int;  (** total corpus nodes *)
  keys : int;  (** distinct canonical keys *)
  postings : int;  (** total posting entries *)
  bytes : int;  (** flattened size of keys + postings *)
}

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, Coding.posting) Hashtbl.t;  (** key bytes -> posting *)
  stats : stats;
}

val build :
  scheme:Coding.scheme -> mss:int -> Si_treebank.Annotated.t array -> t

val find : t -> string -> Coding.posting option

val save : t -> string -> unit
(** [save t path] writes the flattened index ([.idx] layout: magic, scheme,
    mss, key count, then sorted (key, posting) records). *)

val load : string -> t
(** Inverse of {!save} (the [trees]/[nodes] stats are not stored in the
    [.idx] and read back as 0; [Si] restores them from the [.meta]). *)
