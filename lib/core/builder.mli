(** Index construction (shard / merge / finalize) and the flattened [.idx]
    file (SIDX2).

    {b Construction} streams the corpus once per shard: each tree's subtree
    instances (sizes 1..mss) are enumerated in canonical form and appended
    to their key's accumulation under the chosen coding (filter postings
    dedup to unique tids, root-split postings dedup to unique
    [(tid, root)]).  Because trees are processed in tid order and instances
    in pre-order of their roots, postings come out sorted without a sort
    pass.  With [~domains:n > 1] the corpus is split into [n] contiguous
    tid ranges built concurrently on OCaml 5 domains; the per-domain key
    tables are then merged in shard order, which reproduces the sequential
    accumulation exactly — the parallel build is byte-identical to the
    sequential one (the differential tests assert this on saved files).

    {b Representation}: every posting is held as its SIDX2 packed bytes
    ({!Coding.pack}); the same bytes are written to disk, so [save] streams
    slices and [load] only builds a key → offset table over the raw file
    (O(keys) startup), decoding a posting on first {!find} and memoizing
    the result.  Legacy SIDX1 files are still readable (decoded eagerly and
    re-packed). *)

type stats = {
  trees : int;
  nodes : int;  (** total corpus nodes *)
  keys : int;  (** distinct canonical keys *)
  postings : int;  (** total posting entries *)
  bytes : int;  (** flattened size of keys + packed postings *)
}

type slot = {
  src : string;  (** backing buffer holding the packed posting bytes *)
  off : int;
  len : int;
  entries : int;  (** posting entry count (readable without decoding) *)
  mutable decoded : Coding.posting option;  (** memoized decode *)
}

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, slot) Hashtbl.t;  (** key bytes -> packed posting *)
  stats : stats;
}

val build :
  ?domains:int ->
  scheme:Coding.scheme ->
  mss:int ->
  Si_treebank.Annotated.t array ->
  t
(** [build ?domains ~scheme ~mss docs] — [domains] defaults to 1
    (sequential); higher values shard the corpus across that many OCaml
    domains.  The result is independent of [domains]. *)

val find : t -> string -> Coding.posting option
(** Decode-on-first-use: unpacks the slot's bytes once and memoizes. *)

val posting_entries : t -> string -> int option
(** Entry count of a key's posting without decoding it. *)

val n_keys : t -> int

val iter : t -> (string -> Coding.posting -> unit) -> unit
(** Iterate (key, decoded posting) in sorted key order — decodes every
    posting; for tests and tools, not hot paths. *)

val length_histogram : t -> (int * int) list
(** [(bucket, count)] pairs, bucket = power-of-two upper bound on posting
    entries: count of keys with [entries <= bucket] (and > previous
    bucket).  Computed from slot metadata, no decoding. *)

val save : t -> string -> unit
(** [save t path] streams the SIDX2 index: magic, scheme, mss, key count,
    then sorted records of front-coded key ([varint lcp], [varint slen],
    suffix) + [varint plen] + packed posting.  Peak extra memory is one
    record, not the index. *)

val save_v1 : t -> string -> unit
(** Legacy SIDX1 writer (eager postings, no front coding) — kept for the
    size baseline in the bench harness and the migration test. *)

val load : string -> t
(** Inverse of {!save}: reads the file once, builds the key → offset table,
    defers posting decode to {!find}.  Also accepts SIDX1 files (eager).
    The [trees]/[nodes] stats are not stored and read back as 0; [Si]
    restores them from the [.meta]. *)
