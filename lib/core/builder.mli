(** Index construction (shard / merge / finalize) and the flattened [.idx]
    file (SIDX2).

    {b Construction} streams the corpus once per shard: each tree's subtree
    instances (sizes 1..mss) are enumerated in canonical form and appended
    to their key's accumulation under the chosen coding (filter postings
    dedup to unique tids, root-split postings dedup to unique
    [(tid, root)]).  Because trees are processed in tid order and instances
    in pre-order of their roots, postings come out sorted without a sort
    pass.  With [~domains:n > 1] the corpus is split into [n] contiguous
    tid ranges built concurrently on OCaml 5 domains; the per-domain key
    tables are then merged in shard order, which reproduces the sequential
    accumulation exactly — the parallel build is byte-identical to the
    sequential one (the differential tests assert this on saved files).

    {b Representation}: every posting is held as its SIDX2 packed bytes
    ({!Coding.pack}); the same bytes are written to disk, so [save] streams
    slices and [load] only builds a key → offset table over the raw file
    (O(keys) startup), decoding a posting on first {!find} and memoizing
    the result.  Legacy SIDX1 files are still readable (decoded eagerly and
    re-packed).

    {b Integrity}: SIDX2 files end in a 32-byte footer recording the key
    directory and postings region lengths plus a CRC-32 per region (header,
    key directory, postings).  {!save} writes atomically
    ([path ^ ".tmp"], fsync, rename); {!load} verifies magic, lengths and
    all three checksums before parsing, and every decode path is
    bounds-checked — corrupt bytes surface as [Error (Corrupt _)], never a
    crash or a silently wrong posting. *)

type stats = {
  trees : int;
  nodes : int;  (** total corpus nodes *)
  keys : int;  (** distinct canonical keys *)
  postings : int;  (** total posting entries *)
  bytes : int;  (** flattened size of keys + packed postings *)
}

type enc = V2 | V3 | V4
(** Container encoding of a slot's bytes: [V3] the block-skip container
    ({!Coding.pack_v3} — built indexes and SIDX3 files), [V2] the flat
    SIDX2 body (loaded from old files, still fully decodable), [V4] the
    SIDX4 interval container ({!Coding.pack_v4} — (tid, pre) names,
    resolved against the corpus store at decode time). *)

type slot = {
  src : Coding.src;  (** backing buffer holding the packed posting bytes *)
  off : int;
  len : int;
  entries : int;  (** posting entry count (readable without decoding) *)
  enc : enc;
  mutable decoded : Coding.posting option;  (** memoized decode *)
}

type mapped
(** The mmap-resident SIDX4 backend: the whole [.idx] consumed in place
    through {!Coding.src} views, key lookups binary-searching the mapped
    key index.  Region CRCs verify lazily (directory on first find,
    postings on first decode). *)

type t = {
  scheme : Coding.scheme;
  mss : int;
  table : (string, slot) Hashtbl.t;
      (** key bytes -> packed posting; empty for mapped indexes *)
  stats : stats;
  origin : string;
      (** where the index came from: the [.idx] path for loaded indexes,
          ["<memory>"] for built ones — used as the [path] of corruption
          errors raised on lazy posting decode *)
  file_crc : int option;
      (** CRC-32 of the exact on-disk bytes for loaded indexes, [None] for
          built ones {e and} for mapped SIDX4 indexes (whose integrity is
          the footer + per-region CRCs) — cross-checked against the
          [.meta] sidecar's [idx_crc] record so a crash that leaves a new
          [.idx] next to old sibling files (or vice versa) is caught at
          load, not answered from silently (see {!Si.load}) *)
  mapped : mapped option;  (** [Some] iff the index is a mapped SIDX4 *)
}

val build :
  ?domains:int ->
  ?block_entries:int ->
  ?label_id:(int -> int) ->
  scheme:Coding.scheme ->
  mss:int ->
  Si_treebank.Annotated.t array ->
  t
(** [build ?domains ~scheme ~mss docs] — [domains] defaults to 1
    (sequential); higher values shard the corpus across that many OCaml
    domains.  The result is independent of [domains].  [block_entries]
    (default {!Coding.default_block_entries}) sets the v3 block size;
    tests use small values to force blocking on small corpora.
    [label_id] remaps process-global label ids into the id space the keys
    are encoded in (default identity) — the WAL delta index is built in
    the stored index's id space so its keys unify with the main postings
    at query and checkpoint time (DESIGN.md §13). *)

val merge_append : ?block_entries:int -> t -> t -> tid_base:int -> t
(** [merge_append main delta ~tid_base] — checkpoint compaction: a fresh
    heap index over [main]'s trees followed by [delta]'s, with [delta]'s
    local tids shifted by [tid_base] (which must equal [main]'s tree
    count — [Invalid_argument] otherwise).  Both sides must share the
    scheme, [mss] {e and key id space} (the delta is built with the
    stored [label_id] — see {!build}); mismatched scheme/mss raise
    [Si_error.Error (Schema_mismatch _)].  Decodes every posting of both
    sides (checkpoint-rate, not query-rate).  Failpoint:
    [si.checkpoint.merge] before any decoding. *)

val find : t -> string -> (Coding.posting option, Si_error.t) result
(** Decode-on-first-use: unpacks the slot's bytes once and memoizes.
    [Ok None] if the key is absent; [Error (Corrupt _)] if the stored bytes
    do not decode to a well-formed posting of exactly the recorded length. *)

val find_exn : t -> string -> Coding.posting option
(** {!find} for callers already inside an {!Si_error.guard}: raises
    [Si_error.Error] instead of returning [Error]. *)

val posting_entries : t -> string -> int option
(** Entry count of a key's posting without decoding it. *)

val n_keys : t -> int

val iter : t -> (string -> Coding.posting -> unit) -> unit
(** Iterate (key, decoded posting) in sorted key order — decodes every
    posting; for tests and tools, not hot paths.  Raises [Si_error.Error]
    if a stored posting fails to decode. *)

val length_histogram : t -> (int * int) list
(** [(bucket, count)] pairs, bucket = power-of-two upper bound on posting
    entries: count of keys with [entries <= bucket] (and > previous
    bucket).  Computed from slot metadata, no decoding. *)

val block_histogram : t -> (int * int) list
(** [(nblocks, count)] pairs: number of keys whose posting is laid out in
    exactly [nblocks] blocks (flat postings and V2 slots count as 1).
    Parses container headers only.  Raises [Si_error.Error] on corrupt
    container bytes. *)

val find_blocks : t -> string -> (slot * Coding.block array) option
(** The block layout of a key's posting without decoding any entries —
    the entry point of the streaming cursor path.  V2 slots present as a
    single flat block.  Raises [Si_error.Error] on corrupt container
    bytes. *)

val decode_block : t -> string -> slot -> Coding.block -> Coding.posting
(** [decode_block t key slot b] decodes one block of [key]'s posting
    (does {e not} touch [slot.decoded]).  Raises [Si_error.Error] on
    corrupt bytes. *)

val save : t -> string -> (unit, Si_error.t) result
(** [save t path] streams the SIDX3 index: an 8-byte header (magic, scheme,
    mss), the key directory (key count, then sorted records of front-coded
    key + posting length), the concatenated v3 posting containers, and the
    32-byte integrity footer (region lengths + three CRC-32s).  The write
    is atomic: [path ^ ".tmp"] + fsync + rename, so a crash or [Error (Io _)]
    leaves any existing file at [path] untouched.  Peak extra memory is one
    record (plus re-encoded postings when the index was loaded from an
    older container version). *)

val save_v2 : t -> string -> (unit, Si_error.t) result
(** SIDX2 writer (same container, flat posting bodies) — kept for the
    back-compat tests and the size baseline in the bench harness.  Atomic
    like {!save}. *)

val save_v1 : t -> string -> (unit, Si_error.t) result
(** Legacy SIDX1 writer (eager postings, no front coding, no footer) — kept
    for the size baseline in the bench harness and the migration test.
    Atomic like {!save}. *)

val default_key_block : int
(** Keys per SIDX4 key-directory block (64). *)

val save_v4 : ?key_block:int -> t -> string -> (unit, Si_error.t) result
(** SIDX4 writer: header, fixed-stride key index (one 16-byte record per
    key-directory block of [key_block] keys), front-coded key directory
    with embedded entry counts and posting lengths, postings (interval
    postings re-encoded as {!Coding.pack_v4} (tid, pre)-name containers;
    filter / root-split postings stay v3), and a 72-byte footer with one
    CRC-32 per region.  The result is designed to be consumed in place by
    {!load} via [mmap]; interval postings additionally require the
    [.trees] corpus store sibling that {!Si.save} writes.  Atomic like
    {!save}. *)

val load : string -> (t, Si_error.t) result
(** Inverse of {!save}: verifies the footer (magic, region lengths, all
    three checksums) before parsing, then builds the key → offset table in
    one bounds-checked pass, deferring posting decode to {!find}.  Also
    accepts SIDX2 files (same container, flat postings — slots stay [V2]
    in memory and re-encode on {!save}) and SIDX1 files (eager,
    defensively decoded — but unchecksummed, so only structural corruption
    is detectable).  Errors: [Io] if the file
    cannot be read; [Corrupt] for an empty file, a truncated header, a bad
    magic, a footer/checksum mismatch, or any malformed record.  The
    [trees]/[nodes] stats are not stored and read back as 0; [Si] restores
    them from the [.meta].

    SIDX4 files take a different path entirely: the file is mapped, only
    the footer and header CRCs are verified (O(1) in the index size), and
    no key table is built — {!find} binary-searches the mapped key index,
    verifying the directory region CRCs on the first lookup and the
    postings CRC on the first decode.  Interval postings cannot decode
    until {!set_resolve} attaches the corpus store ({!Si.open_} does);
    without it they raise [Schema_mismatch]. *)

(** {2 Mapped (SIDX4) introspection} *)

type region_state = {
  rname : string;
  rbytes : int;
  rverified : bool;  (** CRC checked (lazily) since open *)
}

type mapped_stats = {
  mapped_bytes : int;  (** size of the mapping = the whole [.idx] *)
  resident_estimate : int;
      (** bytes plausibly faulted in: header + footer + every region whose
          CRC pass has run (a CRC touches all its pages) *)
  regions : region_state list;  (** kindex / keydir / postings *)
}

val is_mapped : t -> bool
val mapped_stats : t -> mapped_stats option

val verify_mapped : t -> (unit, Si_error.t) result
(** Force the lazy region CRC verification now (all three regions).
    [Error (Corrupt _)] on a checksum mismatch.  [Ok ()] on heap indexes
    (fully verified at load). *)

(** {2 Incremental scrub support (DESIGN.md §15)} *)

val scrub_regions : t -> (string * int * int * int) list
(** The lazily-verified mapped regions as [(name, offset, length, crc)]
    in file order — ["kindex"], ["keydir"], ["postings"] for an SIDX4
    index; [[]] for heap indexes, which were fully verified at load. *)

val scrub_feed : t -> Crc32.t -> off:int -> len:int -> Crc32.t
(** Fold [len] mapped bytes at [off] into a running checksum — the scrub
    verifies a region in budget-sized increments across passes.  Returns
    [crc] unchanged on heap indexes. *)

val scrub_commit : t -> [ `Dir | `Postings ] -> unit
(** Mark a region group's lazy verification as done (the scrub proved the
    CRCs out of band): [`Dir] covers the key index {e and} key directory
    (one flag — commit only after both passed), [`Postings] the postings
    region.  No-op on heap indexes. *)

val scrub_slots : t -> string list
(** Defensively decode every mapped posting (without the whole-region CRC
    gate) and return the keys whose bytes fail to decode — the scrub's
    damage localizer for a postings region whose CRC failed.  Requires an
    intact key directory: raises [Si_error.Error] [Corrupt] if the
    directory itself cannot be walked.  [[]] on heap indexes. *)

val set_resolve : t -> (int -> int -> Coding.interval) -> unit
(** Attach the [(tid, pre) -> interval] resolver backing V4 posting
    decode — a closure over the [.trees] corpus store.  No-op on heap
    indexes. *)
