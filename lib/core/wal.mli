(** Write-ahead log of tree insertions (DESIGN.md §13).

    An index prefix may carry a sibling [prefix.wal] holding the trees
    inserted since the last checkpoint.  The log is append-only and
    self-describing: an 8-byte header binds it to the index's coding
    scheme and [mss], and each record is an independently CRC-framed
    [(global tid, Penn text)] pair, fsync'd before {!append} returns.

    Global tids make replay idempotent: a record whose tid is already
    covered by the main index is skipped, so replaying the same log twice
    — or replaying after a checkpoint published but crashed before
    truncation — is a no-op for the covered prefix ({!Si.open_} enforces
    the contiguity of the remainder).

    A torn tail (crash mid-append) is tolerated everywhere: {!replay}
    stops at the first incomplete or checksum-failing frame, and
    {!open_append} truncates it before accepting new records.  A frame
    whose CRC verifies but whose payload does not parse is {e corruption}
    (not a crash artifact) and raises [Si_error.Error (Corrupt _)]. *)

type t
(** An open append handle.  Not thread-safe — callers serialize
    ({!Si.insert} holds the handle's insert lock). *)

val path : string -> string
(** [path prefix] is [prefix ^ ".wal"]. *)

val replay : scheme:Coding.scheme -> mss:int -> string -> (int * Si_treebank.Tree.t) list
(** [replay ~scheme ~mss prefix] reads every intact record of
    [path prefix], in log order, without modifying the file (an absent
    file is an empty log — opening an index never creates one).  Raises
    [Si_error.Error]: [Schema_mismatch] when the header's scheme/mss
    disagree with the index, [Corrupt] on a bad header or a CRC-valid
    frame whose payload is malformed. *)

val open_append : scheme:Coding.scheme -> mss:int -> string -> t
(** Open [path prefix] for appending, creating it (header only, fsync'd)
    if absent.  Validates the header like {!replay}, truncates a torn
    tail, and positions at the end of the last intact record. *)

val append : t -> tid:int -> Si_treebank.Tree.t -> unit
(** Frame, write and fsync one record.  The record is durable when
    [append] returns.  Failpoints: [wal.append.write] before the frame
    is written, [wal.append.fsync] between write and fsync. *)

val records : t -> int
(** Intact records in the log (replayed count plus appends). *)

val bytes : t -> int
(** Current log size in bytes, header included. *)

val truncate : t -> unit
(** Drop every record: ftruncate back to the header and fsync — atomic
    with respect to a crash (the header alone is a valid empty log).
    Failpoint: [wal.truncate] before the ftruncate. *)

val close : t -> unit
(** Close the descriptor.  Idempotent. *)
