let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

type t = int

let empty = 0xffffffff

let feed_substring crc s pos len =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc :=
      Array.unsafe_get table ((!crc lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc

let feed_string crc s = feed_substring crc s 0 (String.length s)

let feed_bigsub crc (m : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t)
    pos len =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc :=
      Array.unsafe_get table
        ((!crc lxor Char.code (Bigarray.Array1.unsafe_get m i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc

let value crc = crc lxor 0xffffffff
let string s = value (feed_string empty s)
let substring s pos len = value (feed_substring empty s pos len)

let bigsub m pos len =
  if pos < 0 || len < 0 || pos > Bigarray.Array1.dim m - len then
    invalid_arg "Crc32.bigsub";
  value (feed_bigsub empty m pos len)
