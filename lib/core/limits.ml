type t = {
  deadline_ns : int option;
  max_decoded_bytes : int option;
  max_join_steps : int option;
  max_results : int option;
  partial : bool;
}

let none =
  {
    deadline_ns = None;
    max_decoded_bytes = None;
    max_join_steps = None;
    max_results = None;
    partial = false;
  }

let v ?deadline_ns ?max_decoded_bytes ?max_join_steps ?max_results
    ?(partial = false) () =
  { deadline_ns; max_decoded_bytes; max_join_steps; max_results; partial }

let is_none l = l = none

type outcome = {
  matches : (int * int) list;
  truncated : bool;
  degraded : bool;
}

(* One gauge shared by the per-shard evaluations of a fan-out query:
   byte and step spend pool atomically across shards, and every shard
   measures its deadline from the same start instant, so the whole
   fan-out answers under one budget rather than N.  [max_results] stays
   per-ctx — each shard may emit up to the cap and the merge enforces
   the global cap, which keeps the truncated-⊂-exact contract (a subset,
   not a prefix) without cross-domain coordination on the emit path. *)
type shared = {
  s_limits : t;
  s_t0_ns : int;
  s_bytes : int Atomic.t;
  s_steps : int Atomic.t;
}

type ctx = {
  limits : t;
  t0_ns : int;
  shared : shared option;
  mutable decoded_bytes : int;
  mutable join_steps : int;
  mutable tick : int;
  mutable emitted : (int * int) list;  (* verified results, reverse order *)
  mutable n_emitted : int;
}

exception Truncated

let check_deadline ctx =
  match ctx.limits.deadline_ns with
  | None -> ()
  | Some d ->
      let elapsed_ns = Monotonic.now_ns () - ctx.t0_ns in
      if elapsed_ns > d then
        raise (Si_error.Error (Si_error.Timeout { elapsed_ns; deadline_ns = d }))

let start limits =
  if is_none limits then None
  else begin
    let ctx =
      {
        limits;
        t0_ns = Monotonic.now_ns ();
        shared = None;
        decoded_bytes = 0;
        join_steps = 0;
        tick = 0;
        emitted = [];
        n_emitted = 0;
      }
    in
    (* a deadline of 0 must trip even for queries that touch no posting *)
    check_deadline ctx;
    Some ctx
  end

let share limits =
  if is_none limits then None
  else
    Some
      {
        s_limits = limits;
        s_t0_ns = Monotonic.now_ns ();
        s_bytes = Atomic.make 0;
        s_steps = Atomic.make 0;
      }

let shared_limits sh = sh.s_limits

let start_shared sh =
  (* the shared start instant is every member ctx's [t0_ns], so a
     deadline covers the whole fan-out including queueing delay *)
  let ctx =
    {
      limits = sh.s_limits;
      t0_ns = sh.s_t0_ns;
      shared = Some sh;
      decoded_bytes = 0;
      join_steps = 0;
      tick = 0;
      emitted = [];
      n_emitted = 0;
    }
  in
  check_deadline ctx;
  Some ctx

let exhausted what ~budget ~spent =
  raise (Si_error.Error (Si_error.Resource_exhausted { what; budget; spent }))

(* clock reads per merge advance would dominate the advance itself: check
   the deadline every 256 steps — overruns still surface within one block
   of work *)
let tick_mask = 255

let step ctx =
  let spent =
    match ctx.shared with
    | None ->
        ctx.join_steps <- ctx.join_steps + 1;
        ctx.join_steps
    | Some sh -> Atomic.fetch_and_add sh.s_steps 1 + 1
  in
  (match ctx.limits.max_join_steps with
  | Some b when spent > b -> exhausted "join-steps" ~budget:b ~spent
  | _ -> ());
  ctx.tick <- ctx.tick + 1;
  if ctx.tick land tick_mask = 0 then check_deadline ctx

let charge_decode ctx bytes =
  let spent =
    match ctx.shared with
    | None ->
        ctx.decoded_bytes <- ctx.decoded_bytes + bytes;
        ctx.decoded_bytes
    | Some sh -> Atomic.fetch_and_add sh.s_bytes bytes + bytes
  in
  (match ctx.limits.max_decoded_bytes with
  | Some b when spent > b -> exhausted "decoded-bytes" ~budget:b ~spent
  | _ -> ());
  check_deadline ctx

let emit ctx r =
  (match ctx.limits.max_results with
  | Some m when ctx.n_emitted >= m -> raise Truncated
  | _ -> ());
  ctx.emitted <- r :: ctx.emitted;
  ctx.n_emitted <- ctx.n_emitted + 1

let cmp_pair (a1, a2) (b1, b2) =
  if a1 <> b1 then Int.compare a1 b1 else Int.compare (a2 : int) b2

let collected ctx = List.sort_uniq cmp_pair ctx.emitted
