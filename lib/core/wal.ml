open Si_treebank
open Si_subtree

let path prefix = prefix ^ ".wal"
let magic = "SIWL1\n"
let header_len = 8

(* A frame larger than this is a torn or garbage length field, not a
   record anyone wrote: a single sentence tree is a few hundred bytes. *)
let max_payload = 1 lsl 28

let scheme_byte = function
  | Coding.Filter -> 'F'
  | Coding.Interval -> 'I'
  | Coding.Root_split -> 'R'

type t = {
  wpath : string;
  fd : Unix.file_descr;
  mutable n_records : int;
  mutable size : int;
  mutable closed : bool;
}

let u32_of s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let io_guard wpath f =
  try f () with
  | Sys_error m -> Si_error.raise_io ~path:wpath m
  | Unix.Unix_error (e, _, _) -> Si_error.raise_io ~path:wpath (Unix.error_message e)

(* Scan every intact frame of [contents]; returns the records in log
   order and the byte length of the intact prefix.  Stops (without
   raising) at the first incomplete or checksum-failing frame — that is a
   torn tail from a crash mid-append.  A frame whose CRC verifies but
   whose payload is malformed is corruption and raises. *)
let scan ~wpath ~scheme ~mss contents =
  let n = String.length contents in
  if String.sub contents 0 (String.length magic) <> magic then
    Si_error.raise_corrupt ~path:wpath ~offset:0 "bad WAL magic";
  if contents.[6] <> scheme_byte scheme then
    Si_error.raise_schema ~path:wpath "WAL scheme does not match the index";
  if Char.code contents.[7] <> mss then
    Si_error.raise_schema ~path:wpath
      (Printf.sprintf "WAL mss %d does not match index mss %d"
         (Char.code contents.[7]) mss);
  let recs = ref [] and off = ref header_len and stop = ref false in
  while not !stop do
    if !off + 8 > n then stop := true
    else
      let plen = u32_of contents !off in
      let crc = u32_of contents (!off + 4) in
      if plen <= 0 || plen > max_payload || !off + 8 + plen > n then
        stop := true
      else if Crc32.substring contents (!off + 8) plen <> crc then stop := true
      else begin
        let payload = String.sub contents (!off + 8) plen in
        let tid, toff =
          try Varint.read payload 0
          with Invalid_argument _ ->
            Si_error.raise_corrupt ~path:wpath ~offset:(!off + 8)
              "WAL record: bad tid varint"
        in
        let tree =
          try Penn.parse_one_exn (String.sub payload toff (plen - toff))
          with Failure m ->
            Si_error.raise_corrupt ~path:wpath ~offset:(!off + 8)
              ("WAL record: " ^ m)
        in
        recs := (tid, tree) :: !recs;
        off := !off + 8 + plen
      end
  done;
  (List.rev !recs, !off)

let replay ~scheme ~mss prefix =
  let wpath = path prefix in
  if not (Sys.file_exists wpath) then []
  else begin
    Failpoint.hit "wal.replay";
    let contents =
      io_guard wpath (fun () -> In_channel.with_open_bin wpath In_channel.input_all)
    in
    (* Records are durable only after the 8-byte header was fsync'd, so a
       shorter file is a torn creation holding nothing. *)
    if String.length contents < header_len then []
    else fst (scan ~wpath ~scheme ~mss contents)
  end

let write_full fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_fd fd wpath =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  let off = ref 0 in
  while !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n = 0 then Si_error.raise_io ~path:wpath "unexpected EOF";
    off := !off + n
  done;
  Bytes.unsafe_to_string buf

let open_append ~scheme ~mss prefix =
  if mss < 0 || mss > 255 then invalid_arg "Wal.open_append: mss out of range";
  let wpath = path prefix in
  let fd =
    io_guard wpath (fun () ->
        Unix.openfile wpath [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644)
  in
  try
    let contents = io_guard wpath (fun () -> read_fd fd wpath) in
    if String.length contents < header_len then begin
      (* Fresh log (or a torn creation, which by construction holds no
         durable record): write the header and make it durable before the
         first append can. *)
      io_guard wpath (fun () ->
          Unix.ftruncate fd 0;
          ignore (Unix.lseek fd 0 Unix.SEEK_SET);
          write_full fd
            (magic ^ String.make 1 (scheme_byte scheme)
            ^ String.make 1 (Char.chr mss));
          Unix.fsync fd);
      { wpath; fd; n_records = 0; size = header_len; closed = false }
    end
    else begin
      let recs, intact = scan ~wpath ~scheme ~mss contents in
      io_guard wpath (fun () ->
          if intact < String.length contents then begin
            Unix.ftruncate fd intact;
            Unix.fsync fd
          end;
          ignore (Unix.lseek fd intact Unix.SEEK_SET));
      { wpath; fd; n_records = List.length recs; size = intact; closed = false }
    end
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let append t ~tid tree =
  if t.closed then invalid_arg "Wal.append: closed handle";
  if tid < 0 then invalid_arg "Wal.append: negative tid";
  let b = Buffer.create 256 in
  Varint.write b tid;
  Buffer.add_string b (Tree.to_string tree);
  let payload = Buffer.contents b in
  let frame = Buffer.create (String.length payload + 8) in
  add_u32 frame (String.length payload);
  add_u32 frame (Crc32.string payload);
  Buffer.add_string frame payload;
  let bytes = Buffer.contents frame in
  Failpoint.hit "wal.append.write";
  io_guard t.wpath (fun () -> write_full t.fd bytes);
  Failpoint.hit "wal.append.fsync";
  io_guard t.wpath (fun () -> Unix.fsync t.fd);
  t.n_records <- t.n_records + 1;
  t.size <- t.size + String.length bytes

let records t = t.n_records
let bytes t = t.size

let truncate t =
  if t.closed then invalid_arg "Wal.truncate: closed handle";
  Failpoint.hit "wal.truncate";
  io_guard t.wpath (fun () ->
      Unix.ftruncate t.fd header_len;
      Unix.fsync t.fd;
      ignore (Unix.lseek t.fd header_len Unix.SEEK_SET));
  t.n_records <- 0;
  t.size <- header_len

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with _ -> ()
  end
