(** Per-coding query evaluators (paper §4.3).

    Every evaluator returns the *match set*: the sorted, duplicate-free list
    of [(tid, node)] pairs such that the query embeds into tree [tid] with
    its root mapped to [node] — exactly {!Si_query.Matcher.corpus_roots}.

    - {b interval}: optimalCover; each chunk posting row exposes all chunk
      nodes (one row per instance x alignment); cut edges and same-label
      sibling distinctness are join predicates.  No validation phase.
    - {b root-split}: minRC; rows expose chunk roots only; joins on roots.
      In the one corner the paper does not treat — a same-label sibling
      group split across chunks with a member that is not a cover root —
      candidates are validated with the oracle matcher (DESIGN.md §6b).
    - {b filter}: optimalCover; chunk postings are tid sets; candidates =
      their intersection, validated with the oracle matcher.

    Each evaluator exists in two result-identical forms.  Without [cache],
    the materialized path: every touched posting decodes in full through
    {!Builder.find_exn}'s memo (the reference implementation the
    differential tests pin the streaming path against).  With [~cache],
    the streaming path: postings are walked through {!Cursor}s, so filter
    intersections leapfrog over the skip tables and joins stream the
    non-driving side ({!Join.merge_join_stream}), decoding only the blocks
    their tids land in, each through the caller's bounded {!Cache}.  The
    streaming path never writes to shared index state, so it is safe on
    concurrent domains over one handle (one cache per domain). *)

val run :
  index:Builder.t ->
  corpus:Corpus.t ->
  ?label_id:(Si_treebank.Label.t -> int) ->
  ?cache:Cursor.cache ->
  ?delta:Builder.t * Corpus.t * int ->
  ?limits:Limits.t ->
  Si_query.Ast.t ->
  ((int * int) list, Si_error.t) result
(** [label_id] maps process-global label ids into the index's stored id
    space (raising [Not_found] for labels unknown to the index); defaults
    to the identity, which is correct for an index built in this process.
    [delta = (dindex, dcorpus, base)] unions in the WAL delta index
    (DESIGN.md §13): the query also runs over [dindex] / [dcorpus] —
    materialized path, same [label_id], same resource gauge — with its
    local tids shifted by [base] (the main index's tree count), and the
    match streams concatenate; disjoint tid ranges keep the result sorted
    and duplicate-free.  Errors: [Corrupt] if a stored posting fails to
    decode; [Schema_mismatch] if a decoded posting's coding disagrees
    with the index scheme; with [limits] set, [Timeout] past the deadline
    and [Resource_exhausted] past a byte / step budget (unless
    [limits.partial], see {!run_outcome}).  A max-results trip silently
    truncates here — use {!run_outcome} to observe the flag. *)

val run_exn :
  index:Builder.t ->
  corpus:Corpus.t ->
  ?label_id:(Si_treebank.Label.t -> int) ->
  ?cache:Cursor.cache ->
  ?delta:Builder.t * Corpus.t * int ->
  ?limits:Limits.t ->
  Si_query.Ast.t ->
  (int * int) list
(** {!run} for callers already inside an {!Si_error.guard}: raises
    [Si_error.Error] instead of returning [Error]. *)

val run_outcome :
  index:Builder.t ->
  corpus:Corpus.t ->
  ?label_id:(Si_treebank.Label.t -> int) ->
  ?cache:Cursor.cache ->
  ?delta:Builder.t * Corpus.t * int ->
  ?limits:Limits.t ->
  ?shared:Limits.shared ->
  Si_query.Ast.t ->
  (Limits.outcome, Si_error.t) result
(** Resource-governed evaluation, the degradation contract (DESIGN.md §10):
    [limits] is checked cooperatively at merge-advance / block-decode
    granularity.  [truncated = false] means the match set is exact.
    [truncated = true] means evaluation stopped early — at the max-results
    cap, or at a deadline / budget trip under [limits.partial] — and
    [matches] holds only the results verified before the stop (sorted,
    duplicate-free, always a subset of the exact answer).  The contract
    spans both halves of a [?delta] union: one gauge governs main and
    delta evaluation, and a truncation in either leaves a correct subset. *)

val run_outcome_exn :
  index:Builder.t ->
  corpus:Corpus.t ->
  ?label_id:(Si_treebank.Label.t -> int) ->
  ?cache:Cursor.cache ->
  ?delta:Builder.t * Corpus.t * int ->
  ?limits:Limits.t ->
  ?shared:Limits.shared ->
  Si_query.Ast.t ->
  Limits.outcome
(** {!run_outcome}, raising [Si_error.Error].  [shared] makes this
    evaluation one leg of a sharded fan-out: bytes/steps account against
    the fan-out-wide gauge (superseding [limits]) and the deadline runs
    from the gauge's creation instant. *)

val cover_for : Builder.t -> Si_query.Ast.indexed -> Cover.t
(** The cover [run] uses: {!Cover.min_rc} under root-split coding,
    {!Cover.optimal_cover} otherwise. *)
