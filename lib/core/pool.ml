type job = Job : (unit -> 'a) * 'a slot -> job

and 'a slot = {
  s_lock : Mutex.t;
  s_cond : Condition.t;
  mutable s_result : ('a, exn) result option;
}

type worker = {
  w_lock : Mutex.t;
  w_cond : Condition.t;
  w_queue : job Queue.t;
}

type t = { workers : worker array }
type 'a task = 'a slot

let worker_loop w =
  while true do
    Mutex.lock w.w_lock;
    while Queue.is_empty w.w_queue do
      Condition.wait w.w_cond w.w_lock
    done;
    let (Job (f, slot)) = Queue.pop w.w_queue in
    Mutex.unlock w.w_lock;
    let result = try Ok (f ()) with e -> Error e in
    Mutex.lock slot.s_lock;
    slot.s_result <- Some result;
    Condition.signal slot.s_cond;
    Mutex.unlock slot.s_lock
  done

let create n =
  let n = max 1 n in
  let workers =
    Array.init n (fun _ ->
        {
          w_lock = Mutex.create ();
          w_cond = Condition.create ();
          w_queue = Queue.create ();
        })
  in
  Array.iter (fun w -> ignore (Domain.spawn (fun () -> worker_loop w))) workers;
  { workers }

let size t = Array.length t.workers

(* created on first use so processes that never shard pay nothing; the
   double-checked lock keeps concurrent first callers from racing two
   pools into existence *)
let global_pool : t option Atomic.t = Atomic.make None
let global_lock = Mutex.create ()

let global () =
  match Atomic.get global_pool with
  | Some p -> p
  | None ->
      Mutex.lock global_lock;
      let p =
        match Atomic.get global_pool with
        | Some p -> p
        | None ->
            let p = create (Domain.recommended_domain_count ()) in
            Atomic.set global_pool (Some p);
            p
      in
      Mutex.unlock global_lock;
      p

let submit t ~worker f =
  let w = t.workers.(worker mod Array.length t.workers) in
  let slot =
    { s_lock = Mutex.create (); s_cond = Condition.create (); s_result = None }
  in
  Mutex.lock w.w_lock;
  Queue.push (Job (f, slot)) w.w_queue;
  Condition.signal w.w_cond;
  Mutex.unlock w.w_lock;
  slot

let await slot =
  Mutex.lock slot.s_lock;
  while Option.is_none slot.s_result do
    Condition.wait slot.s_cond slot.s_lock
  done;
  let r = Option.get slot.s_result in
  Mutex.unlock slot.s_lock;
  r

let run_on t ~worker f = await (submit t ~worker f)
