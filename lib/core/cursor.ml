type cache = (string * int, Coding.posting) Cache.t

let create_cache ?budget () = Cache.create ?budget ~cost:Coding.heap_bytes ()

type t = {
  index : Builder.t;
  key : string;
  slot : Builder.slot;
  blocks : Coding.block array;
  cache : cache option;
  ctx : Limits.ctx option;  (* resource gauge of the governing query *)
  mutable bi : int;  (* current block *)
  mutable ei : int;  (* entry within the current block *)
  mutable decoded : Coding.posting option;  (* decode memo for block [bi] *)
}

let create ?cache ?ctx (index : Builder.t) key =
  match Builder.find_blocks index key with
  | None -> None
  | Some (slot, blocks) ->
      let bi = if slot.Builder.entries = 0 then Array.length blocks else 0 in
      Some { index; key; slot; blocks; cache; ctx; bi; ei = 0; decoded = None }

let entries t = t.slot.Builder.entries
let exhausted t = t.bi >= Array.length t.blocks

let ensure_decoded t =
  match t.decoded with
  | Some p -> p
  | None ->
      Failpoint.hit "cursor.decode";
      let b = t.blocks.(t.bi) in
      let charge =
        match t.ctx with
        | None -> None
        | Some c -> Some (fun bytes -> Limits.charge_decode c bytes)
      in
      let p =
        match t.cache with
        | None ->
            let p = Builder.decode_block t.index t.key t.slot b in
            (match charge with Some f -> f (Coding.heap_bytes p) | None -> ());
            p
        | Some c ->
            Cache.find_or_add ?charge c (t.key, t.bi) (fun () ->
                Builder.decode_block t.index t.key t.slot b)
      in
      t.decoded <- Some p;
      p

let peek_tid t =
  if exhausted t then -1
  else
    match t.decoded with
    | Some p -> Coding.tid_at p t.ei
    | None ->
        (* at a block start the skip table already knows the first tid
           (except for flat postings); mid-block positions must decode *)
        let ft = t.blocks.(t.bi).Coding.first_tid in
        if t.ei = 0 && ft >= 0 then ft
        else Coding.tid_at (ensure_decoded t) t.ei

let peek t = if exhausted t then None else Some (peek_tid t)

let current t = (ensure_decoded t, t.ei)

let advance t =
  t.ei <- t.ei + 1;
  if t.ei >= t.blocks.(t.bi).Coding.bentries then begin
    t.bi <- t.bi + 1;
    t.ei <- 0;
    t.decoded <- None
  end

(* least i in [lo, hi) with tid_at p i >= x; hi if none *)
let lower_bound_tid p lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Coding.tid_at p mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let seek t target =
  Failpoint.hit "cursor.seek";
  (match t.ctx with Some c -> Limits.step c | None -> ());
  if not (exhausted t) then begin
    let already_there =
      (* cheap checks first: current tid from the decode memo or skip table *)
      match t.decoded with
      | Some p -> Coding.tid_at p t.ei >= target
      | None ->
          let ft = t.blocks.(t.bi).Coding.first_tid in
          ft >= 0 && ft >= target
    in
    if not already_there then begin
      let n = Array.length t.blocks in
      (* fb = first later block whose first tid >= target.  Blocks before
         it are all < target except possibly the tail of block fb-1 (tids
         only become >= target once, so only one block can straddle).
         Fast path first: consecutive seeks usually stay in the current
         block, making the next block's first tid >= target — answered
         with one comparison instead of a skip-table binary search. *)
      let fb =
        if t.bi + 1 >= n || t.blocks.(t.bi + 1).Coding.first_tid >= target
        then t.bi + 1
        else begin
          let lo = ref (t.bi + 2) and hi = ref n in
          while !lo < !hi do
            let mid = (!lo + !hi) lsr 1 in
            if t.blocks.(mid).Coding.first_tid >= target then hi := mid
            else lo := mid + 1
          done;
          !lo
        end
      in
      let start = max t.bi (fb - 1) in
      if start <> t.bi then begin
        t.bi <- start;
        t.ei <- 0;
        t.decoded <- None
      end;
      let p = ensure_decoded t in
      let nb = t.blocks.(t.bi).Coding.bentries in
      let ei = lower_bound_tid p t.ei nb target in
      if ei < nb then t.ei <- ei
      else begin
        (* whole block below target: block fb (if any) starts at >= target *)
        t.bi <- t.bi + 1;
        t.ei <- 0;
        t.decoded <- None
      end
    end
  end
