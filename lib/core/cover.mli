(** Query decomposition into covers (paper §4.1–4.2).

    A cover partitions the query nodes into *chunks*: connected fragments
    joined only by child edges, each of size at most [mss].  [//] edges are
    forced cut points — index keys only materialise parent-child edges.
    Chunks are emitted in DFS order, so every chunk's incoming cut edge
    points into an earlier chunk.

    - {!optimal_cover} (filter & subtree-interval codings) packs each
      fragment greedily with first-fit-decreasing over child subtree sizes,
      absorbing partial subtrees when a whole child does not fit — the FFD
      bin-packing view under which the paper proves join-optimality for
      [mss <= 6].
    - {!min_rc} (root-split coding) additionally requires every cut edge's
      parent endpoint to be its chunk's {e root} (Def. 8), because
      root-split postings expose only instance-root intervals; it therefore
      absorbs only whole child subtrees, and any node with a [//] out-edge
      must become a chunk root. *)

type chunk = {
  root : int;  (** query node id; the chunk's join handle *)
  nodes : int list;  (** member query node ids, sorted *)
  fragment : int Si_subtree.Canonical.node;
      (** the chunk as a label tree, payloads = query node ids *)
}

type t = {
  chunks : chunk array;  (** DFS order; [chunks.(0)] holds query node 0 *)
  chunk_of : int array;  (** query node id -> chunk index *)
}

val optimal_cover : Si_query.Ast.indexed -> mss:int -> t
val min_rc : Si_query.Ast.indexed -> mss:int -> t

val joins : t -> int
(** Number of structural joins = number of cut edges = [chunks - 1]. *)

val cut_edges : Si_query.Ast.indexed -> t -> (int * int * Si_query.Ast.axis) list
(** [(parent_qnode, chunk_root_qnode, axis)] per non-first chunk, in chunk
    order. *)

val validate :
  Si_query.Ast.indexed -> mss:int -> root_split:bool -> t -> (unit, string) result
(** Checks cover validity: exact partition, connectivity by child edges,
    size bound, [//] edges cut, DFS ordering, and — when [root_split] —
    that every cut edge's parent endpoint is its chunk's root. *)
