(** Incremental integrity scrub over the lazily-verified mapped regions
    of an SIDX4 prefix (DESIGN.md §15).

    The O(1) SIDX4 open defers region CRC verification to first use,
    which moves corruption discovery to query time; the scrub closes that
    window by proactively hashing every lazily-verified region — the
    [.idx] key index, key directory and postings, and the [.trees]
    offsets and trees regions — under a byte/deadline budget, resuming
    across passes through a {!cursor}.  A CRC-failed postings region is
    localized to keys (defensive per-slot decodes) and a CRC-failed trees
    region to tids (defensive per-tid decodes); directory/offset damage
    has no finer grain than the region.

    The scrub is read-only except for the lazy verification flags of
    regions it proved {e clean} (so later queries skip the first-use CRC
    pass).  Quarantine policy — what to do about what it found — lives in
    {!Si}, which folds the report.  Failpoints: [scrub.pass] at every
    pass entry, [scrub.region] as each region's hash completes. *)

type budget = { max_bytes : int option; deadline_ns : int option }
(** Per-pass budget: stop after hashing [max_bytes] (localization decode
    work is charged by its region size) or after [deadline_ns] on the
    monotonic clock, whichever comes first.  [None] = unbounded. *)

val unbudgeted : budget

val budget : ?max_bytes:int -> ?deadline_ms:float -> unit -> budget

type report = {
  bytes_verified : int;  (** bytes charged against the budget this pass *)
  regions_ok : string list;  (** regions proved clean so far this cycle *)
  bad_regions : string list;  (** regions whose CRC failed this cycle *)
  bad_keys : string list;
      (** keys whose postings fail to decode (postings-region damage,
          localized) *)
  bad_trees : int list;
      (** tids whose records fail to decode (trees-region damage,
          localized) *)
  complete : bool;  (** the cursor wrapped: a full cycle just finished *)
  clean : bool;  (** [complete] and the cycle found nothing bad *)
}

type cursor
(** Resumable position inside one scrub cycle, including the partial
    checksum of the region being hashed.  One per handle generation — a
    cursor must not outlive the index/store it was walking (a repair or
    swap invalidates it). *)

val cursor : unit -> cursor

val pass :
  ?budget:budget ->
  cursor ->
  index:Builder.t ->
  store:Treestore.t option ->
  report
(** Run one budgeted scrub pass, resuming where the cursor stopped.  A
    heap (SIDX3) index with no store has nothing lazily verified and
    completes clean immediately.  Never raises on corrupt bytes — damage
    is reported, not thrown. *)
