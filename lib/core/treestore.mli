(** Zero-copy corpus store — the [.trees] sibling of an SIDX4 prefix.

    Trees live in the file in contiguous DFS order: per tree a node count,
    the preorder label ids (in the *stored* id space of the [.labels]
    sibling) and a balanced-parentheses bitmap (1 bit on entering a node,
    0 on leaving).  A u64 offset table makes tid -> record an O(1) array
    read, and the BP scan reconstructs exactly the {!Annotated.t} a Penn
    re-parse would build — (pre, post, level), parent and children arrays
    — so post-validation and subtree extraction never touch the [.dat]
    bracketing.  This is also the structure the SIDX4 interval postings
    share: they store only node *names* (tid, preorder rank) and resolve
    intervals against this store at decode time.

    {!open_} is O(1): map the file, verify the footer and header CRCs
    (52 fixed bytes), validate the region table.  The offsets and trees
    region CRCs are verified lazily on the first {!get}; trees materialize
    on demand into a per-tid memo (a benign-race memo — safe to share
    across query domains). *)

type t

val save : string -> relabel:(int -> int) -> Si_treebank.Annotated.t array -> unit
(** Serialize a corpus to [path] (plain write + fsync — callers stage to a
    temporary and rename, like the other prefix siblings).  [relabel]
    translates each node's live interned label id into the stored-id
    space of the [.labels] sibling being published alongside — the two
    id spaces diverge whenever the saving process interned labels in a
    different order than the stored table (e.g. a checkpoint in a
    process that replayed a WAL before touching the mapped corpus). *)

val open_ : relabel:(int -> int) -> string -> t
(** Map a store.  [relabel] translates stored label ids to live interned
    ids and must reject out-of-range ids with an {!Si_error} raise.
    Raises {!Si_error.Error}: [Io] on mapping failure, [Corrupt] on a
    damaged header, footer or region table. *)

val length : t -> int
(** Number of trees. *)

val get : t -> int -> Si_treebank.Annotated.t
(** Materialize tree [tid] (memoized).  First call verifies the body
    region CRCs.  Raises [Corrupt] on an out-of-range tid or damaged
    record — never crashes on hostile bytes. *)

val mapped_bytes : t -> int
val body_verified : t -> bool

val verify : t -> unit
(** Force the lazy body CRC verification now.  Raises [Corrupt]. *)

val crc_state : t -> (string * int * bool) list
(** Per-region [(name, bytes, verified)] for [stats]. *)

(** {2 Incremental scrub support (DESIGN.md §15)} *)

val scrub_regions : t -> (string * int * int * int) list
(** The two lazily-verified regions as [(name, offset, length, crc)] in
    file order: ["ts_offsets"], ["ts_trees"]. *)

val scrub_feed : t -> Crc32.t -> off:int -> len:int -> Crc32.t
(** Fold [len] mapped bytes at [off] into a running checksum. *)

val scrub_commit : t -> unit
(** Mark the lazy body verification done (the scrub proved {e both}
    region CRCs out of band — call only after ts_offsets and ts_trees
    both passed). *)

val scrub_decode : t -> int -> (unit, Si_error.t) result
(** Defensively decode tree [tid] without the whole-region CRC gate or
    the memo — the scrub's damage localizer for a CRC-failing trees
    region. *)
