(** The evaluators' view of the corpus: dense tids -> annotated trees.

    Either a fully-materialized array (build, SIDX1-3 open) or a mapped
    {!Treestore} materializing trees on demand (SIDX4 open).  [get] on a
    [Store] raises {!Si_error.Error} [Corrupt] for out-of-range tids or a
    damaged store — callers treat it exactly like a corrupt posting. *)

type t

val of_array : Si_treebank.Annotated.t array -> t
val of_store : Treestore.t -> t
val length : t -> int

val get : t -> int -> Si_treebank.Annotated.t
(** [Mem]: plain array access ([Invalid_argument] on bad tid — the
    evaluators bounds-check first).  [Store]: memoized decode. *)

val store : t -> Treestore.t option

val to_array : t -> Si_treebank.Annotated.t array
(** Materialize everything — oracle and test paths only. *)
