(** The error taxonomy of the index I/O and query layer.

    Every way a stored index can fail to serve a query maps to exactly one
    variant, and every load / find / query entry point in {!Builder}, {!Si}
    and {!Eval} returns it in a [result] rather than raising — a damaged
    byte stream degrades to a clean error, never a crash and never a silent
    wrong answer (the fuzz harness in [test/fuzz_main.ml] asserts this).

    [si_tool] maps each variant to a distinct exit code ({!exit_code});
    the table is documented in the README ("failure modes & exit codes"). *)

type t =
  | Corrupt of { path : string; offset : int; what : string }
      (** The file's bytes are not a well-formed index: bad magic,
          truncation, checksum mismatch, or a malformed record.  [offset]
          is the byte position of the first inconsistency (0 when the
          failure concerns the file as a whole). *)
  | Io of { path : string; what : string }
      (** The operating system refused the read or write ([Sys_error]). *)
  | Bad_query of string  (** The query string does not parse. *)
  | Schema_mismatch of { path : string; what : string }
      (** The parts of a stored index disagree with each other (e.g. the
          [.meta] scheme vs the [.idx] scheme byte, or the [.meta] recorded
          [.idx] checksum vs the file actually on disk), or a posting's
          coding disagrees with the index's declared scheme. *)
  | Timeout of { elapsed_ns : int; deadline_ns : int }
      (** The query overran its cooperative {!Limits} deadline (monotonic
          clock).  Surfaced within one posting block / merge advance of the
          overrun. *)
  | Resource_exhausted of { what : string; budget : int; spent : int }
      (** The query overran a {!Limits} work budget; [what] names it
          (["decoded-bytes"] or ["join-steps"]). *)
  | Internal of string
      (** An unexpected exception captured at a fault-isolation boundary
          (one slot of {!Si.query_batch}, or an armed {!Failpoint}) — the
          batch survives, the slot reports this. *)

exception Error of t
(** Internal control flow: decode paths deep inside the evaluator raise
    [Error]; the public entry points catch it at their boundary and return
    the payload as [result].  Only {!Builder.find_exn} and {!Builder.iter}
    let it escape a public signature (documented there). *)

val to_string : t -> string
(** One-line human-readable rendering, one distinct prefix per variant. *)

val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** The [si_tool] exit code: [Bad_query] → 2, [Corrupt] → 3, [Io] → 4,
    [Schema_mismatch] → 5, [Timeout] → 6, [Resource_exhausted] → 7,
    [Internal] → 8.  (0 = success, 1 = oracle mismatch.) *)

val is_corrupt : t -> bool
(** [true] exactly for [Corrupt _] — the one variant the integrity
    quarantine ({!Si}) may contain and self-heal; every other variant
    propagates unchanged. *)

val corrupt_path : t -> string option
(** The damaged file's path when {!is_corrupt}, [None] otherwise — the
    quarantine keys on it to distinguish index damage (repairable from
    the corpus store) from corpus-store damage (the source of truth,
    not repairable in place). *)

val raise_corrupt : path:string -> offset:int -> string -> 'a
val raise_io : path:string -> string -> 'a
val raise_schema : path:string -> string -> 'a

val guard : (unit -> 'a) -> ('a, t) result
(** [guard f] runs [f], catching {!Error} into [Error _]. *)
