type action =
  | Fail
  | Sys_fail
  | Exit of int
  | Delay of int  (* milliseconds *)
  | Short of int  (* truncate read_transform bytes to this length *)

type trigger =
  | Nth of int  (* fire on exactly the nth hit, 1-based *)
  | From of int  (* fire on every hit from the nth on *)
  | Prob of float * int64 ref  (* probability in [0,1], splitmix64 state *)

type point = { action : action; trigger : trigger; mutable hits : int }

(* [enabled] is read unlocked on the (overwhelmingly common) unarmed fast
   path; a stale read can only miss a hit that raced arming, which is fine
   — everything else goes through the mutex. *)
let enabled = ref false
let table : (string, point) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let env_var = "SI_FAILPOINTS"

(* minimal splitmix64 (same algorithm as Si_grammar.Prng — inlined rather
   than depending on the corpus-generation library from core) *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float state =
  Int64.to_float (Int64.shift_right_logical (splitmix state) 11)
  *. (1.0 /. 9007199254740992.0)

(* ---- spec parsing ------------------------------------------------------- *)

let parse_trigger s =
  if s = "" then Ok (Nth 1)
  else if String.length s > 1 && s.[String.length s - 1] = '+' then
    match int_of_string_opt (String.sub s 0 (String.length s - 1)) with
    | Some n when n >= 1 -> Ok (From n)
    | _ -> Error (Printf.sprintf "bad trigger %S (want N, N+ or p:PCT:SEED)" s)
  else
    match String.split_on_char ':' s with
    | [ "p"; pct; seed ] -> (
        match (float_of_string_opt pct, int_of_string_opt seed) with
        | Some p, Some sd when p >= 0. && p <= 100. ->
            Ok (Prob (p /. 100., ref (Int64.of_int sd)))
        | _ -> Error (Printf.sprintf "bad probabilistic trigger %S" s))
    | [ n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (Nth n)
        | _ -> Error (Printf.sprintf "bad trigger %S (want N, N+ or p:PCT:SEED)" s))
    | _ -> Error (Printf.sprintf "bad trigger %S" s)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "fail" ] -> Ok Fail
  | [ "sys" ] -> Ok Sys_fail
  | [ "exit" ] -> Ok (Exit 70)
  | [ "exit"; c ] -> (
      match int_of_string_opt c with
      | Some c when c >= 0 && c <= 255 -> Ok (Exit c)
      | _ -> Error (Printf.sprintf "bad exit code in %S" s))
  | [ "delay"; ms ] -> (
      match int_of_string_opt ms with
      | Some ms when ms >= 0 -> Ok (Delay ms)
      | _ -> Error (Printf.sprintf "bad delay in %S" s))
  | [ "short"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (Short n)
      | _ -> Error (Printf.sprintf "bad short-read length in %S" s))
  | _ ->
      Error
        (Printf.sprintf "unknown action %S (want fail, sys, exit[:C], delay:MS or short:N)" s)

let parse_clause clause =
  match String.index_opt clause '=' with
  | None -> Error (Printf.sprintf "missing '=' in failpoint clause %S" clause)
  | Some i -> (
      let name = String.trim (String.sub clause 0 i) in
      let rhs = String.sub clause (i + 1) (String.length clause - i - 1) in
      if name = "" then Error (Printf.sprintf "empty failpoint name in %S" clause)
      else
        let act, trig =
          match String.index_opt rhs '@' with
          | None -> (rhs, "")
          | Some j ->
              (String.sub rhs 0 j, String.sub rhs (j + 1) (String.length rhs - j - 1))
        in
        match (parse_action (String.trim act), parse_trigger (String.trim trig)) with
        | Ok action, Ok trigger -> Ok (name, { action; trigger; hits = 0 })
        | (Error _ as e), _ | _, (Error _ as e) ->
            (match e with Error m -> Error m | Ok _ -> assert false))

let arm spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match parse_clause c with
        | Ok p -> parse (p :: acc) rest
        | Error m -> Error m)
  in
  match parse [] clauses with
  | Error m -> Error m
  | Ok points ->
      Mutex.protect lock (fun () ->
          List.iter (fun (name, p) -> Hashtbl.replace table name p) points;
          enabled := Hashtbl.length table > 0);
      Ok ()

let arm_exn spec =
  match arm spec with Ok () -> () | Error m -> invalid_arg ("Failpoint.arm: " ^ m)

let arm_from_env () =
  match Sys.getenv_opt env_var with None -> Ok () | Some spec -> arm spec

let clear () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      enabled := false)

let active () = !enabled

(* ---- firing ------------------------------------------------------------- *)

let fires p =
  p.hits <- p.hits + 1;
  match p.trigger with
  | Nth n -> p.hits = n
  | From n -> p.hits >= n
  | Prob (prob, state) -> unit_float state < prob

(* decide under the lock, act outside it (an action may raise or sleep) *)
let armed_action name =
  if not !enabled then None
  else
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some p when fires p -> Some p.action
        | _ -> None)

let perform name = function
  | Fail ->
      raise (Si_error.Error (Si_error.Internal (Printf.sprintf "failpoint %s" name)))
  | Sys_fail -> raise (Sys_error (Printf.sprintf "failpoint %s" name))
  | Exit code ->
      Printf.eprintf "si: failpoint %s: simulated crash (exit %d)\n%!" name code;
      Unix._exit code
  | Delay ms -> Unix.sleepf (float_of_int ms /. 1000.)
  | Short _ -> ()  (* only meaningful at read_transform sites *)

let hit name =
  match armed_action name with None -> () | Some a -> perform name a

let read_transform name bytes =
  match armed_action name with
  | None -> bytes
  | Some (Short n) -> String.sub bytes 0 (min n (String.length bytes))
  | Some a ->
      perform name a;
      bytes

let known =
  [
    ("builder.save.tmp-open", "before creating the .idx temporary file");
    ("builder.save.write", "payload streamed to the temporary, before flush");
    ("builder.save.fsync", "after flush, before fsync");
    ("builder.save.rename", "after fsync, before the atomic rename");
    ("si.save.siblings", "all four files staged, before the publish renames");
    ("builder.load.read", "reading index bytes (supports short:N torn reads)");
    ("builder.load.map", "mapping an SIDX4 index file");
    ("builder.decode-block", "decoding one posting block");
    ("cursor.decode", "a cursor decoding its current block");
    ("cursor.seek", "a cursor skip-table seek");
    ("serve.accept", "a connection accepted, before it is enqueued");
    ("serve.parse", "a request line read, before it is parsed");
    ("serve.swap.open", "a SWAP/SIGHUP about to open the new index set");
    ("serve.swap.flip", "the new index opened, before the generation flip");
    ("wal.append.write", "a WAL record framed, before it is written");
    ("wal.append.fsync", "a WAL record written, before the fsync");
    ("wal.replay", "about to replay an existing WAL into the delta index");
    ("wal.truncate", "checkpoint published, before the WAL ftruncate");
    ("si.checkpoint.merge", "before merging the delta into the main postings");
    ("si.shard.eval.<k>", "shard k's leg of a sharded fan-out, before it runs");
    ("scrub.pass", "a scrub pass starting, before any region is hashed");
    ("scrub.region", "one scrubbed region fully hashed, before its verdict");
    ("si.repair.rebuild", "a repair about to rebuild the index from the corpus");
    ("si.repair.publish", "the repaired index built, before the staged publish");
    ("si.repair.wal-truncate", "repair published, before the WAL truncate");
  ]
