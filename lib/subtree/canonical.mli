(** Canonical forms and the key codec for unordered subtrees.

    An index key is the canonical byte string of an *unordered* labelled
    tree: children are recursively sorted by their own encoded bytes, and
    the canonical pre-order is flattened as, per node, [varint label-id]
    followed by one byte holding the node's subtree size (sizes are bounded
    by [mss] < 256) — the paper's [mss(log(mss+1) + log|Sigma|)]-bit
    flattening.

    The same codec serves both sides of the index: extraction canonicalises
    data instances (payloads = data node ids), query covers canonicalise
    query fragments (payloads = query node ids).  When a key is *symmetric*
    — two sibling subtrees encode to the same bytes — a query fragment
    admits several payload orders ("alignments") onto the key's positions;
    {!encodings} enumerates them.  This is what the paper's [order] field
    disambiguates. *)

type 'a node = { label : Si_treebank.Label.t; payload : 'a; kids : 'a node list }

val of_tree : Si_treebank.Tree.t -> unit node
val size : 'a node -> int

val encode :
  ?label_id:(Si_treebank.Label.t -> int) -> 'a node -> string * 'a array
(** [encode n] is [(key_bytes, payloads)] with payloads in canonical
    pre-order (the root is always position 0).  [label_id] remaps label ids
    into the id space the key is encoded in (defaults to the identity; used
    to resolve the process-global table against a stored index's table).
    Note the canonical *order* depends on the id space, so both sides of a
    lookup must encode through the same mapping. *)

val encodings :
  ?label_id:(Si_treebank.Label.t -> int) -> 'a node -> string * 'a array list
(** [(key_bytes, orders)] where [orders] enumerates every distinct payload
    order induced by permuting equal-encoding sibling runs (the key's
    automorphisms).  The first order equals [snd (encode n)].  The
    enumeration is capped at 256 orders. *)

val encode_tree :
  ?label_id:(Si_treebank.Label.t -> int) -> Si_treebank.Tree.t -> string
(** Canonical bytes of a plain tree. *)

val decode : string -> Si_treebank.Tree.t
(** Rebuild the canonical tree from key bytes (labels resolved through the
    process-global table); inverse of {!encode_tree} up to child order. *)

val key_size : string -> int
(** Number of nodes in the key (the root's size byte). *)
