open Si_treebank

(* Instances rooted at [v] with at most [budget] nodes (budget >= 1),
   as canonical nodes with data node ids for payloads. *)
let rec instances doc v budget =
  if budget < 1 then []
  else
    let kid_choices = choose doc doc.Annotated.children.(v) (budget - 1) in
    List.map
      (fun kids -> { Canonical.label = doc.Annotated.label.(v); payload = v; kids })
      kid_choices

(* All ways to pick sub-instances below a (surface-ordered) child list with
   total size <= budget; each child is either skipped or contributes one of
   its own instances. *)
and choose doc kids budget =
  match kids with
  | [] -> [ [] ]
  | k :: rest ->
      let without = choose doc rest budget in
      let with_k =
        if budget < 1 then []
        else
          List.concat_map
            (fun sub ->
              let s = Canonical.size sub in
              List.map (fun tail -> sub :: tail) (choose doc rest (budget - s)))
            (instances doc k budget)
      in
      without @ with_k

let fold_instances ?label_id doc ~mss ~init ~f =
  if mss < 1 then invalid_arg "Extract.fold_instances: mss must be >= 1";
  let n = Annotated.size doc in
  let acc = ref init in
  for v = 0 to n - 1 do
    List.iter
      (fun inst ->
        let key, nodes = Canonical.encode ?label_id inst in
        acc := f !acc ~key ~nodes)
      (instances doc v mss)
  done;
  !acc

let count_instances doc ~mss =
  fold_instances doc ~mss ~init:0 ~f:(fun acc ~key:_ ~nodes:_ -> acc + 1)

let unique_keys docs ~mss =
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun doc ->
      fold_instances doc ~mss ~init:() ~f:(fun () ~key ~nodes:_ ->
          if not (Hashtbl.mem seen key) then Hashtbl.add seen key ()))
    docs;
  Hashtbl.length seen
