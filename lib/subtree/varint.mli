(** LEB128 unsigned varints.

    Used by the canonical key codec and the posting flattener.  Will move
    into [lib/storage] when the disk pager lands (DESIGN.md §3). *)

val write : Buffer.t -> int -> unit
(** [write buf v] appends the varint for [v]; [v] must be non-negative. *)

val read : string -> int -> int * int
(** [read s off] is [(value, next_off)]. Raises [Invalid_argument] on a
    negative offset, truncated input, an overlong encoding (more than nine
    continuation bytes), or a value overflowing the 63-bit [int] — the
    input bytes are never trusted. *)

val size : int -> int
(** Encoded byte length of [v]. *)
