open Si_treebank

type 'a node = { label : Label.t; payload : 'a; kids : 'a node list }

let rec of_tree (t : Tree.t) =
  { label = t.Tree.label; payload = (); kids = List.map of_tree t.Tree.children }

let rec size n = List.fold_left (fun acc k -> acc + size k) 1 n.kids

let header buf label_id label sz =
  Varint.write buf (label_id label);
  if sz > 255 then invalid_arg "Canonical.encode: subtree larger than 255 nodes";
  Buffer.add_char buf (Char.chr sz)

let encode ?(label_id = Fun.id) n =
  let rec enc n =
    let kids = List.map enc n.kids in
    let sorted =
      List.stable_sort (fun (b1, _, _) (b2, _, _) -> String.compare b1 b2) kids
    in
    let sz = List.fold_left (fun acc (_, s, _) -> acc + s) 1 kids in
    let buf = Buffer.create 16 in
    header buf label_id n.label sz;
    List.iter (fun (b, _, _) -> Buffer.add_string buf b) sorted;
    let payloads = n.payload :: List.concat_map (fun (_, _, p) -> p) sorted in
    (Buffer.contents buf, sz, payloads)
  in
  let b, _, p = enc n in
  (b, Array.of_list p)

(* ---- alignment enumeration -------------------------------------------- *)

let max_orders = 256

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let take n l = List.filteri (fun i _ -> i < n) l

(* cartesian concat: sequences = list of alternatives (each a payload list);
   combine left-to-right, truncating at [max_orders] *)
let cartesian (alternatives : 'a list list list) : 'a list list =
  List.fold_left
    (fun acc alts ->
      take max_orders
        (List.concat_map (fun prefix -> List.map (fun a -> prefix @ a) alts) acc))
    [ [] ] alternatives

let encodings ?(label_id = Fun.id) n =
  (* returns, per node: encoded bytes, size, and all payload orders *)
  let rec enc n =
    let kids = List.map enc n.kids in
    let sorted =
      List.stable_sort (fun (b1, _, _) (b2, _, _) -> String.compare b1 b2) kids
    in
    let sz = List.fold_left (fun acc (_, s, _) -> acc + s) 1 kids in
    let buf = Buffer.create 16 in
    header buf label_id n.label sz;
    List.iter (fun (b, _, _) -> Buffer.add_string buf b) sorted;
    (* group consecutive equal-encoding children; permuting members of a
       group leaves the key bytes unchanged but permutes payloads *)
    let groups =
      List.fold_left
        (fun groups ((b, _, _) as child) ->
          match groups with
          | ((b', _, _) :: _ as g) :: rest when String.equal b b' ->
              (child :: g) :: rest
          | _ -> [ child ] :: groups)
        [] sorted
      |> List.rev_map List.rev
    in
    let group_orders =
      List.map
        (fun g ->
          (* all payload orders of the group: permutations of members,
             each member contributing each of its own orders *)
          take max_orders
            (List.concat_map
               (fun perm -> cartesian (List.map (fun (_, _, orders) -> orders) perm))
               (permutations g)))
        groups
    in
    let orders =
      take max_orders
        (List.map (fun o -> n.payload :: o) (cartesian group_orders))
    in
    (Buffer.contents buf, sz, orders)
  in
  let b, _, orders = enc n in
  let orders = List.sort_uniq compare (List.map Array.of_list orders) in
  (* put the default (encode) order first *)
  let default = snd (encode ~label_id n) in
  let orders = default :: List.filter (fun o -> o <> default) orders in
  (b, orders)

let encode_tree ?label_id t = fst (encode ?label_id (of_tree t))

let decode key =
  let rec dec off =
    let lab, off = Varint.read key off in
    if off >= String.length key then invalid_arg "Canonical.decode: truncated";
    let sz = Char.code key.[off] in
    let off = ref (off + 1) in
    let remaining = ref (sz - 1) in
    let kids = ref [] in
    while !remaining > 0 do
      let t, next = dec !off in
      kids := t :: !kids;
      remaining := !remaining - Tree.size t;
      off := next
    done;
    ({ Tree.label = lab; children = List.rev !kids }, !off)
  in
  let t, off = dec 0 in
  if off <> String.length key then invalid_arg "Canonical.decode: trailing bytes";
  t

let key_size key =
  let _, off = Varint.read key 0 in
  Char.code key.[off]
