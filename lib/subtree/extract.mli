(** Connected-subtree instance enumeration.

    [fold_instances doc ~mss] enumerates every *instance* — every connected
    subtree of [doc] with between 1 and [mss] nodes — exactly once: each
    instance is generated at its unique root by choosing a subset of the
    root's children and, recursively, a sub-instance below each chosen
    child.  Instances are reported as their canonical key bytes plus their
    data node ids in canonical pre-order ([nodes.(0)] is the instance
    root). *)

val fold_instances :
  ?label_id:(int -> int) ->
  Si_treebank.Annotated.t ->
  mss:int ->
  init:'acc ->
  f:('acc -> key:string -> nodes:int array -> 'acc) ->
  'acc
(** [?label_id] remaps process-global label ids into the id space the keys
    are encoded in (see {!Canonical.encode}) — the WAL delta index builds
    its keys in a stored index's id space this way.  Default: identity. *)

val count_instances : Si_treebank.Annotated.t -> mss:int -> int
(** Number of instances ([fold_instances] with a counter). *)

val unique_keys : Si_treebank.Annotated.t list -> mss:int -> int
(** Number of distinct canonical keys across a corpus — the index key count
    of Fig. 2. *)
