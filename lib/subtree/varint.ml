let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let read s off =
  let n = String.length s in
  let rec go off shift acc =
    if off >= n then invalid_arg "Varint.read: truncated";
    let b = Char.code s.[off] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

let size v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go (max v 0) 1
