let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* 9 continuation groups of 7 bits cover the 63-bit OCaml int; a byte at
   shift > 56 (or a set bit 62 = the sign bit) cannot come from [write]. *)
let read s off =
  let n = String.length s in
  let rec go off shift acc =
    if off >= n then invalid_arg "Varint.read: truncated";
    if shift > 56 then invalid_arg "Varint.read: overlong varint";
    let b = Char.code (String.unsafe_get s off) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then invalid_arg "Varint.read: overflow";
    if b land 0x80 = 0 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  if off < 0 then invalid_arg "Varint.read: negative offset";
  go off 0 0

let size v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go (max v 0) 1
