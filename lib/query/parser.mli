(** Query parser.

    Grammar:
    {v
      query    ::= label child*
      child    ::= '(' '//'? query ')'
      label    ::= one or more characters excluding '(' ')' '/' and whitespace
    v}

    Examples: [S(NP(DT)(NN))(VP)], [S(NP)(VP(//NP(NN)))].  Whitespace
    between tokens is ignored.  [parse (Ast.to_string q) = Ok q]. *)

val parse : string -> (Ast.t, string) result
val parse_exn : string -> Ast.t
(** Raises [Failure] with the error message. *)
