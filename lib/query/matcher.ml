open Si_treebank

module IntSet = Set.Make (Int)

let rec matches_at doc (q : Ast.t) v =
  doc.Annotated.label.(v) = q.Ast.label && place doc q.Ast.children IntSet.empty v

and place doc children used v =
  match children with
  | [] -> true
  | (axis, qc) :: rest ->
      let candidates =
        match axis with
        | Ast.Child -> doc.Annotated.children.(v)
        | Ast.Descendant -> Annotated.descendants doc v
      in
      List.exists
        (fun d ->
          (not (IntSet.mem d used))
          && matches_at doc qc d
          && place doc rest (IntSet.add d used) v)
        candidates

let roots doc q =
  let n = Annotated.size doc in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if matches_at doc q v then acc := v :: !acc
  done;
  !acc

let corpus_roots docs q =
  let acc = ref [] in
  Array.iteri
    (fun tid doc ->
      List.iter (fun v -> acc := (tid, v) :: !acc) (roots doc q))
    docs;
  List.sort compare !acc
