exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

let is_label_char = function
  | '(' | ')' | '/' | ' ' | '\t' | '\n' | '\r' -> false
  | _ -> true

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let label () =
    skip_ws ();
    let start = !pos in
    while !pos < n && is_label_char s.[!pos] do
      incr pos
    done;
    if !pos = start then
      fail "expected a label at offset %d%s" start
        (if start < n then Printf.sprintf " (found %C)" s.[start] else " (end of input)");
    String.sub s start (!pos - start)
  in
  let rec query () =
    let name = label () in
    let children = ref [] in
    skip_ws ();
    while !pos < n && s.[!pos] = '(' do
      incr pos;
      skip_ws ();
      let axis =
        if !pos + 1 < n && s.[!pos] = '/' && s.[!pos + 1] = '/' then begin
          pos := !pos + 2;
          Ast.Descendant
        end
        else if !pos < n && s.[!pos] = '/' then fail "single '/' at offset %d (use '//')" !pos
        else Ast.Child
      in
      let child = query () in
      skip_ws ();
      if !pos >= n || s.[!pos] <> ')' then fail "missing ')' at offset %d" !pos;
      incr pos;
      children := (axis, child) :: !children;
      skip_ws ()
    done;
    Ast.make name (List.rev !children)
  in
  match
    let q = query () in
    skip_ws ();
    if !pos <> n then fail "trailing input at offset %d" !pos;
    q
  with
  | q -> Ok q
  | exception Err msg -> Error msg

let parse_exn s =
  match parse s with Ok q -> q | Error msg -> failwith ("Parser.parse: " ^ msg)
