open Si_treebank

type axis = Child | Descendant
type t = { label : Label.t; children : (axis * t) list }

let make name children = { label = Label.intern name; children }

let rec of_tree (t : Tree.t) =
  { label = t.Tree.label; children = List.map (fun c -> (Child, of_tree c)) t.Tree.children }

let rec size t = List.fold_left (fun acc (_, c) -> acc + size c) 1 t.children

let rec to_string t =
  let child (axis, c) =
    Printf.sprintf "(%s%s)" (match axis with Child -> "" | Descendant -> "//") (to_string c)
  in
  Label.name t.label ^ String.concat "" (List.map child t.children)

let rec equal a b =
  a.label = b.label
  && List.equal
       (fun (ax1, c1) (ax2, c2) -> ax1 = ax2 && equal c1 c2)
       a.children b.children

type indexed = {
  ast : t;
  labels : Label.t array;
  parent : int array;
  axis : axis array;
  children : int list array;
  size_of : int array;
}

let count (ix : indexed) = Array.length ix.labels

let index ast =
  let n = size ast in
  let labels = Array.make n 0 in
  let parent = Array.make n (-1) in
  let axis = Array.make n Child in
  let children = Array.make n [] in
  let size_of = Array.make n 0 in
  let next = ref 0 in
  let rec walk t ~parent_id ~ax =
    let id = !next in
    incr next;
    labels.(id) <- t.label;
    parent.(id) <- parent_id;
    axis.(id) <- ax;
    let kids =
      List.map (fun (ax, c) -> walk c ~parent_id:id ~ax) t.children
    in
    children.(id) <- kids;
    size_of.(id) <- List.fold_left (fun acc k -> acc + size_of.(k)) 1 kids;
    id
  in
  let (_ : int) = walk ast ~parent_id:(-1) ~ax:Child in
  { ast; labels; parent; axis; children; size_of }

let node ix id =
  let rec build id =
    {
      label = ix.labels.(id);
      children = List.map (fun k -> (ix.axis.(k), build k)) ix.children.(id);
    }
  in
  build id
