(** Brute-force oracle matcher.

    The reference semantics every index evaluator is differentially tested
    against: unordered embeddings, [/] = child, [//] = proper descendant,
    sibling query nodes bound to pairwise-distinct data nodes.  A match is
    identified by the data node the query *root* maps to; [roots] returns
    each such node once, however many embeddings extend it. *)

val matches_at : Si_treebank.Annotated.t -> Ast.t -> int -> bool
(** Does the query embed with its root mapped to data node [v]? *)

val roots : Si_treebank.Annotated.t -> Ast.t -> int list
(** All data nodes the query root can map to, in pre-order. *)

val corpus_roots : Si_treebank.Annotated.t array -> Ast.t -> (int * int) list
(** [(tid, node)] pairs over a corpus, sorted. *)
