(** Query trees.

    A query is an unordered labelled tree whose edges carry an axis: [/]
    (child) or [//] (proper descendant).  Matching semantics (DESIGN.md
    §6b): sibling query nodes must map to pairwise-distinct data nodes
    (injective per sibling set), consistent with index extraction, which
    always picks distinct children. *)

type axis = Child | Descendant

type t = { label : Si_treebank.Label.t; children : (axis * t) list }

val make : string -> (axis * t) list -> t
val of_tree : Si_treebank.Tree.t -> t
(** All edges become [/] (child) edges. *)

val size : t -> int
val to_string : t -> string
(** Query syntax: [label(child)...], [(//child)] for descendant edges; the
    parser's inverse. *)

val equal : t -> t -> bool

(** Flattened form with pre-order node ids, used by cover decomposition. *)
type indexed = private {
  ast : t;
  labels : Si_treebank.Label.t array;  (** label per node id *)
  parent : int array;  (** parent id, [-1] at the root *)
  axis : axis array;  (** axis of the edge from the parent; [Child] at root *)
  children : int list array;
  size_of : int array;  (** subtree size per node *)
}

val index : t -> indexed
val count : indexed -> int
val node : indexed -> int -> t
(** The sub-query rooted at node [id]. *)
