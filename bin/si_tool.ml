(* si_tool — the subtree-index pipeline from the command line:
   gen -> build -> query / stats. *)

open Cmdliner

let scheme_conv =
  let parse s = Si_core.Coding.scheme_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf s = Format.pp_print_string ppf (Si_core.Coding.scheme_to_string s) in
  Arg.conv (parse, print)

(* Every Si_error variant maps to a distinct message and exit code
   (README "failure modes"): 1 oracle mismatch, 2 bad query, 3 corrupt
   index, 4 i/o error, 5 schema mismatch, 6 timeout, 7 resource budget
   exhausted, 8 internal fault. *)
let fail_si e =
  Printf.eprintf "si_tool: %s\n" (Si_core.Si_error.to_string e);
  exit (Si_core.Si_error.exit_code e)

let ok_or_fail = function Ok v -> v | Error e -> fail_si e

(* ---- resource limits (query / serve) ------------------------------------ *)

let limits_of deadline_ms max_steps max_decoded_bytes max_results partial =
  Si_core.Limits.v
    ?deadline_ns:(Option.map (fun ms -> int_of_float (ms *. 1e6)) deadline_ms)
    ?max_decoded_bytes ?max_join_steps:max_steps ?max_results ~partial ()

let limits_term =
  let deadline_ms =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-query wall deadline in milliseconds (monotonic clock); \
                 exceeding it is a timeout (exit 6) unless $(b,--partial).")
  in
  let max_steps =
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
           ~doc:"Per-query budget on join/merge/validation steps; \
                 exceeding it exhausts the resource budget (exit 7) unless \
                 $(b,--partial).")
  in
  let max_decoded_bytes =
    Arg.(value & opt (some int) None & info [ "max-decoded-bytes" ] ~docv:"BYTES"
           ~doc:"Per-query budget on decoded posting bytes (cache hits are \
                 free); exceeding it exhausts the resource budget (exit 7) \
                 unless $(b,--partial).")
  in
  let max_results =
    Arg.(value & opt (some int) None & info [ "max-results" ] ~docv:"N"
           ~doc:"Keep at most N matches; a capped answer is reported as \
                 truncated, never as an error.")
  in
  let partial =
    Arg.(value & flag & info [ "partial" ]
           ~doc:"Degrade deadline/budget overruns to a truncated result \
                 (the matches verified so far) instead of an error.")
  in
  Term.(const limits_of $ deadline_ms $ max_steps $ max_decoded_bytes
        $ max_results $ partial)

(* ---- gen --------------------------------------------------------------- *)

let gen n seed output =
  let trees = Si_grammar.Generator.corpus ~seed ~n () in
  (match output with
  | Some path -> Si_treebank.Penn.write_file path trees
  | None ->
      List.iter (fun t -> print_endline (Si_treebank.Tree.to_string t)) trees);
  let (`Avg avg), (`Max mx), (`Nodes nodes) =
    Si_grammar.Generator.branching_stats trees
  in
  Printf.eprintf "generated %d trees, %d nodes (avg branching %.2f, max %d)\n" n
    nodes avg mx

let gen_cmd =
  let n =
    Arg.(value & opt int 1000 & info [ "n"; "sentences" ] ~docv:"N" ~doc:"Number of parse trees.")
  in
  let seed =
    Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output corpus file (Penn format, one tree per line); stdout if omitted.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a seeded PCFG corpus of parse trees.")
    Term.(const gen $ n $ seed $ output)

(* ---- build ------------------------------------------------------------- *)

let format_conv =
  let parse = function
    | "sidx3" -> Ok `Sidx3
    | "sidx4" -> Ok `Sidx4
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (want sidx3 or sidx4)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf (match f with `Sidx3 -> "sidx3" | `Sidx4 -> "sidx4")
  in
  Arg.conv (parse, print)

let build corpus prefix scheme mss domains shards format failpoints =
  if domains < 1 then begin
    Printf.eprintf "si_tool: --domains must be >= 1 (got %d)\n" domains;
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "si_tool: --shards must be >= 1 (got %d)\n" shards;
    exit 2
  end;
  (match failpoints with
  | None -> ()
  | Some spec -> (
      match Si_core.Failpoint.arm spec with
      | Ok () -> ()
      | Error what ->
          Printf.eprintf "si_tool: bad --failpoints spec: %s\n" what;
          exit 2));
  let trees =
    try Si_treebank.Penn.read_file corpus with
    | Sys_error what -> fail_si (Si_core.Si_error.Io { path = corpus; what })
    | Failure what ->
        fail_si (Si_core.Si_error.Corrupt { path = corpus; offset = 0; what })
  in
  let fmt_str = match format with `Sidx3 -> "sidx3" | `Sidx4 -> "sidx4" in
  let t0 = Unix.gettimeofday () in
  if shards = 1 then begin
    let si =
      try Si_core.Si.build ~domains ~format ~scheme ~mss ~trees ~prefix ()
      with Si_core.Si_error.Error e -> fail_si e
    in
    let dt = Unix.gettimeofday () -. t0 in
    let s = Si_core.Si.stats si in
    Printf.printf
      "built %s %s index: mss=%d domains=%d trees=%d nodes=%d keys=%d postings=%d idx_bytes=%d (%.2fs)\n"
      fmt_str
      (Si_core.Coding.scheme_to_string scheme)
      mss domains s.Si_core.Builder.trees s.Si_core.Builder.nodes
      s.Si_core.Builder.keys s.Si_core.Builder.postings s.Si_core.Builder.bytes
      dt
  end
  else begin
    let sh =
      match
        Si_core.Si.build_sharded ~domains ~format ~shards ~scheme ~mss ~trees
          prefix
      with
      | r -> ok_or_fail r
      | exception Si_core.Si_error.Error e -> fail_si e
      | exception Sys_error what ->
          fail_si (Si_core.Si_error.Io { path = prefix; what })
    in
    let dt = Unix.gettimeofday () -. t0 in
    let hs = Si_core.Si.shard_handles sh in
    let agg f =
      Array.fold_left (fun acc si -> acc + f (Si_core.Si.stats si)) 0 hs
    in
    Printf.printf
      "built sharded %s %s index: shards=%d mss=%d trees=%d nodes=%d keys=%d \
       postings=%d idx_bytes=%d (%.2fs)\n"
      fmt_str
      (Si_core.Coding.scheme_to_string scheme)
      shards mss
      (agg (fun s -> s.Si_core.Builder.trees))
      (agg (fun s -> s.Si_core.Builder.nodes))
      (agg (fun s -> s.Si_core.Builder.keys))
      (agg (fun s -> s.Si_core.Builder.postings))
      (agg (fun s -> s.Si_core.Builder.bytes))
      dt;
    Array.iteri
      (fun i si ->
        let s = Si_core.Si.stats si in
        Printf.printf "  shard %d: trees=%d keys=%d postings=%d idx_bytes=%d\n"
          i s.Si_core.Builder.trees s.Si_core.Builder.keys
          s.Si_core.Builder.postings s.Si_core.Builder.bytes)
      hs
  end

let corpus_arg =
  Arg.(required & opt (some file) None & info [ "corpus" ] ~docv:"FILE" ~doc:"Corpus file from $(b,gen).")

let prefix_arg =
  Arg.(value & opt string "ix" & info [ "prefix" ] ~docv:"PREFIX"
         ~doc:"Index file prefix (writes/reads PREFIX.idx, .dat, .labels, .meta).")

let build_cmd =
  let scheme =
    Arg.(value & opt scheme_conv Si_core.Coding.Root_split & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Posting coding: filter, interval or root-split.")
  in
  let mss =
    Arg.(value & opt int 3 & info [ "mss" ] ~docv:"MSS" ~doc:"Maximum subtree size of index keys.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Shard construction across N OCaml domains (output is \
                 identical to a sequential build).")
  in
  let format =
    Arg.(value & opt format_conv `Sidx3 & info [ "format" ] ~docv:"FMT"
           ~doc:"On-disk container: $(b,sidx3) (default, eager checksummed \
                 load) or $(b,sidx4) (mmap-resident, O(1) open, writes the \
                 PREFIX.trees corpus store alongside).")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Split the corpus into N per-shard indexes \
                 (PREFIX.shard0 .. PREFIX.shardN-1 plus a PREFIX.shards \
                 manifest); the deterministic router assigns every tree \
                 id to its shard and queries fan out / merge over the \
                 set.  Per-shard builds run in parallel on the worker \
                 pool.")
  in
  let failpoints =
    Arg.(value & opt (some string) None & info [ "failpoints" ] ~docv:"SPEC"
           ~doc:"Arm fault-injection points for this run (also readable \
                 from \\$SI_FAILPOINTS); see $(b,si_tool failpoints) for \
                 the grammar and the known points.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a subtree index over a corpus.")
    Term.(const build $ corpus_arg $ prefix_arg $ scheme $ mss $ domains
          $ shards $ format $ failpoints)

(* ---- query ------------------------------------------------------------- *)

(* one query per line; blank lines and #-comments skipped *)
let read_queries path =
  let lines =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    with Sys_error what -> fail_si (Si_core.Si_error.Io { path; what })
  in
  lines
  |> List.filter (fun l -> String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> Array.of_list

let parse_query qstr =
  match Si_query.Parser.parse qstr with
  | Ok q -> q
  | Error e -> fail_si (Si_core.Si_error.Bad_query e)

(* ---- handle dispatch: every verb below serves "a prefix", sharded
   (PREFIX.shards manifest) or not -------------------------------------- *)

let open_any_or_fail ?cache_budget prefix =
  match Si_core.Si.open_any ?cache_budget prefix with
  | r -> ok_or_fail r
  | exception Sys_error what ->
      fail_si (Si_core.Si_error.Io { path = prefix; what })

let query_outcome_any ~limits h qstr =
  match h with
  | Si_core.Si.Single si -> Si_core.Si.query_outcome ~limits si qstr
  | Si_core.Si.Sharded sh ->
      Result.map
        (fun so -> so.Si_core.Si.so_outcome)
        (Si_core.Si.query_outcome_sharded ~limits sh qstr)

let oracle_any h q =
  match h with
  | Si_core.Si.Single si -> Si_core.Si.oracle si q
  | Si_core.Si.Sharded sh -> Si_core.Si.oracle_sharded sh q

let sentence_any h tid =
  match h with
  | Si_core.Si.Single si -> Si_core.Si.sentence si tid
  | Si_core.Si.Sharded sh -> Si_core.Si.sentence_sharded sh tid

(* summed over the member shards for a sharded handle *)
let cache_stats_any h =
  match h with
  | Si_core.Si.Single si -> Si_core.Si.cache_stats si
  | Si_core.Si.Sharded sh ->
      Array.fold_left
        (fun (acc : Si_core.Cache.stats) si ->
          let c = Si_core.Si.cache_stats si in
          {
            acc with
            Si_core.Cache.hits = acc.Si_core.Cache.hits + c.Si_core.Cache.hits;
            misses = acc.Si_core.Cache.misses + c.Si_core.Cache.misses;
            evictions = acc.Si_core.Cache.evictions + c.Si_core.Cache.evictions;
            resident = acc.Si_core.Cache.resident + c.Si_core.Cache.resident;
            entries = acc.Si_core.Cache.entries + c.Si_core.Cache.entries;
          })
        (Si_core.Cache.zero_stats 0)
        (Si_core.Si.shard_handles sh)

(* evaluate one query against an open handle, with the optional oracle
   cross-check (skipped for truncated answers — a degraded prefix cannot
   match the full oracle set); returns the outcome *)
let eval_checked h qstr ~limits ~check_oracle =
  let o = ok_or_fail (query_outcome_any ~limits h qstr) in
  if check_oracle then begin
    if o.Si_core.Limits.truncated then
      Printf.eprintf "oracle check skipped (%s): result truncated by limits\n"
        qstr
    else begin
      let want = oracle_any h (parse_query qstr) in
      if o.Si_core.Limits.matches <> want then begin
        Printf.eprintf "oracle MISMATCH: index %d matches, oracle %d\n"
          (List.length o.Si_core.Limits.matches)
          (List.length want);
        exit 1
      end
    end
  end;
  o

let query prefix qstr queries_file sentences check_oracle limits =
  let h = open_any_or_fail prefix in
  match (qstr, queries_file) with
  | None, None ->
      Printf.eprintf "si_tool: query needs a QUERY argument or --queries FILE\n";
      exit 2
  | Some _, Some _ ->
      Printf.eprintf "si_tool: pass either a QUERY argument or --queries, not both\n";
      exit 2
  | Some qstr, None ->
      let o = eval_checked h qstr ~limits ~check_oracle in
      let matches = o.Si_core.Limits.matches in
      Printf.printf "%d matches%s\n" (List.length matches)
        (if o.Si_core.Limits.truncated then " (truncated)" else "");
      if sentences then
        List.iter
          (fun (tid, node) ->
            let t = sentence_any h tid in
            Printf.printf "%d:%d %s\n" tid node (Si_treebank.Tree.to_string t))
          matches;
      if check_oracle && not o.Si_core.Limits.truncated then
        print_endline "oracle: OK"
  | None, Some file ->
      (* batch: one open, N evaluations over the handle's shared cache *)
      let qs = read_queries file in
      let t0 = Si_core.Monotonic.now_ns () in
      let total = ref 0 in
      let truncated = ref 0 in
      Array.iter
        (fun qstr ->
          let o = eval_checked h qstr ~limits ~check_oracle in
          let n = List.length o.Si_core.Limits.matches in
          total := !total + n;
          if o.Si_core.Limits.truncated then begin
            incr truncated;
            Printf.printf "%s\t%d\ttruncated\n" qstr n
          end
          else Printf.printf "%s\t%d\n" qstr n)
        qs;
      let dt = Si_core.Monotonic.elapsed_s t0 in
      let cs = cache_stats_any h in
      Printf.eprintf
        "evaluated %d queries (%d matches%s) in %.3fs over one open; cache \
         hits=%d misses=%d evictions=%d%s\n"
        (Array.length qs) !total
        (if !truncated > 0 then Printf.sprintf ", %d truncated" !truncated
         else "")
        dt cs.Si_core.Cache.hits cs.Si_core.Cache.misses
        cs.Si_core.Cache.evictions
        (if check_oracle then "; oracle: OK" else "")

let query_cmd =
  let qstr =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. 'S(NP(DT)(NN))(VP)'; use (//q) for descendant edges.")
  in
  let queries_file =
    Arg.(value & opt (some file) None & info [ "queries" ] ~docv:"FILE"
           ~doc:"Evaluate every query in FILE (one per line, # comments) \
                 against a single index open instead of paying one open per \
                 invocation.")
  in
  let sentences =
    Arg.(value & flag & info [ "sentences" ] ~doc:"Print each matched tree.")
  in
  let check_oracle =
    Arg.(value & flag & info [ "check-oracle" ]
           ~doc:"Also run the brute-force matcher and exit non-zero on mismatch.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate one query or a query file against a built index.")
    Term.(const query $ prefix_arg $ qstr $ queries_file $ sentences
          $ check_oracle $ limits_term)

(* ---- insert / checkpoint ------------------------------------------------ *)

let arm_failpoints = function
  | None -> ()
  | Some spec -> (
      match Si_core.Failpoint.arm spec with
      | Ok () -> ()
      | Error what ->
          Printf.eprintf "si_tool: bad --failpoints spec: %s\n" what;
          exit 2)

let failpoints_arg =
  Arg.(value & opt (some string) None & info [ "failpoints" ] ~docv:"SPEC"
         ~doc:"Arm fault-injection points for this run (also readable from \
               \\$SI_FAILPOINTS); see $(b,si_tool failpoints) for the \
               grammar and the known points.")

let insert prefix corpus tree_args failpoints =
  arm_failpoints failpoints;
  let from_file =
    match corpus with
    | None -> []
    | Some path -> (
        try Si_treebank.Penn.read_file path with
        | Sys_error what -> fail_si (Si_core.Si_error.Io { path; what })
        | Failure what ->
            fail_si (Si_core.Si_error.Corrupt { path; offset = 0; what }))
  in
  let from_args =
    List.map
      (fun s ->
        try Si_treebank.Penn.parse_one_exn s
        with Failure what ->
          fail_si
            (Si_core.Si_error.Corrupt { path = "<TREE argument>"; offset = 0; what }))
      tree_args
  in
  let trees = from_file @ from_args in
  if trees = [] then begin
    Printf.eprintf "si_tool: insert needs TREE arguments or --corpus FILE\n";
    exit 2
  end;
  match open_any_or_fail prefix with
  | Si_core.Si.Single si ->
      let total = ok_or_fail (Si_core.Si.insert si trees) in
      Printf.printf "inserted %d trees: total=%d pending=%d wal_bytes=%d\n"
        (List.length trees) total (Si_core.Si.pending si)
        (Si_core.Si.wal_bytes si);
      Si_core.Si.close_wal si
  | Si_core.Si.Sharded sh ->
      (* each tree routes to its owning shard's WAL *)
      let total = ok_or_fail (Si_core.Si.insert_sharded sh trees) in
      Printf.printf
        "inserted %d trees (routed): total=%d pending=%d wal_bytes=%d\n"
        (List.length trees) total
        (Si_core.Si.pending_sharded sh)
        (Si_core.Si.wal_bytes_sharded sh);
      Si_core.Si.close_wal_sharded sh

let insert_cmd =
  let corpus =
    Arg.(value & opt (some file) None & info [ "corpus" ] ~docv:"FILE"
           ~doc:"Insert every tree in FILE (Penn format, as $(b,gen) writes).")
  in
  let tree_args =
    Arg.(value & pos_all string [] & info [] ~docv:"TREE"
           ~doc:"Penn tree text, e.g. '(S (NP (DT the) (NN cat)) (VP (VB sat)))'; \
                 quote it — the bracketing contains spaces.")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"WAL-append trees into an existing index without rebuilding it. \
             Each tree is appended to PREFIX.wal (CRC-framed, fsync'd) \
             before the command acknowledges it; the next open replays the \
             WAL into an in-memory delta queried alongside the main \
             postings.  Run $(b,si_tool checkpoint) to fold the WAL into a \
             new main index.")
    Term.(const insert $ prefix_arg $ corpus $ tree_args $ failpoints_arg)

let checkpoint prefix shard failpoints =
  arm_failpoints failpoints;
  match open_any_or_fail prefix with
  | Si_core.Si.Single si ->
      (match shard with
      | Some k ->
          Printf.eprintf
            "si_tool: --shard %d: the index at %s is not sharded\n" k prefix;
          exit 2
      | None -> ());
      let before = (Si_core.Si.stats si).Si_core.Builder.trees in
      let merged = ok_or_fail (Si_core.Si.checkpoint si) in
      if merged = 0 then Printf.printf "nothing pending: total=%d\n" before
      else
        Printf.printf "checkpointed %d pending trees into %s: total=%d\n"
          merged prefix (before + merged);
      Si_core.Si.close_wal si
  | Si_core.Si.Sharded sh ->
      (match shard with
      | Some k when k < 0 || k >= Si_core.Si.shard_count sh ->
          Printf.eprintf "si_tool: --shard %d: index has %d shards\n" k
            (Si_core.Si.shard_count sh);
          exit 2
      | _ -> ());
      let merged = ok_or_fail (Si_core.Si.checkpoint_sharded ?shard sh) in
      if merged = 0 then
        Printf.printf "nothing pending: total=%d\n"
          (Si_core.Si.sharded_total sh)
      else
        Printf.printf "checkpointed %d pending trees into %s%s: total=%d\n"
          merged prefix
          (match shard with
          | Some k -> Printf.sprintf " (shard %d)" k
          | None -> "")
          (Si_core.Si.sharded_total sh);
      Si_core.Si.close_wal_sharded sh

let checkpoint_cmd =
  let shard =
    Arg.(value & opt (some int) None & info [ "shard" ] ~docv:"K"
           ~doc:"Sharded prefix only: fold shard K's slice of the WAL \
                 delta; the other members keep their pending debt.")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Fold the WAL delta into a new main index set at PREFIX \
             (published via the crash-consistent staged-rename protocol) \
             and truncate the WAL.  A crash at any point leaves either the \
             old set plus a replayable WAL or the new set — never a torn \
             state.  On a sharded prefix every member folds (or one with \
             $(b,--shard)).")
    Term.(const checkpoint $ prefix_arg $ shard $ failpoints_arg)

(* ---- serve ------------------------------------------------------------- *)

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* Fault-isolated: per-slot errors are counted and reported, never
   rethrown — one pathological or failing query must not take down the
   batch.  Exit 0 means the batch machinery ran to completion; per-query
   failures are visible in errors= and on stderr. *)
(* Sharded prefix: the per-query fan-out across the affinity pool IS the
   parallelism, so the stream runs sequentially — each query already
   occupies every pool worker. *)
let serve_batch_sharded sh qs limits =
  let n = Array.length qs in
  let lat = Array.make n 0. in
  let total = ref 0 and errors = ref 0 and truncated = ref 0 in
  let t0 = Si_core.Monotonic.now_ns () in
  Array.iteri
    (fun i qstr ->
      let q0 = Si_core.Monotonic.now_ns () in
      (match Si_core.Si.query_outcome_sharded ~limits sh qstr with
      | Error e ->
          incr errors;
          Printf.eprintf "query %d failed: %s\n" i
            (Si_core.Si_error.to_string e)
      | Ok so ->
          let o = so.Si_core.Si.so_outcome in
          total := !total + List.length o.Si_core.Limits.matches;
          if o.Si_core.Limits.truncated then incr truncated);
      lat.(i) <- float_of_int (Si_core.Monotonic.now_ns () - q0))
    qs;
  let elapsed = Si_core.Monotonic.elapsed_s t0 in
  Array.sort compare lat;
  Printf.printf
    "queries=%d shards=%d matches=%d errors=%d truncated=%d elapsed=%.3fs qps=%.0f\n"
    n
    (Si_core.Si.shard_count sh)
    !total !errors !truncated elapsed
    (if elapsed > 0. then float_of_int n /. elapsed else 0.);
  Printf.printf "latency_ns p50=%.0f p95=%.0f p99=%.0f\n" (quantile lat 0.50)
    (quantile lat 0.95) (quantile lat 0.99)

let serve_batch prefix batch_file domains cache_budget limits =
  let qs = read_queries batch_file in
  let si =
    match open_any_or_fail ?cache_budget prefix with
    | Si_core.Si.Sharded sh ->
        serve_batch_sharded sh qs limits;
        exit 0
    | Si_core.Si.Single si -> si
  in
  let b = Si_core.Si.query_batch ~domains ?cache_budget ~limits si qs in
  let total = ref 0 and errors = ref 0 and truncated = ref 0 in
  Array.iteri
    (fun i -> function
      | Error e ->
          incr errors;
          Printf.eprintf "query %d failed: %s\n" i (Si_core.Si_error.to_string e)
      | Ok o ->
          total := !total + List.length o.Si_core.Limits.matches;
          if o.Si_core.Limits.truncated then incr truncated)
    b.Si_core.Si.answers;
  let lat = Array.copy b.Si_core.Si.latencies_ns in
  Array.sort compare lat;
  let n = Array.length qs in
  Printf.printf
    "queries=%d domains=%d matches=%d errors=%d truncated=%d elapsed=%.3fs qps=%.0f\n"
    n
    (Array.length b.Si_core.Si.domain_stats)
    !total !errors !truncated b.Si_core.Si.elapsed_s
    (if b.Si_core.Si.elapsed_s > 0. then float_of_int n /. b.Si_core.Si.elapsed_s
     else 0.);
  Printf.printf "latency_ns p50=%.0f p95=%.0f p99=%.0f\n" (quantile lat 0.50)
    (quantile lat 0.95) (quantile lat 0.99);
  let cs = b.Si_core.Si.cache in
  Printf.printf "cache hits=%d misses=%d evictions=%d resident=%d entries=%d\n"
    cs.Si_core.Cache.hits cs.Si_core.Cache.misses cs.Si_core.Cache.evictions
    cs.Si_core.Cache.resident cs.Si_core.Cache.entries;
  Array.iteri
    (fun d (st : Si_core.Si.domain_stat) ->
      Printf.printf "domain %d: queries=%d errors=%d busy_ms=%.1f%s\n" d
        st.Si_core.Si.queries_run st.Si_core.Si.errors
        (float_of_int st.Si_core.Si.busy_ns /. 1e6)
        (match st.Si_core.Si.died with
        | None -> ""
        | Some why -> " DIED: " ^ why))
    b.Si_core.Si.domain_stats

(* The long-lived network mode: si_tool serve --listen PORT.  The process
   runs until SIGTERM/SIGINT (graceful drain), or a SHUTDOWN wire request;
   SIGHUP hot-reloads the served prefix through the zero-downtime swap
   path (same as the SWAP verb). *)
let serve_net prefix host port workers accept_queue cache_budget limits
    batch_deadline_ms quota_rps quota_burst brownout shed checkpoint_records
    checkpoint_bytes scrub_interval_s scrub_budget_bytes auto_repair_threshold =
  if workers < 1 then begin
    Printf.eprintf "si_tool: --workers must be >= 1 (got %d)\n" workers;
    exit 2
  end;
  let batch_limits =
    match batch_deadline_ms with
    | None -> limits
    | Some ms ->
        Si_core.Limits.
          { limits with deadline_ns = Some (int_of_float (ms *. 1e6)) }
  in
  let admission =
    {
      Si_serve.Admission.default_config with
      interactive = limits;
      batch = batch_limits;
      quota_rps;
      quota_burst;
      brownout_inflight = brownout;
      shed_inflight = shed;
    }
  in
  let cfg =
    {
      (Si_serve.Server.default_config ~prefix) with
      host;
      port;
      workers;
      accept_queue;
      cache_budget;
      admission;
      checkpoint_records;
      checkpoint_bytes;
      scrub_interval_s;
      scrub_budget_bytes;
      auto_repair_threshold;
    }
  in
  match Si_serve.Server.start cfg with
  | Error e -> fail_si e
  | Ok srv ->
      Printf.printf
        "listening on %s:%d (prefix=%s workers=%d accept_queue=%d)\n%!" host
        (Si_serve.Server.port srv)
        prefix workers accept_queue;
      let stop_req = ref false and hup_req = ref false in
      let handle r = Sys.Signal_handle (fun _ -> r := true) in
      List.iter
        (fun s -> try Sys.set_signal s (handle stop_req) with Invalid_argument _ -> ())
        [ Sys.sigterm; Sys.sigint ];
      (try Sys.set_signal Sys.sighup (handle hup_req)
       with Invalid_argument _ -> ());
      let rec wait () =
        if !stop_req || Si_serve.Server.stopping srv then ()
        else begin
          if !hup_req then begin
            hup_req := false;
            match Si_serve.Server.reload srv with
            | Ok gen ->
                Printf.eprintf "si_tool: SIGHUP reload -> generation %d\n%!" gen
            | Error e ->
                Printf.eprintf "si_tool: SIGHUP reload failed: %s\n%!"
                  (Si_core.Si_error.to_string e)
          end;
          (try Unix.sleepf 0.2
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          wait ()
        end
      in
      wait ();
      Si_serve.Server.stop srv;
      let m = Si_serve.Server.metrics srv in
      let up = Si_serve.Metrics.uptime_s m in
      let queries = Si_serve.Metrics.queries m in
      Printf.printf "shutdown complete: queries=%d qps=%.1f uptime_s=%.1f\n"
        queries
        (if up > 0. then float_of_int queries /. up else 0.)
        up

let serve prefix batch_file listen host workers accept_queue domains
    cache_budget limits batch_deadline_ms quota_rps quota_burst brownout shed
    checkpoint_records checkpoint_bytes scrub_interval_s scrub_budget_bytes
    auto_repair_threshold =
  if domains < 1 then begin
    Printf.eprintf "si_tool: --domains must be >= 1 (got %d)\n" domains;
    exit 2
  end;
  match (batch_file, listen) with
  | Some batch, None -> serve_batch prefix batch domains cache_budget limits
  | None, Some port ->
      serve_net prefix host port workers accept_queue cache_budget limits
        batch_deadline_ms quota_rps quota_burst brownout shed
        checkpoint_records checkpoint_bytes scrub_interval_s scrub_budget_bytes
        auto_repair_threshold
  | Some _, Some _ ->
      Printf.eprintf "si_tool: pass either --batch or --listen, not both\n";
      exit 2
  | None, None ->
      Printf.eprintf "si_tool: serve needs --batch FILE or --listen PORT\n";
      exit 2

let serve_cmd =
  let batch_file =
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Offline mode: evaluate the query stream in FILE (one query \
                 per line, # comments) and exit.")
  in
  let listen =
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT"
           ~doc:"Network mode: serve the newline-delimited wire protocol on \
                 PORT (0 picks an ephemeral port) until SIGTERM or a \
                 SHUTDOWN request; SIGHUP hot-swaps the index.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Bind address for --listen.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains serving connections in --listen mode \
                 (IO-bound, so not clamped to the core count).")
  in
  let accept_queue =
    Arg.(value & opt int 64 & info [ "accept-queue" ] ~docv:"N"
           ~doc:"Bounded accept-queue capacity; a full queue sheds new \
                 connections with ERR overloaded instead of queueing.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Batch mode: fan the stream across N OCaml domains over one \
                 shared index handle (clamped to the machine's recommended \
                 domain count, with a warning).")
  in
  let cache_budget =
    Arg.(value & opt (some int) None & info [ "cache-budget" ] ~docv:"BYTES"
           ~doc:"Per-domain/worker decoded-block cache budget in bytes \
                 (default 64 MiB).")
  in
  let batch_deadline_ms =
    Arg.(value & opt (some float) None & info [ "batch-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline for class=batch requests (--listen mode); they \
                 inherit the interactive limits otherwise.")
  in
  let quota_rps =
    Arg.(value & opt (some float) None & info [ "quota-rps" ] ~docv:"R"
           ~doc:"Per-client admission quota: R requests/second (token \
                 bucket), rejected with ERR quota_exceeded when spent.")
  in
  let quota_burst =
    Arg.(value & opt float 8. & info [ "quota-burst" ] ~docv:"N"
           ~doc:"Token-bucket capacity for --quota-rps.")
  in
  let brownout =
    Arg.(value & opt (some int) None & info [ "brownout" ] ~docv:"N"
           ~doc:"Above N in-flight queries, degrade admitted requests to \
                 --partial with a tight deadline (brownout) instead of \
                 letting latency grow.")
  in
  let shed =
    Arg.(value & opt (some int) None & info [ "shed" ] ~docv:"N"
           ~doc:"Above N in-flight queries, reject with ERR overloaded \
                 (load shedding).")
  in
  let checkpoint_records =
    Arg.(value & opt (some int) None & info [ "checkpoint-records" ] ~docv:"N"
           ~doc:"--listen mode: auto-checkpoint once N WAL records are \
                 pending (fold the delta into a new main set and swap to \
                 it); INSERTs keep the delta live until then.")
  in
  let checkpoint_bytes =
    Arg.(value & opt (some int) None & info [ "checkpoint-bytes" ] ~docv:"BYTES"
           ~doc:"--listen mode: auto-checkpoint once the WAL file reaches \
                 BYTES.")
  in
  let scrub_interval_s =
    Arg.(value & opt (some float) None & info [ "scrub-interval" ] ~docv:"S"
           ~doc:"--listen mode: run a background integrity scrub pass every \
                 S seconds over the serving index's lazily-verified regions; \
                 damage quarantines the handle and queries answer exactly \
                 from the corpus fallback.")
  in
  let scrub_budget_bytes =
    Arg.(value & opt (some int) None & info [ "scrub-budget" ] ~docv:"BYTES"
           ~doc:"Byte budget per background scrub pass (the cursor resumes \
                 next pass); unbudgeted by default.")
  in
  let auto_repair_threshold =
    Arg.(value & opt (some int) None & info [ "auto-repair" ] ~docv:"N"
           ~doc:"Rebuild a quarantined index from the corpus store and swap \
                 to it once its damage pressure (scrub-localized bad keys + \
                 fallback-answered queries) reaches N; 1 repairs on the \
                 first scrub tick after any quarantine.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve queries: --listen runs the long-lived network server \
             (admission control, quotas, hot index swap via SWAP/SIGHUP, \
             live INSERT/CHECKPOINT, STATS/HEALTH); --batch \
             throughput-evaluates a query file and exits.  Fault-isolated \
             either way: a failing query poisons only its own answer.")
    Term.(const serve $ prefix_arg $ batch_file $ listen $ host $ workers
          $ accept_queue $ domains $ cache_budget $ limits_term
          $ batch_deadline_ms $ quota_rps $ quota_burst $ brownout $ shed
          $ checkpoint_records $ checkpoint_bytes $ scrub_interval_s
          $ scrub_budget_bytes $ auto_repair_threshold)

(* ---- stats ------------------------------------------------------------- *)

(* Per-region CRC state of a mapped handle: the .idx regions from
   Builder.mapped_stats plus the .trees regions from Treestore.crc_state,
   each tagged with the file it lives in.  [None] for heap handles. *)
let mmap_regions si =
  match Si_core.Builder.mapped_stats (Si_core.Si.index si) with
  | None -> None
  | Some m ->
      let idx =
        List.map
          (fun (r : Si_core.Builder.region_state) ->
            ("idx", r.Si_core.Builder.rname, r.Si_core.Builder.rbytes,
             r.Si_core.Builder.rverified))
          m.Si_core.Builder.regions
      in
      let store = Si_core.Corpus.store (Si_core.Si.corpus si) in
      let trees =
        match store with
        | None -> []
        | Some st ->
            List.map
              (fun (name, bytes, verified) -> ("trees", name, bytes, verified))
              (Si_core.Treestore.crc_state st)
      in
      let store_mapped, store_resident =
        match store with
        | None -> (0, 0)
        | Some st ->
            let body =
              List.fold_left
                (fun acc (_, b, v) -> if v then acc + b else acc)
                0
                (Si_core.Treestore.crc_state st)
            in
            (* header + footer always fault in at open; bodies on first CRC *)
            (Si_core.Treestore.mapped_bytes st, 52 + body)
      in
      Some
        ( m.Si_core.Builder.mapped_bytes + store_mapped,
          m.Si_core.Builder.resident_estimate + store_resident,
          idx @ trees )

(* WAL debt as it sits on disk (the handle's own [wal_bytes] counts only
   a WAL it has opened for append) *)
let wal_file_bytes prefix =
  match Unix.stat (Si_core.Wal.path prefix) with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0
  | exception Sys_error _ -> 0

let wal_debt h prefix =
  match h with
  | Si_core.Si.Single si -> (Si_core.Si.pending si, wal_file_bytes prefix)
  | Si_core.Si.Sharded sh ->
      let bytes = ref 0 in
      for i = 0 to Si_core.Si.shard_count sh - 1 do
        bytes :=
          !bytes + wal_file_bytes (Si_core.Shardmap.shard_prefix prefix i)
      done;
      (Si_core.Si.pending_sharded sh, !bytes)

(* --json emits the same "index" object the network server's STATS verb
   returns (Si_serve.Metrics.index_json — one schema, two producers),
   plus the offline-only histogram, cache and wal sections. *)
let stats_json_sharded prefix sh =
  let open Si_serve.Jsonx in
  let pending, wal_bytes = wal_debt (Si_core.Si.Sharded sh) prefix in
  let cs = cache_stats_any (Si_core.Si.Sharded sh) in
  print_endline
    (to_string
       (Obj
          [
            ("index", Si_serve.Metrics.sharded_index_json sh);
            ("shards", Si_serve.Metrics.shards_json sh);
            ( "wal",
              Obj [ ("pending", Int pending); ("wal_bytes", Int wal_bytes) ] );
            ( "cache",
              Obj
                [
                  ("hits", Int cs.Si_core.Cache.hits);
                  ("misses", Int cs.Si_core.Cache.misses);
                  ("evictions", Int cs.Si_core.Cache.evictions);
                  ("resident", Int cs.Si_core.Cache.resident);
                  ("entries", Int cs.Si_core.Cache.entries);
                ] );
          ]))

let stats_json prefix si =
  let open Si_serve.Jsonx in
  let hist kvs = Arr (List.map (fun (a, b) -> Arr [ Int a; Int b ]) kvs) in
  let cs = Si_core.Si.cache_stats si in
  let pending, wal_bytes = wal_debt (Si_core.Si.Single si) prefix in
  let mmap_section =
    match mmap_regions si with
    | None -> []
    | Some (mapped_bytes, resident, regions) ->
        [
          ( "mmap",
            Obj
              [
                ("mapped_bytes", Int mapped_bytes);
                ("resident_estimate", Int resident);
                ( "regions",
                  Arr
                    (List.map
                       (fun (file, name, bytes, verified) ->
                         Obj
                           [
                             ("file", Str file);
                             ("name", Str name);
                             ("bytes", Int bytes);
                             ("verified", Bool verified);
                           ])
                       regions) );
              ] );
        ]
  in
  print_endline
    (to_string
       (Obj
          ([
            ("index", Si_serve.Metrics.index_json si);
            ( "wal",
              Obj [ ("pending", Int pending); ("wal_bytes", Int wal_bytes) ] );
            ( "posting_length_histogram",
              hist (Si_core.Builder.length_histogram (Si_core.Si.index si)) );
            ( "block_histogram",
              hist (Si_core.Builder.block_histogram (Si_core.Si.index si)) );
            ( "cache",
              Obj
                [
                  ("budget", Int cs.Si_core.Cache.budget);
                  ("hits", Int cs.Si_core.Cache.hits);
                  ("misses", Int cs.Si_core.Cache.misses);
                  ("evictions", Int cs.Si_core.Cache.evictions);
                  ("resident", Int cs.Si_core.Cache.resident);
                  ("entries", Int cs.Si_core.Cache.entries);
                ] );
          ]
          @ mmap_section)))

let stats_sharded prefix sh =
  let hs = Si_core.Si.shard_handles sh in
  let agg f =
    Array.fold_left (fun acc si -> acc + f (Si_core.Si.stats si)) 0 hs
  in
  Printf.printf
    "scheme=%s mss=%d backend=sharded shards=%d trees=%d nodes=%d keys=%d \
     postings=%d idx_bytes=%d\n"
    (Si_core.Coding.scheme_to_string (Si_core.Si.scheme hs.(0)))
    (Si_core.Si.mss hs.(0))
    (Array.length hs)
    (agg (fun s -> s.Si_core.Builder.trees))
    (agg (fun s -> s.Si_core.Builder.nodes))
    (agg (fun s -> s.Si_core.Builder.keys))
    (agg (fun s -> s.Si_core.Builder.postings))
    (agg (fun s -> s.Si_core.Builder.bytes));
  Array.iteri
    (fun i si ->
      let s = Si_core.Si.stats si in
      Printf.printf
        "  shard %d: backend=%s trees=%d keys=%d postings=%d idx_bytes=%d \
         pending=%d\n"
        i
        (match Si_core.Si.format si with `Sidx4 -> "mapped" | `Sidx3 -> "heap")
        s.Si_core.Builder.trees s.Si_core.Builder.keys
        s.Si_core.Builder.postings s.Si_core.Builder.bytes
        (Si_core.Si.pending si))
    hs;
  let pending, wal_bytes = wal_debt (Si_core.Si.Sharded sh) prefix in
  Printf.printf "wal pending=%d wal_bytes=%d\n" pending wal_bytes

let stats prefix json =
  match open_any_or_fail prefix with
  | Si_core.Si.Sharded sh ->
      if json then stats_json_sharded prefix sh else stats_sharded prefix sh
  | Si_core.Si.Single si ->
  if json then stats_json prefix si
  else begin
  let s = Si_core.Si.stats si in
  Printf.printf "scheme=%s mss=%d backend=%s trees=%d nodes=%d keys=%d postings=%d idx_bytes=%d\n"
    (Si_core.Coding.scheme_to_string (Si_core.Si.scheme si))
    (Si_core.Si.mss si)
    (match Si_core.Si.format si with `Sidx4 -> "mapped" | `Sidx3 -> "heap")
    s.Si_core.Builder.trees s.Si_core.Builder.nodes
    s.Si_core.Builder.keys s.Si_core.Builder.postings s.Si_core.Builder.bytes;
  (let pending, wal_bytes = wal_debt (Si_core.Si.Single si) prefix in
   if pending > 0 || wal_bytes > 0 then
     Printf.printf "wal pending=%d wal_bytes=%d\n" pending wal_bytes);
  (match mmap_regions si with
  | None -> ()
  | Some (mapped_bytes, resident, regions) ->
      Printf.printf "mmap mapped_bytes=%d resident_estimate=%d\n" mapped_bytes
        resident;
      List.iter
        (fun (file, name, bytes, verified) ->
          Printf.printf "  region %s/%-8s %10d bytes crc=%s\n" file name bytes
            (if verified then "verified" else "lazy"))
        regions);
  (* posting-length histogram: keys per power-of-two entry-count bucket,
     computed from slot metadata without decoding any posting *)
  print_endline "posting-length histogram (entries <= bucket : keys):";
  let hist = Si_core.Builder.length_histogram (Si_core.Si.index si) in
  let width =
    List.fold_left (fun w (_, c) -> max w c) 1 hist |> float_of_int
  in
  List.iter
    (fun (bucket, count) ->
      let bar = int_of_float (50.0 *. float_of_int count /. width) in
      Printf.printf "  <=%-8d %8d %s\n" bucket count (String.make bar '#'))
    hist;
  (* block layout: how many keys are split into how many skip blocks *)
  print_endline "block histogram (blocks : keys):";
  List.iter
    (fun (nblocks, count) -> Printf.printf "  %-8d %8d\n" nblocks count)
    (Si_core.Builder.block_histogram (Si_core.Si.index si));
  let cs = Si_core.Si.cache_stats si in
  Printf.printf
    "cache budget=%d hits=%d misses=%d evictions=%d resident=%d entries=%d\n"
    cs.Si_core.Cache.budget cs.Si_core.Cache.hits cs.Si_core.Cache.misses
    cs.Si_core.Cache.evictions cs.Si_core.Cache.resident cs.Si_core.Cache.entries
  end

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one line of JSON; the \"index\" object is \
                 byte-compatible with the network server's STATS verb.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics of a built index.")
    Term.(const stats $ prefix_arg $ json)

(* ---- openbench ---------------------------------------------------------- *)

(* Open-latency measurement for the mmap-smoke CI gate and the bench
   harness: time [Si.open_] end to end, [repeat] times, on whatever
   container lives at the prefix.  With a QUERY, the last handle also
   evaluates it once (the first-touch cost an O(1) open defers). *)
let openbench prefix repeat query =
  if repeat < 1 then begin
    Printf.eprintf "si_tool: --repeat must be >= 1 (got %d)\n" repeat;
    exit 2
  end;
  let times = Array.make repeat 0. in
  let last = ref None in
  for i = 0 to repeat - 1 do
    let t0 = Si_core.Monotonic.now_ns () in
    let h = open_any_or_fail prefix in
    times.(i) <- float_of_int (Si_core.Monotonic.now_ns () - t0) /. 1e6;
    last := Some h
  done;
  let h = Option.get !last in
  let sorted = Array.copy times in
  Array.sort compare sorted;
  let mean = Array.fold_left ( +. ) 0. times /. float_of_int repeat in
  let backend, trees, keys =
    match h with
    | Si_core.Si.Single si ->
        let s = Si_core.Si.stats si in
        ( (match Si_core.Si.format si with
          | `Sidx4 -> "mapped"
          | `Sidx3 -> "heap"),
          s.Si_core.Builder.trees,
          s.Si_core.Builder.keys )
    | Si_core.Si.Sharded sh ->
        let agg f =
          Array.fold_left
            (fun acc si -> acc + f (Si_core.Si.stats si))
            0
            (Si_core.Si.shard_handles sh)
        in
        ( "sharded",
          agg (fun s -> s.Si_core.Builder.trees),
          agg (fun s -> s.Si_core.Builder.keys) )
  in
  Printf.printf
    "open_ms_min=%.3f open_ms_p50=%.3f open_ms_mean=%.3f open_ms_max=%.3f \
     repeat=%d backend=%s trees=%d keys=%d\n"
    sorted.(0)
    (quantile sorted 0.50)
    mean
    sorted.(repeat - 1)
    repeat backend trees keys;
  match query with
  | None -> ()
  | Some qstr ->
      let t0 = Si_core.Monotonic.now_ns () in
      let matches =
        match h with
        | Si_core.Si.Single si -> ok_or_fail (Si_core.Si.query si qstr)
        | Si_core.Si.Sharded sh -> ok_or_fail (Si_core.Si.query_sharded sh qstr)
      in
      let dt = float_of_int (Si_core.Monotonic.now_ns () - t0) /. 1e6 in
      Printf.printf "first_query_ms=%.3f matches=%d\n" dt (List.length matches)

let openbench_cmd =
  let repeat =
    Arg.(value & opt int 5 & info [ "repeat" ] ~docv:"N"
           ~doc:"Open the prefix N times and report the latency spread.")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "query" ] ~docv:"QUERY"
           ~doc:"After the last open, evaluate QUERY once and report the \
                 first-touch latency (the cost an O(1) open defers).")
  in
  Cmd.v
    (Cmd.info "openbench"
       ~doc:"Measure index open latency (the mmap-smoke CI gate).")
    Term.(const openbench $ prefix_arg $ repeat $ query)

(* ---- scrub -------------------------------------------------------------- *)

(* Offline integrity scrub (DESIGN.md §15): drive the cursor through one
   full cycle — budgeted passes just bound how much each pass hashes, the
   loop resumes until the cycle completes — then report, and optionally
   repair from the corpus store. *)
let scrub prefix repair max_bytes deadline_ms =
  let h = open_any_or_fail prefix in
  let budget = Si_core.Scrub.budget ?max_bytes ?deadline_ms () in
  let pass_once () =
    match h with
    | Si_core.Si.Single si -> [| Si_core.Si.scrub ~budget si |]
    | Si_core.Si.Sharded sh -> Si_core.Si.scrub_sharded ~budget sh
  in
  let bytes = ref 0 and passes = ref 0 in
  let rec drive () =
    let rs = pass_once () in
    incr passes;
    Array.iter
      (fun (r : Si_core.Scrub.report) -> bytes := !bytes + r.bytes_verified)
      rs;
    if Array.for_all (fun (r : Si_core.Scrub.report) -> r.complete) rs then rs
    else drive ()
  in
  let rs = drive () in
  let sharded = Array.length rs > 1 in
  let clean = Array.for_all (fun (r : Si_core.Scrub.report) -> r.clean) rs in
  Printf.printf "scrub bytes=%d passes=%d clean=%d\n" !bytes !passes
    (if clean then 1 else 0);
  Array.iteri
    (fun i (r : Si_core.Scrub.report) ->
      let tag = if sharded then Printf.sprintf "shard %d: " i else "" in
      if r.bad_regions <> [] then
        Printf.printf "%sbad regions: %s\n" tag
          (String.concat " " r.bad_regions);
      if r.bad_keys <> [] then
        Printf.printf "%sbad keys (%d): %s\n" tag
          (List.length r.bad_keys)
          (String.concat " " (List.map String.escaped r.bad_keys));
      if r.bad_trees <> [] then
        Printf.printf "%sbad trees (%d): %s\n" tag
          (List.length r.bad_trees)
          (String.concat " " (List.map string_of_int r.bad_trees)))
    rs;
  if not clean then
    if repair then begin
      let repaired =
        match h with
        | Si_core.Si.Single si -> ok_or_fail (Si_core.Si.repair si)
        | Si_core.Si.Sharded sh -> ok_or_fail (Si_core.Si.repair_sharded sh)
      in
      Printf.printf "repaired trees=%d prefix=%s\n" repaired prefix
    end
    else
      let bad =
        Array.fold_left
          (fun acc (r : Si_core.Scrub.report) ->
            acc + List.length r.bad_regions + List.length r.bad_keys
            + List.length r.bad_trees)
          0 rs
      in
      fail_si
        (Si_core.Si_error.Corrupt
           {
             path = prefix;
             offset = 0;
             what =
               Printf.sprintf
                 "scrub found %d damaged regions/keys/trees (rerun with \
                  --repair to rebuild from the corpus store)"
                 bad;
           })

let scrub_cmd =
  let repair =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"If the scrub finds index damage, rebuild the prefix from \
                 the corpus store + WAL delta and republish it through the \
                 staged-rename protocol (the prefix then reopens clean).")
  in
  let max_bytes =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"BYTES"
           ~doc:"Hash at most BYTES per pass (the cursor resumes across \
                 passes until the cycle completes).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None & info [ "pass-deadline-ms" ] ~docv:"MS"
           ~doc:"Per-pass deadline on the monotonic clock.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Verify every lazily-verified region of a built index (CRC walk \
             + per-key/per-tree localization); exit 3 on damage, or repair \
             it in place with $(b,--repair).")
    Term.(const scrub $ prefix_arg $ repair $ max_bytes $ deadline_ms)

(* ---- failpoints --------------------------------------------------------- *)

let failpoints () =
  Printf.printf "spec grammar: name=ACTION[@TRIGGER][;...]\n";
  Printf.printf
    "actions: fail | sys | exit:CODE | delay:MS | short:N   triggers: @N | @N+ | @p:PCT:SEED\n";
  Printf.printf "armed via --failpoints (build) or $%s\n\n" Si_core.Failpoint.env_var;
  Printf.printf "known injection points:\n";
  List.iter
    (fun (name, where) -> Printf.printf "  %-24s %s\n" name where)
    Si_core.Failpoint.known

let failpoints_cmd =
  Cmd.v
    (Cmd.info "failpoints"
       ~doc:"List the fault-injection points and the arming spec grammar.")
    Term.(const failpoints $ const ())

let () =
  (* fault injection armed process-wide from the environment, before any
     subcommand touches the index files *)
  (match Si_core.Failpoint.arm_from_env () with
  | Ok () -> ()
  | Error what ->
      Printf.eprintf "si_tool: bad $%s spec: %s\n" Si_core.Failpoint.env_var what;
      exit 2);
  let info =
    Cmd.info "si_tool" ~version:"0.1.0"
      ~doc:"Subtree index over syntactically annotated trees (PVLDB 2012)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; build_cmd; query_cmd; insert_cmd; checkpoint_cmd;
            serve_cmd; stats_cmd; scrub_cmd; openbench_cmd; failpoints_cmd ]))
