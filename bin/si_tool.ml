(* si_tool — the subtree-index pipeline from the command line:
   gen -> build -> query / stats. *)

open Cmdliner

let scheme_conv =
  let parse s = Si_core.Coding.scheme_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf s = Format.pp_print_string ppf (Si_core.Coding.scheme_to_string s) in
  Arg.conv (parse, print)

(* Every Si_error variant maps to a distinct message and exit code
   (README "failure modes"): 1 oracle mismatch, 2 bad query, 3 corrupt
   index, 4 i/o error, 5 schema mismatch. *)
let fail_si e =
  Printf.eprintf "si_tool: %s\n" (Si_core.Si_error.to_string e);
  exit (Si_core.Si_error.exit_code e)

let ok_or_fail = function Ok v -> v | Error e -> fail_si e

(* ---- gen --------------------------------------------------------------- *)

let gen n seed output =
  let trees = Si_grammar.Generator.corpus ~seed ~n () in
  (match output with
  | Some path -> Si_treebank.Penn.write_file path trees
  | None ->
      List.iter (fun t -> print_endline (Si_treebank.Tree.to_string t)) trees);
  let (`Avg avg), (`Max mx), (`Nodes nodes) =
    Si_grammar.Generator.branching_stats trees
  in
  Printf.eprintf "generated %d trees, %d nodes (avg branching %.2f, max %d)\n" n
    nodes avg mx

let gen_cmd =
  let n =
    Arg.(value & opt int 1000 & info [ "n"; "sentences" ] ~docv:"N" ~doc:"Number of parse trees.")
  in
  let seed =
    Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output corpus file (Penn format, one tree per line); stdout if omitted.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a seeded PCFG corpus of parse trees.")
    Term.(const gen $ n $ seed $ output)

(* ---- build ------------------------------------------------------------- *)

let build corpus prefix scheme mss domains =
  if domains < 1 then begin
    Printf.eprintf "si_tool: --domains must be >= 1 (got %d)\n" domains;
    exit 2
  end;
  let trees =
    try Si_treebank.Penn.read_file corpus with
    | Sys_error what -> fail_si (Si_core.Si_error.Io { path = corpus; what })
    | Failure what ->
        fail_si (Si_core.Si_error.Corrupt { path = corpus; offset = 0; what })
  in
  let t0 = Unix.gettimeofday () in
  let si =
    try Si_core.Si.build ~domains ~scheme ~mss ~trees ~prefix ()
    with Si_core.Si_error.Error e -> fail_si e
  in
  let dt = Unix.gettimeofday () -. t0 in
  let s = Si_core.Si.stats si in
  Printf.printf
    "built %s index: mss=%d domains=%d trees=%d nodes=%d keys=%d postings=%d idx_bytes=%d (%.2fs)\n"
    (Si_core.Coding.scheme_to_string scheme)
    mss domains s.Si_core.Builder.trees s.Si_core.Builder.nodes
    s.Si_core.Builder.keys s.Si_core.Builder.postings s.Si_core.Builder.bytes dt

let corpus_arg =
  Arg.(required & opt (some file) None & info [ "corpus" ] ~docv:"FILE" ~doc:"Corpus file from $(b,gen).")

let prefix_arg =
  Arg.(value & opt string "ix" & info [ "prefix" ] ~docv:"PREFIX"
         ~doc:"Index file prefix (writes/reads PREFIX.idx, .dat, .labels, .meta).")

let build_cmd =
  let scheme =
    Arg.(value & opt scheme_conv Si_core.Coding.Root_split & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Posting coding: filter, interval or root-split.")
  in
  let mss =
    Arg.(value & opt int 3 & info [ "mss" ] ~docv:"MSS" ~doc:"Maximum subtree size of index keys.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Shard construction across N OCaml domains (output is \
                 identical to a sequential build).")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a subtree index over a corpus.")
    Term.(const build $ corpus_arg $ prefix_arg $ scheme $ mss $ domains)

(* ---- query ------------------------------------------------------------- *)

(* one query per line; blank lines and #-comments skipped *)
let read_queries path =
  let lines =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    with Sys_error what -> fail_si (Si_core.Si_error.Io { path; what })
  in
  lines
  |> List.filter (fun l -> String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> Array.of_list

let parse_query qstr =
  match Si_query.Parser.parse qstr with
  | Ok q -> q
  | Error e -> fail_si (Si_core.Si_error.Bad_query e)

(* evaluate one parsed query against an open handle, with the optional
   oracle cross-check; returns the match list *)
let eval_checked si q ~check_oracle =
  let matches = ok_or_fail (Si_core.Si.query_ast si q) in
  if check_oracle then begin
    let want = Si_core.Si.oracle si q in
    if matches <> want then begin
      Printf.eprintf "oracle MISMATCH: index %d matches, oracle %d\n"
        (List.length matches) (List.length want);
      exit 1
    end
  end;
  matches

let query prefix qstr queries_file sentences check_oracle =
  let si = ok_or_fail (Si_core.Si.open_ prefix) in
  match (qstr, queries_file) with
  | None, None ->
      Printf.eprintf "si_tool: query needs a QUERY argument or --queries FILE\n";
      exit 2
  | Some _, Some _ ->
      Printf.eprintf "si_tool: pass either a QUERY argument or --queries, not both\n";
      exit 2
  | Some qstr, None ->
      (* parse once; the same AST drives both the index and the oracle *)
      let q = parse_query qstr in
      let matches = eval_checked si q ~check_oracle in
      Printf.printf "%d matches\n" (List.length matches);
      if sentences then
        List.iter
          (fun (tid, node) ->
            let t = Si_core.Si.sentence si tid in
            Printf.printf "%d:%d %s\n" tid node (Si_treebank.Tree.to_string t))
          matches;
      if check_oracle then print_endline "oracle: OK"
  | None, Some file ->
      (* batch: one open, N evaluations over the handle's shared cache *)
      let qs = read_queries file in
      let t0 = Unix.gettimeofday () in
      let total = ref 0 in
      Array.iter
        (fun qstr ->
          let matches = eval_checked si (parse_query qstr) ~check_oracle in
          total := !total + List.length matches;
          Printf.printf "%s\t%d\n" qstr (List.length matches))
        qs;
      let dt = Unix.gettimeofday () -. t0 in
      let cs = Si_core.Si.cache_stats si in
      Printf.eprintf
        "evaluated %d queries (%d matches) in %.3fs over one open; cache \
         hits=%d misses=%d evictions=%d%s\n"
        (Array.length qs) !total dt cs.Si_core.Cache.hits cs.Si_core.Cache.misses
        cs.Si_core.Cache.evictions
        (if check_oracle then "; oracle: OK" else "")

let query_cmd =
  let qstr =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. 'S(NP(DT)(NN))(VP)'; use (//q) for descendant edges.")
  in
  let queries_file =
    Arg.(value & opt (some file) None & info [ "queries" ] ~docv:"FILE"
           ~doc:"Evaluate every query in FILE (one per line, # comments) \
                 against a single index open instead of paying one open per \
                 invocation.")
  in
  let sentences =
    Arg.(value & flag & info [ "sentences" ] ~doc:"Print each matched tree.")
  in
  let check_oracle =
    Arg.(value & flag & info [ "check-oracle" ]
           ~doc:"Also run the brute-force matcher and exit non-zero on mismatch.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate one query or a query file against a built index.")
    Term.(const query $ prefix_arg $ qstr $ queries_file $ sentences $ check_oracle)

(* ---- serve ------------------------------------------------------------- *)

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let serve prefix batch_file domains cache_budget =
  if domains < 1 then begin
    Printf.eprintf "si_tool: --domains must be >= 1 (got %d)\n" domains;
    exit 2
  end;
  let si = ok_or_fail (Si_core.Si.open_ prefix) in
  let qs = read_queries batch_file in
  let b = Si_core.Si.query_batch ~domains ?cache_budget si qs in
  let total = ref 0 in
  Array.iter
    (function Error e -> fail_si e | Ok ms -> total := !total + List.length ms)
    b.Si_core.Si.answers;
  let lat = Array.copy b.Si_core.Si.latencies_ns in
  Array.sort compare lat;
  let n = Array.length qs in
  Printf.printf "queries=%d domains=%d matches=%d elapsed=%.3fs qps=%.0f\n" n
    domains !total b.Si_core.Si.elapsed_s
    (if b.Si_core.Si.elapsed_s > 0. then float_of_int n /. b.Si_core.Si.elapsed_s
     else 0.);
  Printf.printf "latency_ns p50=%.0f p95=%.0f p99=%.0f\n" (quantile lat 0.50)
    (quantile lat 0.95) (quantile lat 0.99);
  let cs = b.Si_core.Si.cache in
  Printf.printf "cache hits=%d misses=%d evictions=%d resident=%d entries=%d\n"
    cs.Si_core.Cache.hits cs.Si_core.Cache.misses cs.Si_core.Cache.evictions
    cs.Si_core.Cache.resident cs.Si_core.Cache.entries

let serve_cmd =
  let batch_file =
    Arg.(required & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Query stream to evaluate (one query per line, # comments).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Fan the stream across N OCaml domains over one shared \
                 index handle (per-domain decode caches, no hot-path locks).")
  in
  let cache_budget =
    Arg.(value & opt (some int) None & info [ "cache-budget" ] ~docv:"BYTES"
           ~doc:"Per-domain decoded-block cache budget in bytes (default 64 MiB).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Throughput-evaluate a query stream: batch fan-out across domains \
             with per-query latency and cache statistics.")
    Term.(const serve $ prefix_arg $ batch_file $ domains $ cache_budget)

(* ---- stats ------------------------------------------------------------- *)

let stats prefix =
  let si = ok_or_fail (Si_core.Si.open_ prefix) in
  let s = Si_core.Si.stats si in
  Printf.printf "scheme=%s mss=%d trees=%d nodes=%d keys=%d postings=%d idx_bytes=%d\n"
    (Si_core.Coding.scheme_to_string (Si_core.Si.scheme si))
    (Si_core.Si.mss si) s.Si_core.Builder.trees s.Si_core.Builder.nodes
    s.Si_core.Builder.keys s.Si_core.Builder.postings s.Si_core.Builder.bytes;
  (* posting-length histogram: keys per power-of-two entry-count bucket,
     computed from slot metadata without decoding any posting *)
  print_endline "posting-length histogram (entries <= bucket : keys):";
  let hist = Si_core.Builder.length_histogram (Si_core.Si.index si) in
  let width =
    List.fold_left (fun w (_, c) -> max w c) 1 hist |> float_of_int
  in
  List.iter
    (fun (bucket, count) ->
      let bar = int_of_float (50.0 *. float_of_int count /. width) in
      Printf.printf "  <=%-8d %8d %s\n" bucket count (String.make bar '#'))
    hist;
  (* block layout: how many keys are split into how many skip blocks *)
  print_endline "block histogram (blocks : keys):";
  List.iter
    (fun (nblocks, count) -> Printf.printf "  %-8d %8d\n" nblocks count)
    (Si_core.Builder.block_histogram (Si_core.Si.index si));
  let cs = Si_core.Si.cache_stats si in
  Printf.printf
    "cache budget=%d hits=%d misses=%d evictions=%d resident=%d entries=%d\n"
    cs.Si_core.Cache.budget cs.Si_core.Cache.hits cs.Si_core.Cache.misses
    cs.Si_core.Cache.evictions cs.Si_core.Cache.resident cs.Si_core.Cache.entries

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics of a built index.")
    Term.(const stats $ prefix_arg)

let () =
  let info =
    Cmd.info "si_tool" ~version:"0.1.0"
      ~doc:"Subtree index over syntactically annotated trees (PVLDB 2012)."
  in
  exit
    (Cmd.eval
       (Cmd.group info [ gen_cmd; build_cmd; query_cmd; serve_cmd; stats_cmd ]))
