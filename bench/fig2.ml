(* Fig 2-style smoke run: distinct index keys and index size versus corpus
   size, per coding, at mss = 1..3.  Output is pasted into EXPERIMENTS.md. *)

let schemes = Si_core.Coding.[ Filter; Interval; Root_split ]
let sizes = [ 100; 1000 ]
let msss = [ 1; 2; 3 ]

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2012
  in
  Printf.printf "seed=%d\n" seed;
  Printf.printf "%-6s %-4s %-11s %10s %10s %12s\n" "n" "mss" "scheme" "keys"
    "postings" "bytes";
  List.iter
    (fun n ->
      let docs =
        Array.of_list
          (List.map Si_treebank.Annotated.of_tree
             (Si_grammar.Generator.corpus ~seed ~n ()))
      in
      List.iter
        (fun mss ->
          List.iter
            (fun scheme ->
              let b = Si_core.Builder.build ~scheme ~mss docs in
              let s = b.Si_core.Builder.stats in
              Printf.printf "%-6d %-4d %-11s %10d %10d %12d\n" n mss
                (Si_core.Coding.scheme_to_string scheme)
                s.Si_core.Builder.keys s.Si_core.Builder.postings
                s.Si_core.Builder.bytes)
            schemes)
        msss)
    sizes
