(* The performance instrument for the subtree index: a bechamel harness
   that measures, on a seeded PCFG corpus,

   - build throughput (trees/s) per coding at 1 / 2 / 4 domains,
   - on-disk index bytes, SIDX3 vs the SIDX2 and SIDX1 baselines,
   - index load (open) time, lazy SIDX3 vs eager SIDX1,
   - per-coding query latency quantiles (bechamel samples), on both the
     serving path (block-skip streaming through a warm decode cache) and
     the full-decode reference path,
   - serving throughput (QPS) and whole-stream latency quantiles through
     [Si.query_batch] at 1 and 2 domains,

   and writes the lot as JSON (default: BENCH_SI.json in the cwd) so every
   future PR has a trajectory to compare against. *)

open Bechamel

let schemes = Si_core.Coding.[ Filter; Interval; Root_split ]
let domain_counts = [ 1; 2; 4 ]

let bench_queries =
  [ "S(NP)(VP)"; "S(NP(DT)(NN))(VP)"; "NP(DT)(NN)"; "S(//NN)"; "S(//PP(IN)(NP))" ]

(* ---- tiny JSON writer (no json dep in the container) ------------------- *)

module J = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Int of int
    | Float of float

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 32 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent = function
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
        else Buffer.add_string buf "null"
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            emit buf (indent + 2) x)
          xs;
        Buffer.add_string buf (Printf.sprintf "\n%s]" (String.make indent ' '))
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Printf.sprintf "%s\"%s\": " pad (escape k));
            emit buf (indent + 2) v)
          kvs;
        Buffer.add_string buf (Printf.sprintf "\n%s}" (String.make indent ' '))

  let to_string t =
    let buf = Buffer.create 4096 in
    emit buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

(* ---- measurement helpers ----------------------------------------------- *)

let time_best ~repeat f =
  (* wall-clock best-of-n for coarse one-shot operations (build, load) *)
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let latency_quantiles ~quota ~name f =
  (* bechamel sampling: per-sample latency = monotonic-clock ns / runs *)
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let test = Test.make ~name (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let res = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
  let samples =
    Array.map
      (fun m ->
        Measurement_raw.get ~label:"monotonic-clock" m /. Measurement_raw.run m)
      res.Benchmark.lr
  in
  Array.sort compare samples;
  ( Array.length samples,
    quantile samples 0.5,
    quantile samples 0.95,
    quantile samples 0.99 )

let file_size path = (Unix.stat path).Unix.st_size

(* benches run on files they just wrote; any Si_error here is a harness bug *)
let ok_exn = function
  | Ok v -> v
  | Error e -> failwith (Si_core.Si_error.to_string e)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  if Array.length a = 0 then Float.nan else a.(Array.length a / 2)

let commit_hash () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown")
  with _ -> "unknown"

(* ---- main --------------------------------------------------------------- *)

let () =
  let n = ref 2000 in
  let seed = ref 2012 in
  let mss = ref 3 in
  let out = ref "BENCH_SI.json" in
  let quota = ref 0.5 in
  let speclist =
    [
      ("--n", Arg.Set_int n, "corpus size in trees (default 2000)");
      ("--seed", Arg.Set_int seed, "PRNG seed (default 2012)");
      ("--mss", Arg.Set_int mss, "maximum subtree size (default 3)");
      ("--out", Arg.Set_string out, "output JSON path (default BENCH_SI.json)");
      ("--quota", Arg.Set_float quota, "bechamel per-test time quota, s (default 0.5)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_main [--n N] [--seed S] [--mss M] [--out FILE] [--quota SEC]";
  let n = !n and seed = !seed and mss = !mss and quota = !quota in

  Printf.eprintf "generating corpus: n=%d seed=%d mss=%d\n%!" n seed mss;
  let trees = Si_grammar.Generator.corpus ~seed ~n () in
  let docs = Array.of_list (List.map Si_treebank.Annotated.of_tree trees) in
  let nodes = Array.fold_left (fun a d -> a + Si_treebank.Annotated.size d) 0 docs in

  let tmp = Filename.temp_file "si_bench" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let cleanup () =
    Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) (Sys.readdir tmp);
    Unix.rmdir tmp
  in
  Fun.protect ~finally:cleanup @@ fun () ->

  (* build throughput per scheme x domains *)
  let build_entries = ref [] in
  let built = Hashtbl.create 4 in
  (* per-scheme headline numbers for the stable "summary" object *)
  let build1_s = Hashtbl.create 4 in
  let idx_bytes = Hashtbl.create 4 in
  let query_p50s = Hashtbl.create 4 in
  List.iter
    (fun scheme ->
      List.iter
        (fun domains ->
          let b, dt =
            time_best ~repeat:3 (fun () ->
                Si_core.Builder.build ~domains ~scheme ~mss docs)
          in
          if domains = 1 then begin
            Hashtbl.replace built scheme b;
            Hashtbl.replace build1_s scheme dt
          end;
          Printf.eprintf "build %-10s domains=%d: %.3fs (%.0f trees/s)\n%!"
            (Si_core.Coding.scheme_to_string scheme)
            domains dt
            (float_of_int n /. dt);
          build_entries :=
            J.Obj
              [
                ("scheme", J.Str (Si_core.Coding.scheme_to_string scheme));
                ("domains", J.Int domains);
                ("seconds", J.Float dt);
                ("trees_per_sec", J.Float (float_of_int n /. dt));
              ]
            :: !build_entries)
        domain_counts)
    schemes;

  (* index size: SIDX3 vs the SIDX2 and SIDX1 baselines; load: lazy vs eager *)
  let index_entries = ref [] in
  let load_entries = ref [] in
  List.iter
    (fun scheme ->
      let b = Hashtbl.find built scheme in
      let name = Si_core.Coding.scheme_to_string scheme in
      let p4 = Filename.concat tmp (name ^ ".v4.idx") in
      let p3 = Filename.concat tmp (name ^ ".idx") in
      let p2 = Filename.concat tmp (name ^ ".v2.idx") in
      let p1 = Filename.concat tmp (name ^ ".v1.idx") in
      ok_exn (Si_core.Builder.save_v4 b p4);
      ok_exn (Si_core.Builder.save b p3);
      ok_exn (Si_core.Builder.save_v2 b p2);
      ok_exn (Si_core.Builder.save_v1 b p1);
      Hashtbl.replace idx_bytes scheme (file_size p3);
      let s = b.Si_core.Builder.stats in
      index_entries :=
        J.Obj
          [
            ("scheme", J.Str name);
            ("keys", J.Int s.Si_core.Builder.keys);
            ("postings", J.Int s.Si_core.Builder.postings);
            ("bytes_sidx4", J.Int (file_size p4));
            ("bytes_sidx3", J.Int (file_size p3));
            ("bytes_sidx2", J.Int (file_size p2));
            ("bytes_sidx1", J.Int (file_size p1));
          ]
        :: !index_entries;
      let _, t3 = time_best ~repeat:5 (fun () -> ok_exn (Si_core.Builder.load p3)) in
      let _, t1 = time_best ~repeat:5 (fun () -> ok_exn (Si_core.Builder.load p1)) in
      Printf.eprintf
        "size %-10s: sidx4=%d sidx3=%d sidx2=%d sidx1=%d bytes; load lazy=%.4fs eager=%.4fs\n%!"
        name (file_size p4) (file_size p3) (file_size p2) (file_size p1) t3 t1;
      load_entries :=
        J.Obj
          [
            ("scheme", J.Str name);
            ("sidx3_lazy_seconds", J.Float t3);
            ("sidx1_eager_seconds", J.Float t1);
          ]
        :: !load_entries)
    schemes;

  (* open latency, SIDX1/2/3/4 x coding: the raw .idx parse/map at the
     Builder layer, and the end-to-end [Si.open_] (siblings included —
     the .dat parse SIDX3 pays, the .trees map SIDX4 pays instead) for
     the two formats [Si.save] can persist.  The warm-battery p50 beside
     it is the query-latency guard: the mapped backend must stay within
     sight of the heap one once caches are warm. *)
  let open_entries = ref [] in
  List.iter
    (fun scheme ->
      let name = Si_core.Coding.scheme_to_string scheme in
      let idx v = Filename.concat tmp (name ^ v) in
      let load_ms p =
        let _, t = time_best ~repeat:5 (fun () -> ok_exn (Si_core.Builder.load p)) in
        1000. *. t
      in
      let full3 = Filename.concat tmp (name ^ "-full3") in
      let full4 = Filename.concat tmp (name ^ "-full4") in
      ignore (Si_core.Si.build ~scheme ~mss ~trees ~prefix:full3 ());
      ignore (Si_core.Si.build ~format:`Sidx4 ~scheme ~mss ~trees ~prefix:full4 ());
      let open3, t3 = time_best ~repeat:5 (fun () -> ok_exn (Si_core.Si.open_ full3)) in
      let open4, t4 = time_best ~repeat:5 (fun () -> ok_exn (Si_core.Si.open_ full4)) in
      let battery si () =
        List.iter (fun q -> ignore (ok_exn (Si_core.Si.query si q))) bench_queries
      in
      battery open3 ();  (* warm both handles' caches before sampling *)
      battery open4 ();
      let _, p50_3, _, _ =
        latency_quantiles ~quota ~name:(name ^ "/battery3") (battery open3)
      in
      let _, p50_4, _, _ =
        latency_quantiles ~quota ~name:(name ^ "/battery4") (battery open4)
      in
      Printf.eprintf
        "open %-10s: idx v1=%.2fms v2=%.2fms v3=%.2fms v4=%.2fms; \
         full open sidx3=%.2fms sidx4=%.2fms (%.0fx); warm battery p50 \
         sidx3=%.0fus sidx4=%.0fus\n%!"
        name
        (load_ms (idx ".v1.idx"))
        (load_ms (idx ".v2.idx"))
        (load_ms (idx ".idx"))
        (load_ms (idx ".v4.idx"))
        (1000. *. t3) (1000. *. t4)
        (if t4 > 0. then t3 /. t4 else Float.nan)
        (p50_3 /. 1e3) (p50_4 /. 1e3);
      open_entries :=
        J.Obj
          [
            ("scheme", J.Str name);
            ("sidx1_idx_ms", J.Float (load_ms (idx ".v1.idx")));
            ("sidx2_idx_ms", J.Float (load_ms (idx ".v2.idx")));
            ("sidx3_idx_ms", J.Float (load_ms (idx ".idx")));
            ("sidx4_idx_ms", J.Float (load_ms (idx ".v4.idx")));
            ("open_sidx3_ms", J.Float (1000. *. t3));
            ("open_sidx4_ms", J.Float (1000. *. t4));
            ( "open_speedup",
              J.Float (if t4 > 0. then t3 /. t4 else Float.nan) );
            ("warm_battery_p50_sidx3_ns", J.Float p50_3);
            ("warm_battery_p50_sidx4_ns", J.Float p50_4);
          ]
        :: !open_entries)
    schemes;

  (* post-validation micro-bench: materializing every tree of the corpus
     from the mapped .trees store (offset read + BP scan) vs re-parsing
     the .dat Penn bracketing — the cost filter/root-split validation and
     --sentences output pay per candidate tree *)
  let post_validate_entry =
    let prefix = Filename.concat tmp "interval-full4" in
    let store_path = prefix ^ ".trees" in
    let dat_path = Filename.concat tmp "interval-full3" ^ ".dat" in
    let _, t_store =
      time_best ~repeat:3 (fun () ->
          let st = Si_core.Treestore.open_ ~relabel:Fun.id store_path in
          for tid = 0 to Si_core.Treestore.length st - 1 do
            ignore (Si_core.Treestore.get st tid)
          done)
    in
    let _, t_parse =
      time_best ~repeat:3 (fun () ->
          List.iter
            (fun t -> ignore (Si_treebank.Annotated.of_tree t))
            (Si_treebank.Penn.read_file dat_path))
    in
    Printf.eprintf
      "post_validate: store decode %.1fus/tree, penn re-parse %.1fus/tree \
       (%.1fx) over %d trees\n%!"
      (1e6 *. t_store /. float_of_int n)
      (1e6 *. t_parse /. float_of_int n)
      (if t_store > 0. then t_parse /. t_store else Float.nan)
      n;
    J.Obj
      [
        ("trees", J.Int n);
        ("store_seconds", J.Float t_store);
        ("reparse_seconds", J.Float t_parse);
        ("store_ns_per_tree", J.Float (1e9 *. t_store /. float_of_int n));
        ("reparse_ns_per_tree", J.Float (1e9 *. t_parse /. float_of_int n));
        ( "speedup",
          J.Float (if t_store > 0. then t_parse /. t_store else Float.nan) );
      ]
  in

  (* query latency quantiles per scheme, over a freshly loaded lazy index:
     the serving path (block-skip streaming, warm bounded cache) is the
     headline; the full-decode path is measured beside it as the
     reference the streaming path must not regress *)
  let query_entries = ref [] in
  let query_p95s = Hashtbl.create 4 in
  let query_p99s = Hashtbl.create 4 in
  List.iter
    (fun scheme ->
      let name = Si_core.Coding.scheme_to_string scheme in
      let index = ok_exn (Si_core.Builder.load (Filename.concat tmp (name ^ ".idx"))) in
      let cache = Si_core.Cursor.create_cache () in
      List.iter
        (fun qstr ->
          let q = Si_query.Parser.parse_exn qstr in
          let matches = Si_core.Eval.run_exn ~index ~corpus:(Si_core.Corpus.of_array docs) ~cache q in
          let samples, p50, p95, p99 =
            latency_quantiles ~quota ~name:(name ^ "/" ^ qstr) (fun () ->
                Si_core.Eval.run_exn ~index ~corpus:(Si_core.Corpus.of_array docs) ~cache q)
          in
          let _, p50_full, _, _ =
            latency_quantiles ~quota ~name:(name ^ "/full/" ^ qstr) (fun () ->
                Si_core.Eval.run_exn ~index ~corpus:(Si_core.Corpus.of_array docs) q)
          in
          let push tbl v =
            Hashtbl.replace tbl scheme
              (v :: Option.value ~default:[] (Hashtbl.find_opt tbl scheme))
          in
          push query_p50s p50;
          push query_p95s p95;
          push query_p99s p99;
          Printf.eprintf
            "query %-10s %-22s: %d matches, p50=%.1fus p99=%.1fus \
             full-decode p50=%.1fus (%d samples)\n%!"
            name qstr (List.length matches) (p50 /. 1e3) (p99 /. 1e3)
            (p50_full /. 1e3) samples;
          query_entries :=
            J.Obj
              [
                ("scheme", J.Str name);
                ("query", J.Str qstr);
                ("matches", J.Int (List.length matches));
                ("samples", J.Int samples);
                ("p50_ns", J.Float p50);
                ("p95_ns", J.Float p95);
                ("p99_ns", J.Float p99);
                ("p50_full_decode_ns", J.Float p50_full);
              ]
            :: !query_entries)
        bench_queries)
    schemes;

  (* serving throughput: the parallel batch evaluator over one shared
     in-memory handle, 1 vs 2 domains; per-run caches start cold, so the
     numbers include the cache warm-up the first queries pay *)
  let serve_entries = ref [] in
  let qps_1d = Hashtbl.create 4 in
  let qps_2d = Hashtbl.create 4 in
  let stream =
    let nq = List.length bench_queries in
    Array.init 400 (fun i -> List.nth bench_queries (i mod nq))
  in
  (* on a single-core machine a "2-domain" run would be silently clamped
     to 1 by [query_batch] — skip it and say so in the summary rather
     than report a 1-domain number under a 2-domain label *)
  let cores = Domain.recommended_domain_count () in
  let serve_domains = if cores >= 2 then [ 1; 2 ] else [ 1 ] in
  if cores < 2 then
    Printf.eprintf "serve: single core, skipping the 2-domain runs\n%!";
  List.iter
    (fun scheme ->
      let name = Si_core.Coding.scheme_to_string scheme in
      let si = Si_core.Si.build ~scheme ~mss ~trees () in
      List.iter
        (fun domains ->
          let best = ref None in
          for _ = 1 to 3 do
            let b = Si_core.Si.query_batch ~domains si stream in
            match !best with
            | Some p when p.Si_core.Si.elapsed_s <= b.Si_core.Si.elapsed_s -> ()
            | _ -> best := Some b
          done;
          let b = Option.get !best in
          let lat = Array.copy b.Si_core.Si.latencies_ns in
          Array.sort compare lat;
          let qps = float_of_int (Array.length stream) /. b.Si_core.Si.elapsed_s in
          if domains = 1 then Hashtbl.replace qps_1d scheme qps;
          if domains = 2 then Hashtbl.replace qps_2d scheme qps;
          let cs = b.Si_core.Si.cache in
          Printf.eprintf
            "serve %-10s domains=%d: %d queries in %.3fs (%.0f qps), \
             p50=%.1fus p95=%.1fus p99=%.1fus, cache %d/%d hits\n%!"
            name domains (Array.length stream) b.Si_core.Si.elapsed_s qps
            (quantile lat 0.5 /. 1e3)
            (quantile lat 0.95 /. 1e3)
            (quantile lat 0.99 /. 1e3)
            cs.Si_core.Cache.hits
            (cs.Si_core.Cache.hits + cs.Si_core.Cache.misses);
          serve_entries :=
            J.Obj
              [
                ("scheme", J.Str name);
                ("domains", J.Int domains);
                ("queries", J.Int (Array.length stream));
                ("elapsed_s", J.Float b.Si_core.Si.elapsed_s);
                ("qps", J.Float qps);
                ("p50_ns", J.Float (quantile lat 0.5));
                ("p95_ns", J.Float (quantile lat 0.95));
                ("p99_ns", J.Float (quantile lat 0.99));
                ("cache_hits", J.Int cs.Si_core.Cache.hits);
                ("cache_misses", J.Int cs.Si_core.Cache.misses);
                ("cache_evictions", J.Int cs.Si_core.Cache.evictions);
              ]
            :: !serve_entries)
        serve_domains)
    schemes;

  (* the network serving layer: a live TCP server on an ephemeral port
     under a closed-loop multi-client run; latencies are measured on the
     client side of the socket, so they include protocol parsing, the
     admission check, and the wire round-trip *)
  let serve_net_entry =
    let prefix = Filename.concat tmp "net-root-split" in
    ignore
      (Si_core.Si.build ~scheme:Si_core.Coding.Root_split ~mss ~trees ~prefix ());
    let srv = ok_exn (Si_serve.Server.start (Si_serve.Server.default_config ~prefix)) in
    let port = Si_serve.Server.port srv in
    let clients = 2 and per_client = 200 in
    let run_client id () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      let lats = Array.make per_client 0. in
      let nq = List.length bench_queries in
      for i = 0 to per_client - 1 do
        let q = List.nth bench_queries ((i + id) mod nq) in
        let t0 = Si_core.Monotonic.now_ns () in
        output_string oc ("QUERY " ^ q ^ " count_only=1\n");
        flush oc;
        let rec drain () = if input_line ic <> "." then drain () in
        drain ();
        lats.(i) <- float_of_int (Si_core.Monotonic.now_ns () - t0)
      done;
      Unix.close fd;
      lats
    in
    let t0 = Unix.gettimeofday () in
    let doms = List.init clients (fun id -> Domain.spawn (run_client id)) in
    let lats =
      List.concat_map (fun d -> Array.to_list (Domain.join d)) doms
      |> Array.of_list
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    Si_serve.Server.stop srv;
    Array.sort compare lats;
    let total = clients * per_client in
    let qps = float_of_int total /. elapsed in
    Printf.eprintf
      "serve_net root-split: %d clients x %d queries in %.3fs (%.0f qps), \
       wire p50=%.1fus p95=%.1fus p99=%.1fus\n%!"
      clients per_client elapsed qps
      (quantile lats 0.5 /. 1e3)
      (quantile lats 0.95 /. 1e3)
      (quantile lats 0.99 /. 1e3);
    J.Obj
      [
        ("scheme", J.Str "root-split");
        ("clients", J.Int clients);
        ("queries", J.Int total);
        ("elapsed_s", J.Float elapsed);
        ("qps", J.Float qps);
        ("p50_ns", J.Float (quantile lats 0.5));
        ("p95_ns", J.Float (quantile lats 0.95));
        ("p99_ns", J.Float (quantile lats 0.99));
      ]
  in

  (* sharded fan-out vs a single index over the same corpus: 2 shards,
     root-split.  Each sharded query fans its legs across the affinity
     pool and k-way-merges, so on a multi-core machine the stream should
     match or beat the single index; on a single core the pool has one
     worker and the fan-out only adds merge overhead — the ratio is
     recorded as skipped rather than as a fake parallel number *)
  let sharded_entry =
    let shards = 2 in
    let scheme = Si_core.Coding.Root_split in
    let sprefix = Filename.concat tmp "sharded-root-split" in
    let t0 = Unix.gettimeofday () in
    ignore (ok_exn (Si_core.Si.build_sharded ~shards ~scheme ~mss ~trees sprefix));
    let build_s = Unix.gettimeofday () -. t0 in
    let sh, open_s =
      time_best ~repeat:5 (fun () -> ok_exn (Si_core.Si.open_sharded sprefix))
    in
    let single = Si_core.Si.build ~scheme ~mss ~trees () in
    (* same closed sequential loop over the same stream for both sides:
       the sharded side's parallelism lives inside each query *)
    let run_stream f =
      let lat = Array.make (Array.length stream) 0. in
      let t0 = Unix.gettimeofday () in
      Array.iteri
        (fun i q ->
          let q0 = Si_core.Monotonic.now_ns () in
          f q;
          lat.(i) <- float_of_int (Si_core.Monotonic.now_ns () - q0))
        stream;
      (Unix.gettimeofday () -. t0, lat)
    in
    let best_of runs f =
      let best = ref None in
      for _ = 1 to runs do
        let (dt, _) as r = run_stream f in
        match !best with
        | Some (p, _) when p <= dt -> ()
        | _ -> best := Some r
      done;
      Option.get !best
    in
    let sh_s, sh_lat =
      best_of 3 (fun q -> ignore (ok_exn (Si_core.Si.query_sharded sh q)))
    in
    let single_s, _ =
      best_of 3 (fun q -> ignore (ok_exn (Si_core.Si.query single q)))
    in
    Array.sort compare sh_lat;
    let nq = float_of_int (Array.length stream) in
    let qps = nq /. sh_s and single_qps = nq /. single_s in
    let multicore = Domain.recommended_domain_count () >= 2 in
    Printf.eprintf
      "sharded root-split shards=%d: build=%.3fs open=%.4fs; %d queries in \
       %.3fs (%.0f qps, p50=%.1fus p95=%.1fus) vs single %.0f qps%s\n%!"
      shards build_s open_s (Array.length stream) sh_s qps
      (quantile sh_lat 0.5 /. 1e3)
      (quantile sh_lat 0.95 /. 1e3)
      single_qps
      (if multicore then "" else " [single core: ratio skipped]");
    J.Obj
      [
        ("scheme", J.Str "root-split");
        ("shards", J.Int shards);
        ("build_ms", J.Float (1000. *. build_s));
        ("build_ms_per_shard", J.Float (1000. *. build_s /. float_of_int shards));
        ("open_ms", J.Float (1000. *. open_s));
        ("queries", J.Int (Array.length stream));
        ("elapsed_s", J.Float sh_s);
        ("qps", J.Float qps);
        ("p50_ns", J.Float (quantile sh_lat 0.5));
        ("p95_ns", J.Float (quantile sh_lat 0.95));
        ("single_qps", J.Float single_qps);
        ( "fanout_vs_single",
          if multicore then J.Float (qps /. single_qps)
          else J.Str "skipped_single_core" );
      ]
  in

  (* self-healing integrity (DESIGN.md §15): scrub throughput over the
     mapped SIDX4 regions, the query-throughput cost of a concurrent
     background scrub on the same handle, the latency of the corpus
     fallback a quarantined handle answers from, and the wall time of a
     full repair (rebuild from the corpus store + staged republish) *)
  let scrub_entry =
    let full4 = Filename.concat tmp "interval-full4" in
    let copy src dst =
      let ic = open_in_bin src in
      let b = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin dst in
      output_string oc b;
      close_out oc
    in
    (* full-cycle throughput on a fresh handle, lazy-verify flags unset *)
    let report, cycle_s =
      time_best ~repeat:3 (fun () ->
          let si = ok_exn (Si_core.Si.open_ full4) in
          Si_core.Si.scrub si)
    in
    if not (report.Si_core.Scrub.complete && report.Si_core.Scrub.clean) then
      failwith "scrub bench: pristine index did not scrub clean";
    let bytes = report.Si_core.Scrub.bytes_verified in
    (* query throughput with and without a concurrent scrubber domain *)
    let si = ok_exn (Si_core.Si.open_ full4) in
    let run_queries () =
      let t0 = Unix.gettimeofday () in
      Array.iter (fun q -> ignore (ok_exn (Si_core.Si.query si q))) stream;
      Unix.gettimeofday () -. t0
    in
    ignore (run_queries ());
    (* warm *)
    let qps_idle = float_of_int (Array.length stream) /. run_queries () in
    let multicore = Domain.recommended_domain_count () >= 2 in
    let qps_during =
      if not multicore then None
      else begin
        let stop = Atomic.make false in
        let scrubber =
          Domain.spawn (fun () ->
              let b = Si_core.Scrub.budget ~max_bytes:(256 * 1024) () in
              while not (Atomic.get stop) do
                ignore (Si_core.Si.scrub ~budget:b si)
              done)
        in
        let busy_s = run_queries () in
        Atomic.set stop true;
        Domain.join scrubber;
        Some (float_of_int (Array.length stream) /. busy_s)
      end
    in
    (* quarantined-handle fallback latency vs the native streaming path *)
    let bad = Filename.concat tmp "scrub-bad" in
    List.iter
      (fun ext -> copy (full4 ^ ext) (bad ^ ext))
      [ ".idx"; ".labels"; ".meta"; ".trees" ];
    (let fd = Unix.openfile (bad ^ ".idx") [ Unix.O_RDWR ] 0 in
     let size = (Unix.fstat fd).Unix.st_size in
     let b = Bytes.create 1 in
     ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
     ignore (Unix.read fd b 0 1);
     Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5a));
     ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
     ignore (Unix.write fd b 0 1);
     Unix.close fd);
    let bsi = ok_exn (Si_core.Si.open_ bad) in
    ignore (Si_core.Si.scrub bsi);
    if not (Si_core.Si.quarantined bsi) then
      failwith "scrub bench: bitflip did not quarantine";
    let battery h () =
      List.iter (fun q -> ignore (ok_exn (Si_core.Si.query h q))) bench_queries
    in
    battery bsi ();
    let _, fb_p50, _, _ =
      latency_quantiles ~quota ~name:"scrub/fallback" (battery bsi)
    in
    battery si ();
    let _, nat_p50, _, _ =
      latency_quantiles ~quota ~name:"scrub/native" (battery si)
    in
    let repaired, repair_s =
      time_best ~repeat:1 (fun () -> ok_exn (Si_core.Si.repair bsi))
    in
    Printf.eprintf
      "scrub interval: %d bytes in %.2fms (%.0f MB/s); qps idle=%.0f \
       during-scrub=%s; fallback p50=%.1fus vs native %.1fus (%.1fx); \
       repair %d trees in %.1fms\n%!"
      bytes (1000. *. cycle_s)
      (float_of_int bytes /. 1e6 /. cycle_s)
      qps_idle
      (match qps_during with
      | Some q -> Printf.sprintf "%.0f" q
      | None -> "skipped")
      (fb_p50 /. 1e3) (nat_p50 /. 1e3)
      (fb_p50 /. nat_p50)
      repaired (1000. *. repair_s);
    J.Obj
      [
        ("scheme", J.Str "interval");
        ("bytes", J.Int bytes);
        ("full_cycle_ms", J.Float (1000. *. cycle_s));
        ("mb_per_s", J.Float (float_of_int bytes /. 1e6 /. cycle_s));
        ("qps_idle", J.Float qps_idle);
        ( "qps_during_scrub",
          match qps_during with
          | Some q -> J.Float q
          | None -> J.Str "skipped_single_core" );
        ( "scrub_overhead_pct",
          match qps_during with
          | Some q -> J.Float (100. *. (1. -. (q /. qps_idle)))
          | None -> J.Str "skipped_single_core" );
        ("fallback_p50_ns", J.Float fb_p50);
        ("native_p50_ns", J.Float nat_p50);
        ("fallback_slowdown", J.Float (fb_p50 /. nat_p50));
        ("repaired_trees", J.Int repaired);
        ("repair_ms", J.Float (1000. *. repair_s));
      ]
  in

  (* stable headline numbers: one object per coding, fixed keys, so CI and
     future PRs can diff trajectories without walking the detail arrays *)
  let summary =
    J.Obj
      (List.map
         (fun scheme ->
           let name = Si_core.Coding.scheme_to_string scheme in
           ( name,
             J.Obj
               [
                 ("build_ms", J.Float (1000.0 *. Hashtbl.find build1_s scheme));
                 ("index_bytes", J.Int (Hashtbl.find idx_bytes scheme));
                 ( "p50_query_ns",
                   J.Float (median (Hashtbl.find query_p50s scheme)) );
                 ( "p95_query_ns",
                   J.Float (median (Hashtbl.find query_p95s scheme)) );
                 ( "p99_query_ns",
                   J.Float (median (Hashtbl.find query_p99s scheme)) );
                 ("qps", J.Float (Hashtbl.find qps_1d scheme));
                 ( "qps_domains2",
                   match Hashtbl.find_opt qps_2d scheme with
                   | Some qps -> J.Float qps
                   | None -> J.Str "skipped_single_core" );
               ] ))
         schemes)
  in
  let json =
    J.Obj
      [
        ("summary", summary);
        ( "meta",
          J.Obj
            [
              ("seed", J.Int seed);
              ("n_trees", J.Int n);
              ("n_nodes", J.Int nodes);
              ("mss", J.Int mss);
              ("commit", J.Str (commit_hash ()));
              ("ocaml", J.Str Sys.ocaml_version);
              ("cores", J.Int (Domain.recommended_domain_count ()));
            ] );
        ("build", J.Arr (List.rev !build_entries));
        ("index", J.Arr (List.rev !index_entries));
        ("load", J.Arr (List.rev !load_entries));
        ("open_latency", J.Arr (List.rev !open_entries));
        ("post_validate", post_validate_entry);
        ("query", J.Arr (List.rev !query_entries));
        ("serve", J.Arr (List.rev !serve_entries));
        ("serve_net", serve_net_entry);
        ("sharded", sharded_entry);
        ("scrub", scrub_entry);
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string json);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" !out
